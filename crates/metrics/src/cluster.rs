//! Cluster-quality indices.
//!
//! Two of these come straight from the paper's Section IV:
//!
//! * **SSE** (Sum of Squared Error, Tan/Steinbach/Kumar): "the total sum
//!   of squared errors over all the objects in the collection, where for
//!   each object the error is computed as the squared distance from the
//!   closest centroid. The smaller the SSE, the better the quality of
//!   discovered clusters" — but it decreases monotonically with K, which
//!   is exactly why the paper pairs it with a classifier-based
//!   robustness check.
//! * **Overall similarity**: "measures the cluster cohesiveness by
//!   computing the internal pairwise similarity of patients within each
//!   cluster, and then taking the weighted sum over the whole cluster
//!   set". Pairwise similarity is cosine; the weighted sum uses cluster
//!   sizes.
//!
//! Silhouette and Davies–Bouldin are included as the extra indices the
//! optimizer's extended scoring can draw on.

use ada_vsm::dense::{cosine, distance_sq, DenseMatrix};

/// Per-cluster centroids (component-wise means) of the assigned rows.
///
/// Empty clusters get all-zero centroids. `assignments[i]` must be `< k`.
///
/// # Panics
/// Panics when `assignments.len() != matrix.num_rows()` or an assignment
/// is out of range.
#[allow(clippy::needless_range_loop)] // lockstep multi-array indexing
pub fn centroids_of(matrix: &DenseMatrix, assignments: &[usize], k: usize) -> DenseMatrix {
    assert_eq!(assignments.len(), matrix.num_rows(), "assignment length");
    let dim = matrix.num_cols();
    let mut sums = DenseMatrix::zeros(k, dim);
    let mut counts = vec![0usize; k];
    for (i, &c) in assignments.iter().enumerate() {
        assert!(c < k, "assignment {c} out of range for k = {k}");
        counts[c] += 1;
        let row = matrix.row(i);
        let acc = sums.row_mut(c);
        for d in 0..dim {
            acc[d] += row[d];
        }
    }
    for c in 0..k {
        if counts[c] > 0 {
            let inv = 1.0 / counts[c] as f64;
            for v in sums.row_mut(c) {
                *v *= inv;
            }
        }
    }
    sums
}

/// Sum of Squared Error of a clustering: Σᵢ ‖xᵢ − c(xᵢ)‖².
///
/// # Panics
/// Panics on shape mismatches between matrix, assignments and centroids.
pub fn sse(matrix: &DenseMatrix, assignments: &[usize], centroids: &DenseMatrix) -> f64 {
    assert_eq!(assignments.len(), matrix.num_rows(), "assignment length");
    assert_eq!(matrix.num_cols(), centroids.num_cols(), "dim mismatch");
    assignments
        .iter()
        .enumerate()
        .map(|(i, &c)| distance_sq(matrix.row(i), centroids.row(c)))
        .sum()
}

/// Overall similarity of a clustering (Tan/Steinbach/Kumar): the
/// size-weighted mean of per-cluster cohesion, where cohesion of cluster
/// C is the average pairwise cosine similarity `(1/|C|²) Σ_{x,y∈C}
/// cos(x,y)` (self-pairs included).
///
/// Implementation note: for unit-normalized members the double sum
/// collapses to `‖mean of unit vectors‖²`, making the index O(n·d)
/// instead of O(n²·d). The quadratic definition is kept (see tests) as
/// the reference implementation.
///
/// Returns 0.0 for an empty matrix. Zero rows contribute zero-similarity
/// pairs, matching the convention `cos(0, ·) = 0`.
#[allow(clippy::needless_range_loop)] // lockstep multi-array indexing
pub fn overall_similarity(matrix: &DenseMatrix, assignments: &[usize], k: usize) -> f64 {
    assert_eq!(assignments.len(), matrix.num_rows(), "assignment length");
    let n = matrix.num_rows();
    if n == 0 {
        return 0.0;
    }
    let dim = matrix.num_cols();
    let mut unit_sums = DenseMatrix::zeros(k, dim);
    let mut counts = vec![0usize; k];
    for (i, &c) in assignments.iter().enumerate() {
        assert!(c < k, "assignment {c} out of range for k = {k}");
        counts[c] += 1;
        let row = matrix.row(i);
        let norm = row.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 0.0 {
            let acc = unit_sums.row_mut(c);
            for d in 0..dim {
                acc[d] += row[d] / norm;
            }
        }
    }
    let mut total = 0.0;
    for c in 0..k {
        if counts[c] == 0 {
            continue;
        }
        let s = unit_sums.row(c);
        let norm_sq: f64 = s.iter().map(|v| v * v).sum();
        let cohesion = norm_sq / (counts[c] * counts[c]) as f64;
        total += counts[c] as f64 / n as f64 * cohesion;
    }
    total
}

/// Reference O(n²) implementation of [`overall_similarity`], used by the
/// test suite and available for small validation runs.
pub fn overall_similarity_pairwise(matrix: &DenseMatrix, assignments: &[usize], k: usize) -> f64 {
    let n = matrix.num_rows();
    if n == 0 {
        return 0.0;
    }
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &c) in assignments.iter().enumerate() {
        members[c].push(i);
    }
    let mut total = 0.0;
    for cluster in &members {
        let size = cluster.len();
        if size == 0 {
            continue;
        }
        let mut pair_sum = 0.0;
        for &i in cluster {
            for &j in cluster {
                pair_sum += cosine(matrix.row(i), matrix.row(j));
            }
        }
        let cohesion = pair_sum / (size * size) as f64;
        total += size as f64 / n as f64 * cohesion;
    }
    total
}

#[allow(clippy::needless_range_loop)] // i indexes assignments and rows in lockstep
/// Mean silhouette coefficient over all points (Euclidean distances).
///
/// Points in singleton clusters get silhouette 0 by convention. Returns
/// 0.0 when there are fewer than 2 points or fewer than 2 non-empty
/// clusters.
pub fn silhouette(matrix: &DenseMatrix, assignments: &[usize], k: usize) -> f64 {
    let n = matrix.num_rows();
    if n < 2 {
        return 0.0;
    }
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &c) in assignments.iter().enumerate() {
        members[c].push(i);
    }
    if members.iter().filter(|m| !m.is_empty()).count() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..n {
        let own = assignments[i];
        if members[own].len() <= 1 {
            continue; // silhouette 0 for singletons
        }
        // a(i): mean distance to own cluster (excluding self).
        let a = members[own]
            .iter()
            .filter(|&&j| j != i)
            .map(|&j| distance_sq(matrix.row(i), matrix.row(j)).sqrt())
            .sum::<f64>()
            / (members[own].len() - 1) as f64;
        // b(i): min over other clusters of mean distance.
        let mut b = f64::INFINITY;
        for (c, cluster) in members.iter().enumerate() {
            if c == own || cluster.is_empty() {
                continue;
            }
            let mean = cluster
                .iter()
                .map(|&j| distance_sq(matrix.row(i), matrix.row(j)).sqrt())
                .sum::<f64>()
                / cluster.len() as f64;
            if mean < b {
                b = mean;
            }
        }
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
    }
    total / n as f64
}

/// Davies–Bouldin index (lower is better): mean over clusters of the
/// worst-case ratio `(sᵢ + sⱼ) / dᵢⱼ`, where `s` is mean within-cluster
/// distance to the centroid and `d` the centroid separation.
///
/// Returns 0.0 when fewer than 2 clusters are non-empty.
#[allow(clippy::needless_range_loop)] // lockstep multi-array indexing
pub fn davies_bouldin(matrix: &DenseMatrix, assignments: &[usize], k: usize) -> f64 {
    let centroids = centroids_of(matrix, assignments, k);
    let mut counts = vec![0usize; k];
    let mut scatter = vec![0.0; k];
    for (i, &c) in assignments.iter().enumerate() {
        counts[c] += 1;
        scatter[c] += distance_sq(matrix.row(i), centroids.row(c)).sqrt();
    }
    let live: Vec<usize> = (0..k).filter(|&c| counts[c] > 0).collect();
    if live.len() < 2 {
        return 0.0;
    }
    for &c in &live {
        scatter[c] /= counts[c] as f64;
    }
    let mut total = 0.0;
    for &i in &live {
        let mut worst: f64 = 0.0;
        for &j in &live {
            if i == j {
                continue;
            }
            let sep = distance_sq(centroids.row(i), centroids.row(j)).sqrt();
            if sep > 0.0 {
                worst = worst.max((scatter[i] + scatter[j]) / sep);
            }
        }
        total += worst;
    }
    total / live.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight blobs far apart.
    fn two_blobs() -> (DenseMatrix, Vec<usize>) {
        let rows = vec![
            vec![0.0, 0.1],
            vec![0.1, 0.0],
            vec![0.0, 0.0],
            vec![10.0, 10.1],
            vec![10.1, 10.0],
            vec![10.0, 10.0],
        ];
        (DenseMatrix::from_rows(&rows), vec![0, 0, 0, 1, 1, 1])
    }

    #[test]
    fn centroids_are_means() {
        let (m, a) = two_blobs();
        let c = centroids_of(&m, &a, 2);
        assert!((c.get(0, 0) - 0.1 / 3.0).abs() < 1e-12);
        assert!((c.get(1, 0) - 30.1 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn centroids_empty_cluster_is_zero() {
        let (m, a) = two_blobs();
        let c = centroids_of(&m, &a, 3);
        assert_eq!(c.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn sse_zero_for_perfect_centroids() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![1.0, 2.0]]);
        let a = vec![0, 0];
        let c = centroids_of(&m, &a, 1);
        assert_eq!(sse(&m, &a, &c), 0.0);
    }

    #[test]
    fn sse_decreases_with_better_assignment() {
        let (m, good) = two_blobs();
        let bad = vec![0, 1, 0, 1, 0, 1];
        let cg = centroids_of(&m, &good, 2);
        let cb = centroids_of(&m, &bad, 2);
        assert!(sse(&m, &good, &cg) < sse(&m, &bad, &cb));
    }

    #[test]
    fn overall_similarity_fast_matches_pairwise() {
        let rows = vec![
            vec![1.0, 0.0, 2.0],
            vec![0.5, 0.5, 0.0],
            vec![0.0, 3.0, 1.0],
            vec![2.0, 2.0, 2.0],
            vec![0.0, 0.0, 0.0], // zero row
            vec![1.0, 1.0, 0.0],
        ];
        let m = DenseMatrix::from_rows(&rows);
        let a = vec![0, 1, 0, 1, 0, 2];
        let fast = overall_similarity(&m, &a, 3);
        let slow = overall_similarity_pairwise(&m, &a, 3);
        assert!((fast - slow).abs() < 1e-9, "fast {fast} slow {slow}");
    }

    #[test]
    fn overall_similarity_perfect_for_identical_directions() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let a = vec![0, 0, 0];
        let s = overall_similarity(&m, &a, 1);
        assert!((s - 1.0).abs() < 1e-9, "s = {s}");
    }

    #[test]
    fn overall_similarity_good_clustering_beats_bad() {
        let m = DenseMatrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.9, 0.1],
            vec![0.0, 1.0],
            vec![0.1, 0.9],
        ]);
        let good = vec![0, 0, 1, 1];
        let bad = vec![0, 1, 0, 1];
        assert!(overall_similarity(&m, &good, 2) > overall_similarity(&m, &bad, 2));
    }

    #[test]
    fn overall_similarity_empty_matrix() {
        let m = DenseMatrix::zeros(0, 3);
        assert_eq!(overall_similarity(&m, &[], 2), 0.0);
    }

    #[test]
    fn silhouette_separated_blobs_near_one() {
        let (m, a) = two_blobs();
        let s = silhouette(&m, &a, 2);
        assert!(s > 0.95, "silhouette = {s}");
    }

    #[test]
    fn silhouette_bad_assignment_is_low() {
        let (m, _) = two_blobs();
        let bad = vec![0, 1, 0, 1, 0, 1];
        let s = silhouette(&m, &bad, 2);
        assert!(s < 0.1, "silhouette = {s}");
    }

    #[test]
    fn silhouette_degenerate_cases() {
        let m = DenseMatrix::from_rows(&[vec![1.0]]);
        assert_eq!(silhouette(&m, &[0], 1), 0.0);
        let (m2, a) = two_blobs();
        let all_same = vec![0; a.len()];
        assert_eq!(silhouette(&m2, &all_same, 2), 0.0);
    }

    #[test]
    fn davies_bouldin_prefers_separated_blobs() {
        let (m, good) = two_blobs();
        let bad = vec![0, 1, 0, 1, 0, 1];
        let db_good = davies_bouldin(&m, &good, 2);
        let db_bad = davies_bouldin(&m, &bad, 2);
        assert!(db_good < db_bad, "good {db_good} bad {db_bad}");
        assert!(db_good < 0.1);
    }

    #[test]
    fn davies_bouldin_single_cluster_zero() {
        let (m, a) = two_blobs();
        let one = vec![0; a.len()];
        assert_eq!(davies_bouldin(&m, &one, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn centroids_rejects_bad_assignment() {
        let m = DenseMatrix::from_rows(&[vec![1.0]]);
        let _ = centroids_of(&m, &[3], 2);
    }
}
