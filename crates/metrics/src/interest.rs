//! Interestingness measures for pattern-based knowledge items.
//!
//! The paper's optimizer needs "a set of interestingness metrics … to
//! assess the quality of knowledge discovered by different algorithm
//! runs", and its knowledge-ranking component orders extracted items for
//! the user. For association rules `A → B` over a transaction collection
//! these are the classic objective measures (support, confidence, lift,
//! leverage, conviction, Jaccard, cosine), computed from the three
//! absolute counts and the collection size.

use serde::{Deserialize, Serialize};

/// The contingency counts of a rule `A → B` in `n` transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleCounts {
    /// Total number of transactions (n > 0 for meaningful measures).
    pub n: usize,
    /// Transactions containing the antecedent A.
    pub count_a: usize,
    /// Transactions containing the consequent B.
    pub count_b: usize,
    /// Transactions containing both A and B.
    pub count_ab: usize,
}

impl RuleCounts {
    /// Creates counts, validating consistency.
    ///
    /// # Panics
    /// Panics when counts exceed `n` or the intersection exceeds either
    /// side — always a caller bug.
    pub fn new(n: usize, count_a: usize, count_b: usize, count_ab: usize) -> Self {
        assert!(count_a <= n && count_b <= n, "marginals exceed n");
        assert!(
            count_ab <= count_a && count_ab <= count_b,
            "intersection exceeds a marginal"
        );
        Self {
            n,
            count_a,
            count_b,
            count_ab,
        }
    }

    /// Relative support of the whole rule: P(A ∧ B).
    pub fn support(&self) -> f64 {
        ratio(self.count_ab, self.n)
    }

    /// Relative support of the antecedent: P(A).
    pub fn support_a(&self) -> f64 {
        ratio(self.count_a, self.n)
    }

    /// Relative support of the consequent: P(B).
    pub fn support_b(&self) -> f64 {
        ratio(self.count_b, self.n)
    }

    /// Confidence: P(B | A). Returns 0.0 when A never occurs.
    pub fn confidence(&self) -> f64 {
        ratio(self.count_ab, self.count_a)
    }

    /// Lift: P(A ∧ B) / (P(A)·P(B)). 1.0 means independence; values > 1
    /// indicate positive correlation. Returns 0.0 when either marginal is
    /// empty.
    pub fn lift(&self) -> f64 {
        let denom = self.support_a() * self.support_b();
        if denom == 0.0 {
            0.0
        } else {
            self.support() / denom
        }
    }

    /// Leverage (a.k.a. Piatetsky-Shapiro): P(A ∧ B) − P(A)·P(B).
    pub fn leverage(&self) -> f64 {
        self.support() - self.support_a() * self.support_b()
    }

    /// Conviction: (1 − P(B)) / (1 − conf). Returns +∞ for exact rules
    /// (confidence 1 with P(B) < 1) and 0.0 when A never occurs.
    pub fn conviction(&self) -> f64 {
        if self.count_a == 0 {
            return 0.0;
        }
        let conf = self.confidence();
        let pb = self.support_b();
        if (1.0 - conf).abs() < f64::EPSILON {
            if pb < 1.0 {
                f64::INFINITY
            } else {
                1.0
            }
        } else {
            (1.0 - pb) / (1.0 - conf)
        }
    }

    /// Jaccard coefficient: |A ∧ B| / |A ∨ B|.
    pub fn jaccard(&self) -> f64 {
        let union = self.count_a + self.count_b - self.count_ab;
        ratio(self.count_ab, union)
    }

    /// Cosine (a.k.a. IS measure): P(A ∧ B) / √(P(A)·P(B)).
    pub fn cosine(&self) -> f64 {
        let denom = (self.support_a() * self.support_b()).sqrt();
        if denom == 0.0 {
            0.0
        } else {
            self.support() / denom
        }
    }

    /// A bounded composite interestingness score in [0, 1]: the mean of
    /// support, confidence, the squashed lift `lift/(1+lift)` and
    /// Jaccard. Used by the knowledge-ranking component as a neutral
    /// prior before user feedback reshapes the ordering.
    pub fn composite_score(&self) -> f64 {
        let lift = self.lift();
        let squashed_lift = if lift.is_finite() {
            lift / (1.0 + lift)
        } else {
            1.0
        };
        (self.support() + self.confidence() + squashed_lift + self.jaccard()) / 4.0
    }
}

fn ratio(num: usize, denom: usize) -> f64 {
    if denom == 0 {
        0.0
    } else {
        num as f64 / denom as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 100 transactions, A in 40, B in 50, both in 30.
    fn sample() -> RuleCounts {
        RuleCounts::new(100, 40, 50, 30)
    }

    #[test]
    fn basic_measures() {
        let r = sample();
        assert!((r.support() - 0.30).abs() < 1e-12);
        assert!((r.support_a() - 0.40).abs() < 1e-12);
        assert!((r.support_b() - 0.50).abs() < 1e-12);
        assert!((r.confidence() - 0.75).abs() < 1e-12);
        assert!((r.lift() - 1.5).abs() < 1e-12);
        assert!((r.leverage() - 0.10).abs() < 1e-12);
        assert!((r.jaccard() - 0.5).abs() < 1e-12);
        assert!((r.cosine() - 0.30 / (0.2f64).sqrt()).abs() < 1e-12);
        // conviction = (1 - 0.5) / (1 - 0.75) = 2.
        assert!((r.conviction() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn independence_has_unit_lift_zero_leverage() {
        let r = RuleCounts::new(100, 50, 40, 20);
        assert!((r.lift() - 1.0).abs() < 1e-12);
        assert!(r.leverage().abs() < 1e-12);
    }

    #[test]
    fn exact_rule_has_infinite_conviction() {
        let r = RuleCounts::new(100, 20, 60, 20);
        assert!((r.confidence() - 1.0).abs() < 1e-12);
        assert!(r.conviction().is_infinite());
        // But a tautology (B everywhere) stays finite.
        let t = RuleCounts::new(100, 20, 100, 20);
        assert_eq!(t.conviction(), 1.0);
    }

    #[test]
    fn degenerate_counts_are_zero_not_nan() {
        let r = RuleCounts::new(0, 0, 0, 0);
        assert_eq!(r.support(), 0.0);
        assert_eq!(r.confidence(), 0.0);
        assert_eq!(r.lift(), 0.0);
        assert_eq!(r.conviction(), 0.0);
        assert_eq!(r.jaccard(), 0.0);
        assert_eq!(r.cosine(), 0.0);
        assert!(r.composite_score().is_finite());
    }

    #[test]
    fn composite_score_bounded_and_monotone_in_strength() {
        let weak = RuleCounts::new(1000, 400, 400, 162); // ~independent
        let strong = RuleCounts::new(1000, 400, 400, 390);
        let (ws, ss) = (weak.composite_score(), strong.composite_score());
        assert!((0.0..=1.0).contains(&ws));
        assert!((0.0..=1.0).contains(&ss));
        assert!(ss > ws);
        // Exact rule (infinite lift path) stays bounded.
        let exact = RuleCounts::new(100, 20, 20, 20);
        assert!(exact.composite_score() <= 1.0);
    }

    #[test]
    #[should_panic(expected = "intersection exceeds")]
    fn rejects_inconsistent_counts() {
        let _ = RuleCounts::new(10, 3, 4, 5);
    }
}
