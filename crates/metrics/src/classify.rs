//! Classification metrics: confusion matrix, accuracy, macro-averaged
//! precision and recall.
//!
//! Table I of the paper reports, per K, the 10-fold cross-validated
//! *accuracy*, *average precision* and *average recall* of a decision
//! tree trained to re-predict K-means cluster labels — the paper's proxy
//! for clustering robustness. "Average" is the unweighted (macro) mean
//! over classes, the convention of the referenced toolchain.

use serde::{Deserialize, Serialize};

/// A k × k confusion matrix; `counts[t][p]` is the number of instances of
/// true class `t` predicted as class `p`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    k: usize,
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// An empty k-class matrix.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            counts: vec![vec![0; k]; k],
        }
    }

    /// Builds from parallel slices of true and predicted labels.
    ///
    /// # Panics
    /// Panics on length mismatch or labels ≥ k.
    pub fn from_pairs(k: usize, truth: &[usize], predicted: &[usize]) -> Self {
        assert_eq!(truth.len(), predicted.len(), "label length mismatch");
        let mut m = Self::new(k);
        for (&t, &p) in truth.iter().zip(predicted) {
            m.record(t, p);
        }
        m
    }

    /// Records one (true, predicted) observation.
    ///
    /// # Panics
    /// Panics when either label is ≥ k.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(truth < self.k && predicted < self.k, "label out of range");
        self.counts[truth][predicted] += 1;
    }

    /// Merges another confusion matrix into this one (used to pool
    /// cross-validation folds).
    ///
    /// # Panics
    /// Panics when the class counts differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.k, other.k, "class count mismatch");
        for t in 0..self.k {
            for p in 0..self.k {
                self.counts[t][p] += other.counts[t][p];
            }
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.k
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> usize {
        self.counts
            .iter()
            .map(|row| row.iter().sum::<usize>())
            .sum()
    }

    /// The raw cell `counts[truth][predicted]`.
    pub fn count(&self, truth: usize, predicted: usize) -> usize {
        self.counts[truth][predicted]
    }

    /// Overall accuracy ∈ [0, 1]; 0.0 for an empty matrix.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.k).map(|c| self.counts[c][c]).sum();
        correct as f64 / total as f64
    }

    /// Precision of one class: TP / (TP + FP). Returns 0.0 when the class
    /// was never predicted.
    pub fn precision(&self, class: usize) -> f64 {
        let tp = self.counts[class][class];
        let predicted: usize = (0..self.k).map(|t| self.counts[t][class]).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Recall of one class: TP / (TP + FN). Returns 0.0 when the class has
    /// no true instances.
    pub fn recall(&self, class: usize) -> f64 {
        let tp = self.counts[class][class];
        let actual: usize = self.counts[class].iter().sum();
        if actual == 0 {
            0.0
        } else {
            tp as f64 / actual as f64
        }
    }

    /// F1 score of one class (harmonic mean of precision and recall).
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Macro-averaged precision over classes that occur (as truth or
    /// prediction); this is Table I's "AVG Precision".
    pub fn macro_precision(&self) -> f64 {
        self.macro_over(|c| self.precision(c))
    }

    /// Macro-averaged recall; Table I's "AVG Recall".
    pub fn macro_recall(&self) -> f64 {
        self.macro_over(|c| self.recall(c))
    }

    /// Macro-averaged F1.
    pub fn macro_f1(&self) -> f64 {
        self.macro_over(|c| self.f1(c))
    }

    fn macro_over(&self, f: impl Fn(usize) -> f64) -> f64 {
        let live: Vec<usize> = (0..self.k)
            .filter(|&c| {
                let as_truth: usize = self.counts[c].iter().sum();
                let as_pred: usize = (0..self.k).map(|t| self.counts[t][c]).sum();
                as_truth + as_pred > 0
            })
            .collect();
        if live.is_empty() {
            return 0.0;
        }
        live.iter().map(|&c| f(c)).sum::<f64>() / live.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let m = ConfusionMatrix::from_pairs(3, &[0, 1, 2, 1], &[0, 1, 2, 1]);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.macro_precision(), 1.0);
        assert_eq!(m.macro_recall(), 1.0);
        assert_eq!(m.macro_f1(), 1.0);
        assert_eq!(m.total(), 4);
    }

    #[test]
    fn known_two_class_case() {
        // truth:     0 0 0 0 1 1
        // predicted: 0 0 1 1 1 0
        let m = ConfusionMatrix::from_pairs(2, &[0, 0, 0, 0, 1, 1], &[0, 0, 1, 1, 1, 0]);
        assert!((m.accuracy() - 0.5).abs() < 1e-12);
        // class 0: TP=2, FP=1 -> P=2/3; FN=2 -> R=1/2.
        assert!((m.precision(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall(0) - 0.5).abs() < 1e-12);
        // class 1: TP=1, FP=2 -> P=1/3; FN=1 -> R=1/2.
        assert!((m.precision(1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.recall(1) - 0.5).abs() < 1e-12);
        assert!((m.macro_precision() - 0.5).abs() < 1e-12);
        assert!((m.macro_recall() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn absent_class_excluded_from_macro() {
        // Class 2 never occurs in truth or prediction.
        let m = ConfusionMatrix::from_pairs(3, &[0, 1], &[0, 1]);
        assert_eq!(m.macro_precision(), 1.0);
        // Class present in prediction only still counts (with P = 0 or not).
        let m2 = ConfusionMatrix::from_pairs(3, &[0, 0], &[0, 2]);
        // Live classes: 0 and 2. P(0)=1, P(2)=0 -> macro 0.5.
        assert!((m2.macro_precision() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_zero() {
        let m = ConfusionMatrix::new(4);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.macro_precision(), 0.0);
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn merge_pools_folds() {
        let a = ConfusionMatrix::from_pairs(2, &[0, 1], &[0, 0]);
        let mut b = ConfusionMatrix::from_pairs(2, &[1, 1], &[1, 1]);
        b.merge(&a);
        assert_eq!(b.total(), 4);
        assert_eq!(b.count(1, 0), 1);
        assert_eq!(b.count(1, 1), 2);
        assert!((b.accuracy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn f1_harmonic_mean() {
        let m = ConfusionMatrix::from_pairs(2, &[0, 0, 1, 1], &[0, 1, 1, 1]);
        // class 1: P = 2/3, R = 1 -> F1 = 0.8
        assert!((m.f1(1) - 0.8).abs() < 1e-12);
        // degenerate: never predicted and never true -> 0
        let z = ConfusionMatrix::new(2);
        assert_eq!(z.f1(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn record_checks_labels() {
        let mut m = ConfusionMatrix::new(2);
        m.record(0, 2);
    }
}
