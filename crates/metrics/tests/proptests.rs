//! Property tests: metric identities and invariants.

use ada_metrics::cluster;
use ada_metrics::interest::RuleCounts;
use ada_metrics::ConfusionMatrix;
use ada_vsm::DenseMatrix;
use proptest::prelude::*;

fn matrix_and_assignments() -> impl Strategy<Value = (DenseMatrix, Vec<usize>, usize)> {
    (2usize..30, 1usize..5)
        .prop_flat_map(|(n, k)| {
            let rows = prop::collection::vec(
                prop::collection::vec((-40i32..40).prop_map(|v| f64::from(v) / 4.0), 4),
                n,
            );
            let assignments = prop::collection::vec(0usize..k, n);
            (rows, assignments, Just(k))
        })
        .prop_map(|(rows, assignments, k)| (DenseMatrix::from_rows(&rows), assignments, k))
}

proptest! {
    #[test]
    fn overall_similarity_fast_equals_pairwise((m, a, k) in matrix_and_assignments()) {
        let fast = cluster::overall_similarity(&m, &a, k);
        let slow = cluster::overall_similarity_pairwise(&m, &a, k);
        prop_assert!((fast - slow).abs() < 1e-9, "fast {} slow {}", fast, slow);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&fast));
    }

    #[test]
    fn sse_minimized_by_true_centroids((m, a, k) in matrix_and_assignments()) {
        // The per-cluster mean minimizes the squared error: any
        // perturbation of the centroids cannot decrease SSE.
        let centroids = cluster::centroids_of(&m, &a, k);
        let base = cluster::sse(&m, &a, &centroids);
        prop_assert!(base >= -1e-12);
        let mut perturbed = centroids.clone();
        for c in 0..k {
            perturbed.row_mut(c)[0] += 0.75;
        }
        let worse = cluster::sse(&m, &a, &perturbed);
        prop_assert!(worse >= base - 1e-9, "base {} perturbed {}", base, worse);
    }

    #[test]
    fn silhouette_and_db_are_bounded((m, a, k) in matrix_and_assignments()) {
        let s = cluster::silhouette(&m, &a, k);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s), "silhouette {}", s);
        let db = cluster::davies_bouldin(&m, &a, k);
        prop_assert!(db >= -1e-12 && db.is_finite(), "davies-bouldin {}", db);
    }

    #[test]
    fn confusion_matrix_invariants(
        truth in prop::collection::vec(0usize..4, 1..80),
        predicted in prop::collection::vec(0usize..4, 1..80),
    ) {
        let n = truth.len().min(predicted.len());
        let cm = ConfusionMatrix::from_pairs(4, &truth[..n], &predicted[..n]);
        prop_assert_eq!(cm.total(), n);
        prop_assert!((0.0..=1.0).contains(&cm.accuracy()));
        prop_assert!((0.0..=1.0).contains(&cm.macro_precision()));
        prop_assert!((0.0..=1.0).contains(&cm.macro_recall()));
        prop_assert!((0.0..=1.0).contains(&cm.macro_f1()));
        // Per-class precision/recall bounded too.
        for c in 0..4 {
            prop_assert!((0.0..=1.0).contains(&cm.precision(c)));
            prop_assert!((0.0..=1.0).contains(&cm.recall(c)));
        }
    }

    #[test]
    fn confusion_merge_is_additive(
        a_pairs in prop::collection::vec((0usize..3, 0usize..3), 1..40),
        b_pairs in prop::collection::vec((0usize..3, 0usize..3), 1..40),
    ) {
        let (at, ap): (Vec<_>, Vec<_>) = a_pairs.iter().copied().unzip();
        let (bt, bp): (Vec<_>, Vec<_>) = b_pairs.iter().copied().unzip();
        let a = ConfusionMatrix::from_pairs(3, &at, &ap);
        let b = ConfusionMatrix::from_pairs(3, &bt, &bp);
        let mut merged = a.clone();
        merged.merge(&b);
        prop_assert_eq!(merged.total(), a.total() + b.total());
        for t in 0..3 {
            for p in 0..3 {
                prop_assert_eq!(merged.count(t, p), a.count(t, p) + b.count(t, p));
            }
        }
    }

    #[test]
    fn rule_measures_are_consistent(
        n in 1usize..1000,
        a in 0usize..1000,
        b in 0usize..1000,
        ab in 0usize..1000,
    ) {
        let a = a.min(n);
        let b = b.min(n);
        let ab = ab.min(a).min(b);
        let r = RuleCounts::new(n, a, b, ab);
        prop_assert!((0.0..=1.0).contains(&r.support()));
        prop_assert!((0.0..=1.0).contains(&r.confidence()));
        prop_assert!((0.0..=1.0).contains(&r.jaccard()));
        prop_assert!((0.0..=1.0).contains(&r.cosine()));
        prop_assert!(r.lift() >= 0.0);
        // Leverage = P(AB) − P(A)P(B): at most 1/4 above independence,
        // can reach −1 for disjoint saturated marginals.
        prop_assert!((-1.0 - 1e-9..=0.25 + 1e-9).contains(&r.leverage()));
        prop_assert!((0.0..=1.0).contains(&r.composite_score()));
        // support <= min(marginals); confidence consistent with lift.
        prop_assert!(r.support() <= r.support_a() + 1e-12);
        prop_assert!(r.support() <= r.support_b() + 1e-12);
        if r.support_b() > 0.0 && a > 0 {
            let lift_from_conf = r.confidence() / r.support_b();
            prop_assert!((r.lift() - lift_from_conf).abs() < 1e-9);
        }
    }
}
