//! Property tests: sparse-vector algebra laws and kd-tree correctness.

#![allow(clippy::needless_range_loop)] // lockstep index checks

use ada_vsm::dense::{cosine, distance_sq, dot, DenseMatrix};
use ada_vsm::{KdTree, SparseVec};
use proptest::prelude::*;

/// A dense vector with small magnitudes and plenty of exact zeros (the
/// VSM regime).
fn dense_vec(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            3 => Just(0.0),
            2 => (-100i32..100).prop_map(|v| f64::from(v) / 4.0),
        ],
        dim,
    )
}

proptest! {
    #[test]
    fn sparse_round_trip(v in dense_vec(24)) {
        let s = SparseVec::from_dense(&v);
        prop_assert_eq!(s.to_dense(), v);
    }

    #[test]
    fn sparse_dot_symmetric_and_matches_dense(a in dense_vec(16), b in dense_vec(16)) {
        let sa = SparseVec::from_dense(&a);
        let sb = SparseVec::from_dense(&b);
        let d1 = sa.dot(&sb);
        let d2 = sb.dot(&sa);
        prop_assert!((d1 - d2).abs() < 1e-9);
        prop_assert!((d1 - dot(&a, &b)).abs() < 1e-9);
        prop_assert!((sa.dot_dense(&b) - d1).abs() < 1e-9);
    }

    #[test]
    fn distance_identity(a in dense_vec(16), b in dense_vec(16)) {
        // ||a-b||² == ||a||² + ||b||² - 2a·b
        let sa = SparseVec::from_dense(&a);
        let sb = SparseVec::from_dense(&b);
        let lhs = sa.distance_sq(&sb);
        let rhs = sa.norm_sq() + sb.norm_sq() - 2.0 * sa.dot(&sb);
        prop_assert!((lhs - rhs).abs() < 1e-6 * (1.0 + lhs.abs()));
        prop_assert!(lhs >= -1e-12);
        // Matches the dense helper.
        prop_assert!((lhs - distance_sq(&a, &b)).abs() < 1e-9);
    }

    #[test]
    fn cauchy_schwarz_bounds_cosine(a in dense_vec(16), b in dense_vec(16)) {
        let c = cosine(&a, &b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c));
        let sc = SparseVec::from_dense(&a).cosine(&SparseVec::from_dense(&b));
        prop_assert!((c - sc).abs() < 1e-9);
    }

    #[test]
    fn normalization_is_unit_or_zero(a in dense_vec(16)) {
        let n = SparseVec::from_dense(&a).normalized().norm();
        prop_assert!(n.abs() < 1e-9 || (n - 1.0).abs() < 1e-9);
    }

    #[test]
    fn addition_commutes(a in dense_vec(12), b in dense_vec(12)) {
        let sa = SparseVec::from_dense(&a);
        let sb = SparseVec::from_dense(&b);
        prop_assert_eq!(sa.add(&sb), sb.add(&sa));
    }

    #[test]
    fn kdtree_nearest_matches_brute_force(
        rows in prop::collection::vec(dense_vec(4), 1..60),
        query in dense_vec(4),
    ) {
        let m = DenseMatrix::from_rows(&rows);
        let tree = KdTree::build_with_leaf_size(&m, 4);
        let (_, d_tree) = tree.nearest(&query);
        let d_brute = (0..m.num_rows())
            .map(|i| distance_sq(&query, m.row(i)))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((d_tree - d_brute).abs() < 1e-9, "tree {} brute {}", d_tree, d_brute);
    }

    #[test]
    fn kdtree_aggregates_consistent(
        rows in prop::collection::vec(dense_vec(3), 2..80),
    ) {
        let m = DenseMatrix::from_rows(&rows);
        let tree = KdTree::build_with_leaf_size(&m, 4);
        // Every node: count == len(points_in), sum == Σ points, bbox contains them.
        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            let points = tree.points_in(id);
            prop_assert_eq!(tree.count(id), points.len());
            let (lo, hi) = tree.bbox(id);
            let mut sum = [0.0; 3];
            for &p in points {
                for d in 0..3 {
                    let v = tree.point(p)[d];
                    prop_assert!(v >= lo[d] - 1e-12 && v <= hi[d] + 1e-12);
                    sum[d] += v;
                }
            }
            for d in 0..3 {
                prop_assert!((sum[d] - tree.sum(id)[d]).abs() < 1e-6);
            }
            if let Some((l, r)) = tree.children(id) {
                stack.push(l);
                stack.push(r);
            }
        }
    }

    #[test]
    fn matrix_select_rows_preserves_content(
        rows in prop::collection::vec(dense_vec(5), 1..30),
    ) {
        let m = DenseMatrix::from_rows(&rows);
        let idx: Vec<usize> = (0..m.num_rows()).rev().collect();
        let sel = m.select_rows(&idx);
        for (new_r, &old_r) in idx.iter().enumerate() {
            prop_assert_eq!(sel.row(new_r), m.row(old_r));
        }
    }
}
