//! Sparse vectors as sorted (index, value) pairs.
//!
//! Patient exam-history vectors are inherently sparse (a patient touches
//! a handful of the 159 exam types), so pairwise-similarity heavy
//! computations — notably the *overall similarity* interestingness
//! metric, which is quadratic in cluster size — run on this
//! representation.

use serde::{Deserialize, Serialize};

/// A sparse `f64` vector over a fixed dimension, stored as strictly
/// increasing `(index, value)` pairs with no explicit zeros.
///
/// ```
/// use ada_vsm::SparseVec;
///
/// let a = SparseVec::from_dense(&[1.0, 0.0, 2.0]);
/// let b = SparseVec::from_dense(&[0.0, 3.0, 2.0]);
/// assert_eq!(a.nnz(), 2);
/// assert_eq!(a.dot(&b), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseVec {
    dim: usize,
    entries: Vec<(u32, f64)>,
}

impl SparseVec {
    /// Creates an all-zero vector of the given dimension.
    pub fn zeros(dim: usize) -> Self {
        Self {
            dim,
            entries: Vec::new(),
        }
    }

    /// Builds a sparse vector from (index, value) pairs.
    ///
    /// Pairs may arrive unsorted; duplicate indices are summed; zero
    /// values are dropped.
    ///
    /// # Panics
    /// Panics when an index is out of range for `dim`.
    pub fn from_pairs(dim: usize, pairs: impl IntoIterator<Item = (u32, f64)>) -> Self {
        let mut entries: Vec<(u32, f64)> = pairs.into_iter().collect();
        for &(i, _) in &entries {
            assert!((i as usize) < dim, "index {i} out of range for dim {dim}");
        }
        entries.sort_unstable_by_key(|&(i, _)| i);
        let mut merged: Vec<(u32, f64)> = Vec::with_capacity(entries.len());
        for (i, v) in entries {
            match merged.last_mut() {
                Some(last) if last.0 == i => last.1 += v,
                _ => merged.push((i, v)),
            }
        }
        merged.retain(|&(_, v)| v != 0.0);
        Self {
            dim,
            entries: merged,
        }
    }

    /// Builds a sparse vector from a dense slice, dropping zeros.
    pub fn from_dense(dense: &[f64]) -> Self {
        Self {
            dim: dense.len(),
            entries: dense
                .iter()
                .enumerate()
                .filter(|(_, &v)| v != 0.0)
                .map(|(i, &v)| (i as u32, v))
                .collect(),
        }
    }

    /// Expands to a dense vector.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        for &(i, v) in &self.entries {
            out[i as usize] = v;
        }
        out
    }

    /// The vector dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of explicitly stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The stored `(index, value)` pairs, sorted by index.
    pub fn entries(&self) -> &[(u32, f64)] {
        &self.entries
    }

    /// The value at `index` (0.0 when not stored).
    pub fn get(&self, index: u32) -> f64 {
        match self.entries.binary_search_by_key(&index, |&(i, _)| i) {
            Ok(pos) => self.entries[pos].1,
            Err(_) => 0.0,
        }
    }

    /// Dot product with another sparse vector (merge join).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn dot(&self, other: &SparseVec) -> f64 {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        let (mut a, mut b) = (self.entries.iter(), other.entries.iter());
        let (mut x, mut y) = (a.next(), b.next());
        let mut acc = 0.0;
        while let (Some(&(i, u)), Some(&(j, v))) = (x, y) {
            match i.cmp(&j) {
                std::cmp::Ordering::Less => x = a.next(),
                std::cmp::Ordering::Greater => y = b.next(),
                std::cmp::Ordering::Equal => {
                    acc += u * v;
                    x = a.next();
                    y = b.next();
                }
            }
        }
        acc
    }

    /// Dot product with a dense vector.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        assert_eq!(self.dim, dense.len(), "dimension mismatch");
        self.entries
            .iter()
            .map(|&(i, v)| v * dense[i as usize])
            .sum()
    }

    /// Squared Euclidean norm.
    pub fn norm_sq(&self) -> f64 {
        self.entries.iter().map(|&(_, v)| v * v).sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Cosine similarity with another vector; 0.0 when either is zero.
    pub fn cosine(&self, other: &SparseVec) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            self.dot(other) / denom
        }
    }

    /// Squared Euclidean distance to another sparse vector.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn distance_sq(&self, other: &SparseVec) -> f64 {
        // ||a - b||² = ||a||² + ||b||² - 2 a·b, computed via merge join to
        // stay numerically direct on the overlapping support.
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        let (mut a, mut b) = (self.entries.iter(), other.entries.iter());
        let (mut x, mut y) = (a.next(), b.next());
        let mut acc = 0.0;
        loop {
            match (x, y) {
                (Some(&(i, u)), Some(&(j, v))) => match i.cmp(&j) {
                    std::cmp::Ordering::Less => {
                        acc += u * u;
                        x = a.next();
                    }
                    std::cmp::Ordering::Greater => {
                        acc += v * v;
                        y = b.next();
                    }
                    std::cmp::Ordering::Equal => {
                        acc += (u - v) * (u - v);
                        x = a.next();
                        y = b.next();
                    }
                },
                (Some(&(_, u)), None) => {
                    acc += u * u;
                    x = a.next();
                }
                (None, Some(&(_, v))) => {
                    acc += v * v;
                    y = b.next();
                }
                (None, None) => break,
            }
        }
        acc
    }

    /// Multiplies every stored value by `factor` (dropping entries when
    /// `factor` is 0).
    pub fn scale(&mut self, factor: f64) {
        if factor == 0.0 {
            self.entries.clear();
        } else {
            for e in &mut self.entries {
                e.1 *= factor;
            }
        }
    }

    /// Returns an L2-normalized copy; a zero vector stays zero.
    pub fn normalized(&self) -> SparseVec {
        let n = self.norm();
        let mut out = self.clone();
        if n > 0.0 {
            out.scale(1.0 / n);
        }
        out
    }

    /// Element-wise sum with another vector.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn add(&self, other: &SparseVec) -> SparseVec {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        let pairs = self
            .entries
            .iter()
            .chain(other.entries.iter())
            .copied()
            .collect::<Vec<_>>();
        SparseVec::from_pairs(self.dim, pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_merges_drops_zeros() {
        let v = SparseVec::from_pairs(5, [(3, 1.0), (1, 2.0), (3, 2.0), (0, 0.0)]);
        assert_eq!(v.entries(), &[(1, 2.0), (3, 3.0)]);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.get(3), 3.0);
        assert_eq!(v.get(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_pairs_checks_bounds() {
        let _ = SparseVec::from_pairs(2, [(2, 1.0)]);
    }

    #[test]
    fn dense_round_trip() {
        let dense = [0.0, 1.5, 0.0, -2.0];
        let v = SparseVec::from_dense(&dense);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.to_dense(), dense);
    }

    #[test]
    fn dot_matches_dense() {
        let a = SparseVec::from_dense(&[1.0, 0.0, 2.0, 0.0, 3.0]);
        let b = SparseVec::from_dense(&[0.0, 4.0, 5.0, 0.0, 6.0]);
        assert_eq!(a.dot(&b), 2.0 * 5.0 + 3.0 * 6.0);
        assert_eq!(a.dot_dense(&[0.0, 4.0, 5.0, 0.0, 6.0]), 28.0);
    }

    #[test]
    fn norms_and_cosine() {
        let a = SparseVec::from_dense(&[3.0, 4.0]);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.norm(), 5.0);
        let b = SparseVec::from_dense(&[3.0, 4.0]);
        assert!((a.cosine(&b) - 1.0).abs() < 1e-12);
        let z = SparseVec::zeros(2);
        assert_eq!(a.cosine(&z), 0.0);
    }

    #[test]
    fn distance_sq_matches_identity() {
        let a = SparseVec::from_dense(&[1.0, 0.0, 2.0]);
        let b = SparseVec::from_dense(&[0.0, 3.0, 4.0]);
        let expected = 1.0 + 9.0 + 4.0;
        assert!((a.distance_sq(&b) - expected).abs() < 1e-12);
        assert_eq!(a.distance_sq(&a), 0.0);
    }

    #[test]
    fn scale_and_normalize() {
        let mut v = SparseVec::from_dense(&[3.0, 4.0]);
        v.scale(2.0);
        assert_eq!(v.get(0), 6.0);
        let n = v.normalized();
        assert!((n.norm() - 1.0).abs() < 1e-12);
        v.scale(0.0);
        assert_eq!(v.nnz(), 0);
        assert_eq!(SparseVec::zeros(2).normalized().norm(), 0.0);
    }

    #[test]
    fn add_merges_supports() {
        let a = SparseVec::from_dense(&[1.0, 0.0, 2.0]);
        let b = SparseVec::from_dense(&[0.0, 3.0, -2.0]);
        let s = a.add(&b);
        assert_eq!(s.to_dense(), vec![1.0, 3.0, 0.0]);
        assert_eq!(s.nnz(), 2); // exact cancellation dropped
    }
}
