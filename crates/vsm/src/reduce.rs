//! Dimensionality reduction: standardization and power-iteration PCA.
//!
//! The ADA-HEALTH architecture "includes several techniques to
//! preprocess data and map them into different representation spaces …
//! in order to reduce sparseness, and make the overall analysis problem
//! more efficiently tractable". Besides the VSM weightings this crate
//! provides column standardization and a from-scratch PCA (power
//! iteration with deflation on the covariance operator — never
//! materializing the d × d covariance for the thin case), yielding a
//! compact representation space the clustering layer can run in.

use crate::dense::{dot, DenseMatrix};

/// Per-column standardization statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    /// Column means.
    pub mean: Vec<f64>,
    /// Column standard deviations (1.0 substituted for constant
    /// columns so transforms stay finite).
    pub std_dev: Vec<f64>,
}

impl Standardizer {
    /// Fits means and standard deviations on the rows of `matrix`.
    ///
    /// # Panics
    /// Panics on an empty matrix.
    pub fn fit(matrix: &DenseMatrix) -> Self {
        let n = matrix.num_rows();
        assert!(n > 0, "cannot standardize an empty matrix");
        let mean = matrix.col_means();
        let mut var = vec![0.0; matrix.num_cols()];
        for row in matrix.rows_iter() {
            for (v, (x, m)) in var.iter_mut().zip(row.iter().zip(&mean)) {
                let d = x - m;
                *v += d * d;
            }
        }
        let std_dev = var
            .into_iter()
            .map(|v| {
                let s = (v / n as f64).sqrt();
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Self { mean, std_dev }
    }

    /// Returns the standardized copy of `matrix` (zero mean, unit
    /// variance per column).
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn transform(&self, matrix: &DenseMatrix) -> DenseMatrix {
        assert_eq!(matrix.num_cols(), self.mean.len(), "column mismatch");
        let mut out = matrix.clone();
        for r in 0..out.num_rows() {
            let row = out.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v = (*v - self.mean[c]) / self.std_dev[c];
            }
        }
        out
    }
}

/// A fitted PCA model.
#[derive(Debug, Clone, PartialEq)]
pub struct Pca {
    /// Column means removed before projection.
    pub mean: Vec<f64>,
    /// Principal components, one row per component (orthonormal).
    pub components: DenseMatrix,
    /// Variance explained by each component.
    pub explained_variance: Vec<f64>,
}

impl Pca {
    /// Fits `k` principal components by power iteration with deflation.
    ///
    /// Deterministic: iteration starts from a fixed pseudo-random unit
    /// vector. Components whose eigenvalue underflows are dropped, so
    /// the returned model may have fewer than `k` components on
    /// degenerate data.
    ///
    /// # Panics
    /// Panics when the matrix is empty or `k` is 0.
    pub fn fit(matrix: &DenseMatrix, k: usize) -> Self {
        let n = matrix.num_rows();
        let d = matrix.num_cols();
        assert!(n > 0 && d > 0, "cannot fit PCA on an empty matrix");
        assert!(k >= 1, "need at least one component");
        let k = k.min(d).min(n);

        let mean = matrix.col_means();
        // Centered copy.
        let mut centered = matrix.clone();
        for r in 0..n {
            let row = centered.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v -= mean[c];
            }
        }

        let mut components = Vec::with_capacity(k);
        let mut explained = Vec::with_capacity(k);
        for comp_idx in 0..k {
            // Deterministic quasi-random start, orthogonalized against
            // found components.
            let mut v: Vec<f64> = (0..d)
                .map(|i| {
                    let x = ((i + 1) * (comp_idx + 3)) as f64;
                    (x * 12.9898).sin()
                })
                .collect();
            orthogonalize(&mut v, &components);
            if normalize(&mut v) == 0.0 {
                break;
            }

            let mut eigenvalue = 0.0;
            for _ in 0..200 {
                // w = (Xᵀ X / n) v  without forming XᵀX: first y = X v,
                // then w = Xᵀ y / n.
                let mut y = vec![0.0; n];
                for (r, yr) in y.iter_mut().enumerate() {
                    *yr = dot(centered.row(r), &v);
                }
                let mut w = vec![0.0; d];
                for (r, yr) in y.iter().enumerate() {
                    let row = centered.row(r);
                    for (c, wc) in w.iter_mut().enumerate() {
                        *wc += yr * row[c];
                    }
                }
                for wc in &mut w {
                    *wc /= n as f64;
                }
                orthogonalize(&mut w, &components);
                let norm = normalize(&mut w);
                let delta: f64 = w
                    .iter()
                    .zip(&v)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0, f64::max);
                v = w;
                eigenvalue = norm;
                if delta < 1e-10 {
                    break;
                }
            }
            if eigenvalue < 1e-12 {
                break; // remaining directions carry no variance
            }
            components.push(v);
            explained.push(eigenvalue);
        }

        Pca {
            mean,
            components: DenseMatrix::from_rows(&components),
            explained_variance: explained,
        }
    }

    /// Number of fitted components.
    pub fn num_components(&self) -> usize {
        self.components.num_rows()
    }

    #[allow(clippy::needless_range_loop)] // comp indexes components and target in lockstep
    /// Projects rows into the component space (n × k).
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn transform(&self, matrix: &DenseMatrix) -> DenseMatrix {
        assert_eq!(matrix.num_cols(), self.mean.len(), "column mismatch");
        let k = self.num_components();
        let mut out = DenseMatrix::zeros(matrix.num_rows(), k);
        let mut centered_row = vec![0.0; self.mean.len()];
        for r in 0..matrix.num_rows() {
            let row = matrix.row(r);
            for (c, v) in centered_row.iter_mut().enumerate() {
                *v = row[c] - self.mean[c];
            }
            let target = out.row_mut(r);
            for comp in 0..k {
                target[comp] = dot(&centered_row, self.components.row(comp));
            }
        }
        out
    }

    /// Reconstructs rows from their projection (inverse transform up to
    /// the truncation error).
    #[allow(clippy::needless_range_loop)] // lockstep multi-array indexing
    pub fn inverse_transform(&self, projected: &DenseMatrix) -> DenseMatrix {
        let d = self.mean.len();
        let mut out = DenseMatrix::zeros(projected.num_rows(), d);
        for r in 0..projected.num_rows() {
            let coeffs = projected.row(r);
            let target = out.row_mut(r);
            target.copy_from_slice(&self.mean);
            for (comp, &w) in coeffs.iter().enumerate() {
                let direction = self.components.row(comp);
                for c in 0..d {
                    target[c] += w * direction[c];
                }
            }
        }
        out
    }
}

fn orthogonalize(v: &mut [f64], basis: &[Vec<f64>]) {
    for b in basis {
        let proj = dot(v, b);
        for (x, y) in v.iter_mut().zip(b) {
            *x -= proj * y;
        }
    }
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = dot(v, v).sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Data stretched along a known direction.
    fn anisotropic(seed: u64) -> DenseMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let direction = [3.0f64 / 5.0, 4.0 / 5.0, 0.0];
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|_| {
                let major: f64 = rng.gen_range(-10.0..10.0);
                let minor: f64 = rng.gen_range(-0.5..0.5);
                vec![
                    5.0 + major * direction[0] - minor * direction[1],
                    -2.0 + major * direction[1] + minor * direction[0],
                    rng.gen_range(-0.1..0.1),
                ]
            })
            .collect();
        DenseMatrix::from_rows(&rows)
    }

    #[test]
    fn first_component_finds_major_axis() {
        let m = anisotropic(1);
        let pca = Pca::fit(&m, 2);
        let c0 = pca.components.row(0);
        // Up to sign, c0 ≈ (0.6, 0.8, 0).
        let alignment = (c0[0] * 0.6 + c0[1] * 0.8).abs();
        assert!(alignment > 0.999, "alignment = {alignment}, c0 = {c0:?}");
        assert!(
            pca.explained_variance[0] > 10.0 * pca.explained_variance[1],
            "major axis must dominate: {:?}",
            pca.explained_variance
        );
    }

    #[test]
    fn components_are_orthonormal() {
        let m = anisotropic(2);
        let pca = Pca::fit(&m, 3);
        for i in 0..pca.num_components() {
            for j in 0..pca.num_components() {
                let d = dot(pca.components.row(i), pca.components.row(j));
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((d - expected).abs() < 1e-6, "<c{i}, c{j}> = {d}");
            }
        }
    }

    #[test]
    fn reconstruction_error_shrinks_with_more_components() {
        let m = anisotropic(3);
        let err = |k: usize| -> f64 {
            let pca = Pca::fit(&m, k);
            let rec = pca.inverse_transform(&pca.transform(&m));
            (0..m.num_rows())
                .map(|r| crate::dense::distance_sq(m.row(r), rec.row(r)))
                .sum::<f64>()
        };
        let e1 = err(1);
        let e2 = err(2);
        let e3 = err(3);
        assert!(e2 < e1);
        assert!(e3 <= e2 + 1e-9);
        assert!(e3 < 1e-6, "full-rank reconstruction must be exact: {e3}");
    }

    #[test]
    fn explained_variance_is_decreasing() {
        let m = anisotropic(4);
        let pca = Pca::fit(&m, 3);
        for w in pca.explained_variance.windows(2) {
            assert!(w[0] >= w[1] - 1e-9, "{:?}", pca.explained_variance);
        }
    }

    #[test]
    fn degenerate_rank_returns_fewer_components() {
        // Rank-1 data: only one direction carries variance.
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let m = DenseMatrix::from_rows(&rows);
        let pca = Pca::fit(&m, 2);
        assert_eq!(pca.num_components(), 1);
    }

    #[test]
    fn deterministic() {
        let m = anisotropic(5);
        assert_eq!(Pca::fit(&m, 2), Pca::fit(&m, 2));
    }

    #[test]
    fn standardizer_zero_mean_unit_variance() {
        let m = anisotropic(6);
        let st = Standardizer::fit(&m);
        let z = st.transform(&m);
        let means = z.col_means();
        for m in &means {
            assert!(m.abs() < 1e-9, "mean {m}");
        }
        let n = z.num_rows() as f64;
        for c in 0..z.num_cols() {
            let var: f64 = (0..z.num_rows()).map(|r| z.get(r, c).powi(2)).sum::<f64>() / n;
            assert!((var - 1.0).abs() < 1e-9, "var {var}");
        }
    }

    #[test]
    fn standardizer_tolerates_constant_columns() {
        let m = DenseMatrix::from_rows(&[vec![7.0, 1.0], vec![7.0, 3.0]]);
        let st = Standardizer::fit(&m);
        let z = st.transform(&m);
        assert_eq!(z.get(0, 0), 0.0);
        assert_eq!(z.get(1, 0), 0.0);
        assert!(z.get(1, 1).is_finite());
    }
}
