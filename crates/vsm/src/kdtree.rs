//! Bounding-box kd-tree with per-node aggregate statistics.
//!
//! This is the data structure behind Kanungo et al., "An efficient
//! k-means clustering algorithm: Analysis and implementation" (IEEE
//! TPAMI 2002) — the paper's reference \[3\] for its clustering component.
//! Each node stores its cell's bounding box plus the *count*, *vector
//! sum* and *squared-norm sum* of the points beneath it, so the filtering
//! K-means in `ada-mining` can assign whole subtrees to a centroid in one
//! step and accumulate SSE without touching individual points.
//!
//! The tree owns a copy of the point set (flat row-major buffer); nodes
//! live in an arena addressed by [`NodeId`].

use serde::{Deserialize, Serialize};

use crate::dense::{distance_sq, DenseMatrix};

/// Arena index of a kd-tree node.
pub type NodeId = usize;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    /// Lower corner of the cell's bounding box.
    lo: Vec<f64>,
    /// Upper corner of the cell's bounding box.
    hi: Vec<f64>,
    /// Number of points in the subtree.
    count: usize,
    /// Component-wise sum of the subtree's points.
    sum: Vec<f64>,
    /// Sum of squared Euclidean norms of the subtree's points.
    sum_sq: f64,
    /// `Some((left, right))` for internal nodes, `None` for leaves.
    children: Option<(NodeId, NodeId)>,
    /// Range into the permutation array holding this subtree's points.
    range: (usize, usize),
}

/// A kd-tree over a set of equal-dimension points.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KdTree {
    dim: usize,
    points: Vec<f64>, // row-major copy, num_points × dim
    perm: Vec<usize>, // permutation: tree order -> original index
    nodes: Vec<Node>,
    root: NodeId,
    leaf_size: usize,
}

impl KdTree {
    /// Default maximum number of points per leaf.
    pub const DEFAULT_LEAF_SIZE: usize = 16;

    /// Builds a tree over the rows of `matrix` with the default leaf size.
    ///
    /// # Panics
    /// Panics when the matrix has no rows or no columns.
    pub fn build(matrix: &DenseMatrix) -> Self {
        Self::build_with_leaf_size(matrix, Self::DEFAULT_LEAF_SIZE)
    }

    /// Builds a tree with an explicit leaf size (≥ 1).
    ///
    /// # Panics
    /// Panics when the matrix has no rows or no columns, or when
    /// `leaf_size` is 0.
    pub fn build_with_leaf_size(matrix: &DenseMatrix, leaf_size: usize) -> Self {
        assert!(leaf_size >= 1, "leaf size must be positive");
        let n = matrix.num_rows();
        let dim = matrix.num_cols();
        assert!(n > 0, "kd-tree needs at least one point");
        assert!(dim > 0, "kd-tree needs at least one dimension");

        let mut tree = KdTree {
            dim,
            points: matrix.as_flat().to_vec(),
            perm: (0..n).collect(),
            nodes: Vec::with_capacity(2 * n / leaf_size + 1),
            root: 0,
            leaf_size,
        };
        tree.root = tree.build_node(0, n);
        tree
    }

    fn point_of(&self, original: usize) -> &[f64] {
        &self.points[original * self.dim..(original + 1) * self.dim]
    }

    /// Recursively builds the subtree over `perm[start..end]`, returning
    /// its arena id.
    fn build_node(&mut self, start: usize, end: usize) -> NodeId {
        // Aggregate statistics and bounding box over the range.
        let mut lo = vec![f64::INFINITY; self.dim];
        let mut hi = vec![f64::NEG_INFINITY; self.dim];
        let mut sum = vec![0.0; self.dim];
        let mut sum_sq = 0.0;
        for t in start..end {
            let original = self.perm[t];
            let p = &self.points[original * self.dim..(original + 1) * self.dim];
            for d in 0..self.dim {
                let v = p[d];
                if v < lo[d] {
                    lo[d] = v;
                }
                if v > hi[d] {
                    hi[d] = v;
                }
                sum[d] += v;
                sum_sq += v * v;
            }
        }

        let count = end - start;
        if count <= self.leaf_size {
            self.nodes.push(Node {
                lo,
                hi,
                count,
                sum,
                sum_sq,
                children: None,
                range: (start, end),
            });
            return self.nodes.len() - 1;
        }

        // Split on the widest dimension at the median.
        let split_dim = (0..self.dim)
            .max_by(|&a, &b| {
                let wa = hi[a] - lo[a];
                let wb = hi[b] - lo[b];
                wa.partial_cmp(&wb).expect("finite widths")
            })
            .expect("dim > 0");
        let mid = start + count / 2;
        {
            let points = &self.points;
            let dim = self.dim;
            self.perm[start..end].select_nth_unstable_by(mid - start, |&a, &b| {
                points[a * dim + split_dim]
                    .partial_cmp(&points[b * dim + split_dim])
                    .expect("finite coordinates")
            });
        }

        // Degenerate guard: if all coordinates equal on the split dim the
        // median split still makes progress because mid is strictly
        // inside (start, end) for count >= 2.
        let left = self.build_node(start, mid);
        let right = self.build_node(mid, end);
        self.nodes.push(Node {
            lo,
            hi,
            count,
            sum,
            sum_sq,
            children: Some((left, right)),
            range: (start, end),
        });
        self.nodes.len() - 1
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The point dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total number of points.
    pub fn num_points(&self) -> usize {
        self.perm.len()
    }

    /// The original coordinates of point `i` (original indexing).
    pub fn point(&self, i: usize) -> &[f64] {
        self.point_of(i)
    }

    /// `Some((left, right))` for internal nodes, `None` for leaves.
    pub fn children(&self, id: NodeId) -> Option<(NodeId, NodeId)> {
        self.nodes[id].children
    }

    /// The node's bounding box as `(lower, upper)` corners.
    pub fn bbox(&self, id: NodeId) -> (&[f64], &[f64]) {
        (&self.nodes[id].lo, &self.nodes[id].hi)
    }

    /// Number of points in the node's subtree.
    pub fn count(&self, id: NodeId) -> usize {
        self.nodes[id].count
    }

    /// Component-wise sum of the subtree's points.
    pub fn sum(&self, id: NodeId) -> &[f64] {
        &self.nodes[id].sum
    }

    /// Sum of squared norms of the subtree's points.
    pub fn sum_sq(&self, id: NodeId) -> f64 {
        self.nodes[id].sum_sq
    }

    /// Original indices of the points stored under the node (for leaves
    /// this is the leaf bucket; for internal nodes the whole subtree).
    pub fn points_in(&self, id: NodeId) -> &[usize] {
        let (s, e) = self.nodes[id].range;
        &self.perm[s..e]
    }

    /// Squared distance from `q` to the node's bounding box (0 inside).
    #[allow(clippy::needless_range_loop)] // lockstep multi-array indexing
    pub fn bbox_distance_sq(&self, id: NodeId, q: &[f64]) -> f64 {
        let node = &self.nodes[id];
        let mut acc = 0.0;
        for d in 0..self.dim {
            let v = q[d];
            let delta = if v < node.lo[d] {
                node.lo[d] - v
            } else if v > node.hi[d] {
                v - node.hi[d]
            } else {
                0.0
            };
            acc += delta * delta;
        }
        acc
    }

    /// Exact nearest neighbour of `q`: `(original index, squared dist)`.
    ///
    /// # Panics
    /// Panics when `q.len() != dim`.
    pub fn nearest(&self, q: &[f64]) -> (usize, f64) {
        assert_eq!(q.len(), self.dim, "query dimension mismatch");
        let mut best = (usize::MAX, f64::INFINITY);
        self.nearest_rec(self.root, q, &mut best);
        best
    }

    fn nearest_rec(&self, id: NodeId, q: &[f64], best: &mut (usize, f64)) {
        if self.bbox_distance_sq(id, q) >= best.1 {
            return;
        }
        match self.nodes[id].children {
            None => {
                for &original in self.points_in(id) {
                    let d = distance_sq(q, self.point_of(original));
                    if d < best.1 {
                        *best = (original, d);
                    }
                }
            }
            Some((l, r)) => {
                // Visit the closer child first for tighter pruning.
                let dl = self.bbox_distance_sq(l, q);
                let dr = self.bbox_distance_sq(r, q);
                let (first, second) = if dl <= dr { (l, r) } else { (r, l) };
                self.nearest_rec(first, q, best);
                self.nearest_rec(second, q, best);
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // lockstep index checks in tests
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(n: usize, dim: usize, seed: u64) -> DenseMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * dim).map(|_| rng.gen_range(-5.0..5.0)).collect();
        DenseMatrix::from_flat(n, dim, data)
    }

    #[test]
    fn root_aggregates_match_brute_force() {
        let m = random_matrix(100, 4, 1);
        let tree = KdTree::build(&m);
        let root = tree.root();
        assert_eq!(tree.count(root), 100);
        let mut sum = [0.0; 4];
        let mut sum_sq = 0.0;
        for r in m.rows_iter() {
            for d in 0..4 {
                sum[d] += r[d];
                sum_sq += r[d] * r[d];
            }
        }
        for d in 0..4 {
            assert!((tree.sum(root)[d] - sum[d]).abs() < 1e-9);
        }
        assert!((tree.sum_sq(root) - sum_sq).abs() < 1e-9);
    }

    #[test]
    fn child_aggregates_sum_to_parent() {
        let m = random_matrix(200, 3, 2);
        let tree = KdTree::build_with_leaf_size(&m, 8);
        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            if let Some((l, r)) = tree.children(id) {
                assert_eq!(tree.count(l) + tree.count(r), tree.count(id));
                for d in 0..3 {
                    let s = tree.sum(l)[d] + tree.sum(r)[d];
                    assert!((s - tree.sum(id)[d]).abs() < 1e-9);
                }
                assert!((tree.sum_sq(l) + tree.sum_sq(r) - tree.sum_sq(id)).abs() < 1e-9);
                stack.push(l);
                stack.push(r);
            }
        }
    }

    #[test]
    fn bbox_contains_all_leaf_points() {
        let m = random_matrix(150, 3, 3);
        let tree = KdTree::build_with_leaf_size(&m, 4);
        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            let (lo, hi) = tree.bbox(id);
            for &p in tree.points_in(id) {
                let point = tree.point(p);
                for d in 0..3 {
                    assert!(point[d] >= lo[d] - 1e-12 && point[d] <= hi[d] + 1e-12);
                }
            }
            if let Some((l, r)) = tree.children(id) {
                stack.push(l);
                stack.push(r);
            }
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let m = random_matrix(300, 5, 4);
        let tree = KdTree::build_with_leaf_size(&m, 8);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let q: Vec<f64> = (0..5).map(|_| rng.gen_range(-6.0..6.0)).collect();
            let (idx, d) = tree.nearest(&q);
            let (bidx, bd) = (0..300)
                .map(|i| (i, distance_sq(&q, m.row(i))))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            assert!((d - bd).abs() < 1e-9, "dist mismatch");
            // Ties may pick different indices; distances must agree.
            let _ = (idx, bidx);
        }
    }

    #[test]
    fn handles_duplicate_points() {
        let m = DenseMatrix::from_rows(&[
            vec![1.0, 1.0],
            vec![1.0, 1.0],
            vec![1.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 2.0],
        ]);
        let tree = KdTree::build_with_leaf_size(&m, 1);
        let (idx, d) = tree.nearest(&[1.1, 1.1]);
        assert!(d < 0.021);
        assert!(idx < 4);
        assert_eq!(tree.count(tree.root()), 5);
    }

    #[test]
    fn single_point_tree() {
        let m = DenseMatrix::from_rows(&[vec![3.0, -1.0]]);
        let tree = KdTree::build(&m);
        assert_eq!(tree.nearest(&[0.0, 0.0]), (0, 10.0));
        assert!(tree.children(tree.root()).is_none());
    }

    #[test]
    fn bbox_distance_zero_inside() {
        let m = random_matrix(50, 2, 5);
        let tree = KdTree::build(&m);
        let (lo, hi) = tree.bbox(tree.root());
        let inside = [(lo[0] + hi[0]) / 2.0, (lo[1] + hi[1]) / 2.0];
        assert_eq!(tree.bbox_distance_sq(tree.root(), &inside), 0.0);
        let outside = [hi[0] + 3.0, (lo[1] + hi[1]) / 2.0];
        assert!((tree.bbox_distance_sq(tree.root(), &outside) - 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn rejects_empty() {
        let _ = KdTree::build(&DenseMatrix::zeros(0, 3));
    }
}
