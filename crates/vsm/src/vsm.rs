//! The Vector Space Model transformation: ExamLog → patient × exam matrix.
//!
//! This is the paper's implemented "data characterization and
//! transformation" block: "The data transformation block through the VSM
//! model generates a unique vector for each patient, representing his/her
//! examination history (i.e. number of times he/she underwent each
//! examination)."
//!
//! The builder also carries the *horizontal partial-mining* knob: an
//! optional feature filter restricting the matrix to a subset of exam
//! types (the paper grows this subset along decreasing exam frequency).

use serde::{Deserialize, Serialize};

use ada_dataset::{ExamLog, ExamTypeId, PatientId};

use crate::dense::DenseMatrix;
use crate::sparse::SparseVec;

/// Cell weighting schemes for the patient × exam matrix.
///
/// The paper implements raw counts; the alternatives are the candidate
/// transformations ADA-HEALTH's *transformation selection* component
/// scores against each other (`ada-core::transform`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Weighting {
    /// Raw exam counts (the paper's choice).
    Count,
    /// 1 when the patient underwent the exam at least once, else 0.
    Binary,
    /// `ln(1 + count)` — compresses heavy users.
    LogCount,
    /// Term-frequency × inverse document frequency:
    /// `count * ln(num_patients / (1 + patients_with_exam))`, the classic
    /// VSM re-weighting that discounts ubiquitous exams.
    TfIdf,
}

impl Weighting {
    /// All weightings, in a stable order.
    pub const ALL: [Weighting; 4] = [
        Weighting::Count,
        Weighting::Binary,
        Weighting::LogCount,
        Weighting::TfIdf,
    ];
}

impl std::fmt::Display for Weighting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Weighting::Count => "count",
            Weighting::Binary => "binary",
            Weighting::LogCount => "log-count",
            Weighting::TfIdf => "tf-idf",
        };
        f.write_str(s)
    }
}

/// The VSM transformation output: one row per patient, one column per
/// *selected* exam type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatientVectors {
    /// The patient × feature matrix.
    pub matrix: DenseMatrix,
    /// Column → exam-type mapping (`features[c]` is the exam type of
    /// column `c`).
    pub features: Vec<ExamTypeId>,
    /// Row → patient mapping (rows are all patients, in id order).
    pub patients: Vec<PatientId>,
    /// The weighting the matrix was built with.
    pub weighting: Weighting,
}

impl PatientVectors {
    /// Row `r` as a sparse vector (useful for similarity-heavy metrics).
    pub fn sparse_row(&self, r: usize) -> SparseVec {
        SparseVec::from_dense(self.matrix.row(r))
    }

    /// All rows as sparse vectors.
    pub fn sparse_rows(&self) -> Vec<SparseVec> {
        (0..self.matrix.num_rows())
            .map(|r| self.sparse_row(r))
            .collect()
    }

    /// Fraction of zero cells.
    pub fn sparsity(&self) -> f64 {
        let cells = self.matrix.num_rows() * self.matrix.num_cols();
        if cells == 0 {
            return 0.0;
        }
        let nonzero = self
            .matrix
            .rows_iter()
            .map(|row| row.iter().filter(|&&v| v != 0.0).count())
            .sum::<usize>();
        1.0 - nonzero as f64 / cells as f64
    }
}

/// Builder for the VSM transformation.
#[derive(Debug, Clone)]
pub struct VsmBuilder {
    weighting: Weighting,
    features: Option<Vec<ExamTypeId>>,
    normalize: bool,
}

impl Default for VsmBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl VsmBuilder {
    /// A builder with the paper's defaults: raw counts, all exam types,
    /// no row normalization.
    pub fn new() -> Self {
        Self {
            weighting: Weighting::Count,
            features: None,
            normalize: false,
        }
    }

    /// Selects the cell weighting.
    pub fn weighting(mut self, weighting: Weighting) -> Self {
        self.weighting = weighting;
        self
    }

    /// Restricts the matrix to the given exam types (columns appear in
    /// the given order). This is the horizontal partial-mining hook.
    pub fn features(mut self, features: Vec<ExamTypeId>) -> Self {
        self.features = Some(features);
        self
    }

    /// Keeps only the `top_k` most frequent exam types of `log` (the
    /// paper's subset-growth ordering).
    pub fn top_features(mut self, log: &ExamLog, top_k: usize) -> Self {
        let mut order = log.exams_by_frequency();
        order.truncate(top_k);
        self.features = Some(order);
        self
    }

    /// Enables L2 normalization of every patient row.
    pub fn normalize(mut self, normalize: bool) -> Self {
        self.normalize = normalize;
        self
    }

    /// Runs the transformation.
    pub fn build(&self, log: &ExamLog) -> PatientVectors {
        let features: Vec<ExamTypeId> = match &self.features {
            Some(f) => f.clone(),
            None => (0..log.num_exam_types() as u32).map(ExamTypeId).collect(),
        };
        // exam id -> column (or none if filtered out)
        let mut col_of = vec![usize::MAX; log.num_exam_types()];
        for (c, id) in features.iter().enumerate() {
            col_of[id.index()] = c;
        }

        let n = log.num_patients();
        let mut matrix = DenseMatrix::zeros(n, features.len());
        for r in log.records() {
            let c = col_of[r.exam.index()];
            if c != usize::MAX {
                let row = matrix.row_mut(r.patient.index());
                row[c] += 1.0;
            }
        }

        match self.weighting {
            Weighting::Count => {}
            Weighting::Binary => {
                for p in 0..n {
                    for v in matrix.row_mut(p) {
                        *v = if *v > 0.0 { 1.0 } else { 0.0 };
                    }
                }
            }
            Weighting::LogCount => {
                for p in 0..n {
                    for v in matrix.row_mut(p) {
                        *v = (1.0 + *v).ln();
                    }
                }
            }
            Weighting::TfIdf => {
                // Document frequency per column.
                let cols = features.len();
                let mut df = vec![0usize; cols];
                for p in 0..n {
                    for (c, v) in matrix.row(p).iter().enumerate() {
                        if *v > 0.0 {
                            df[c] += 1;
                        }
                    }
                }
                let idf: Vec<f64> = df
                    .iter()
                    .map(|&d| (n as f64 / (1.0 + d as f64)).ln().max(0.0))
                    .collect();
                for p in 0..n {
                    let row = matrix.row_mut(p);
                    for (c, v) in row.iter_mut().enumerate() {
                        *v *= idf[c];
                    }
                }
            }
        }

        if self.normalize {
            matrix.normalize_rows();
        }

        PatientVectors {
            matrix,
            features,
            patients: (0..n as u32).map(PatientId).collect(),
            weighting: self.weighting,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_dataset::record::{ExamRecord, ExamType, Patient};
    use ada_dataset::taxonomy::ConditionGroup;
    use ada_dataset::Date;

    fn tiny_log() -> ExamLog {
        let patients = (0..3)
            .map(|i| Patient::new(PatientId(i), 50).unwrap())
            .collect();
        let catalog = (0..4)
            .map(|i| ExamType::new(ExamTypeId(i), format!("e{i}"), ConditionGroup::GeneralLab))
            .collect();
        let mut log = ExamLog::new(patients, catalog).unwrap();
        let d = Date::new(2015, 1, 1).unwrap();
        // patient 0: e0 ×3, e1 ×1; patient 1: e0 ×1; patient 2: e3 ×2.
        for (p, e) in [(0, 0), (0, 0), (0, 0), (0, 1), (1, 0), (2, 3), (2, 3)] {
            log.push_record(ExamRecord::new(PatientId(p), ExamTypeId(e), d))
                .unwrap();
        }
        log
    }

    #[test]
    fn count_matrix_matches_log() {
        let pv = VsmBuilder::new().build(&tiny_log());
        assert_eq!(pv.matrix.row(0), &[3.0, 1.0, 0.0, 0.0]);
        assert_eq!(pv.matrix.row(1), &[1.0, 0.0, 0.0, 0.0]);
        assert_eq!(pv.matrix.row(2), &[0.0, 0.0, 0.0, 2.0]);
        assert_eq!(pv.features.len(), 4);
        assert_eq!(pv.weighting, Weighting::Count);
    }

    #[test]
    fn binary_weighting_thresholds() {
        let pv = VsmBuilder::new()
            .weighting(Weighting::Binary)
            .build(&tiny_log());
        assert_eq!(pv.matrix.row(0), &[1.0, 1.0, 0.0, 0.0]);
        assert_eq!(pv.matrix.row(2), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn log_weighting_compresses() {
        let pv = VsmBuilder::new()
            .weighting(Weighting::LogCount)
            .build(&tiny_log());
        assert!((pv.matrix.get(0, 0) - 4f64.ln()).abs() < 1e-12);
        assert_eq!(pv.matrix.get(1, 1), 0.0);
    }

    #[test]
    fn tfidf_discounts_common_exams() {
        let pv = VsmBuilder::new()
            .weighting(Weighting::TfIdf)
            .build(&tiny_log());
        // e0 appears for 2 of 3 patients (idf = ln(3/3) = 0) while e3
        // appears for 1 (idf = ln(3/2) > 0).
        assert_eq!(pv.matrix.get(0, 0), 0.0);
        assert!(pv.matrix.get(2, 3) > 0.0);
    }

    #[test]
    fn feature_filter_reorders_columns() {
        let pv = VsmBuilder::new()
            .features(vec![ExamTypeId(3), ExamTypeId(0)])
            .build(&tiny_log());
        assert_eq!(pv.matrix.num_cols(), 2);
        assert_eq!(pv.matrix.row(0), &[0.0, 3.0]);
        assert_eq!(pv.matrix.row(2), &[2.0, 0.0]);
        assert_eq!(pv.features, vec![ExamTypeId(3), ExamTypeId(0)]);
    }

    #[test]
    fn top_features_follow_frequency() {
        let log = tiny_log();
        let pv = VsmBuilder::new().top_features(&log, 2).build(&log);
        // e0 has 4 records, e3 has 2, e1 has 1.
        assert_eq!(pv.features, vec![ExamTypeId(0), ExamTypeId(3)]);
    }

    #[test]
    fn normalization_unit_rows() {
        let pv = VsmBuilder::new().normalize(true).build(&tiny_log());
        for r in 0..3 {
            let n = crate::dense::norm(pv.matrix.row(r));
            assert!((n - 1.0).abs() < 1e-12, "row {r} norm {n}");
        }
    }

    #[test]
    fn sparse_rows_match_dense() {
        let pv = VsmBuilder::new().build(&tiny_log());
        let s = pv.sparse_row(0);
        assert_eq!(s.to_dense(), pv.matrix.row(0).to_vec());
        assert_eq!(pv.sparse_rows().len(), 3);
    }

    #[test]
    fn sparsity_counts_zero_cells() {
        let pv = VsmBuilder::new().build(&tiny_log());
        // 4 non-zero of 12 cells.
        assert!((pv.sparsity() - (1.0 - 4.0 / 12.0)).abs() < 1e-12);
    }
}
