//! Row-major dense matrix used as the clustering working set.

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

/// A row-major dense `f64` matrix.
///
/// At paper scale the VSM matrix is 6,380 × 159 ≈ 8 MB of `f64`, so a
/// flat dense buffer is both the simplest and the fastest representation
/// for K-means' inner loops (contiguous rows, no indirection).
///
/// The matrix also memoizes its per-row squared norms
/// ([`row_norms_sq`](DenseMatrix::row_norms_sq)): the K-means kernel
/// evaluates distances in dot-product form
/// `d²(x, c) = ‖x‖² − 2·x·c + ‖c‖²`, so the same norm vector is shared
/// across a whole K sweep (and every partial-mining subset built from
/// the same matrix) and computed exactly once. Mutating accessors
/// invalidate the cache.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
    /// Lazily computed `‖row‖²` per row; reset by any mutation.
    #[serde(skip)]
    norms_sq: OnceLock<Vec<f64>>,
}

impl PartialEq for DenseMatrix {
    fn eq(&self, other: &Self) -> bool {
        // The norm cache is derived state; two matrices are equal iff
        // their shapes and payloads are.
        self.rows == other.rows && self.cols == other.cols && self.data == other.data
    }
}

impl DenseMatrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
            norms_sq: OnceLock::new(),
        }
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self {
            rows,
            cols,
            data,
            norms_sq: OnceLock::new(),
        }
    }

    /// Builds from row slices.
    ///
    /// # Panics
    /// Panics when rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n = rows.len();
        let cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: n,
            cols,
            data,
            norms_sq: OnceLock::new(),
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Borrowed view of row `r`.
    ///
    /// # Panics
    /// Panics when `r` is out of range.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    /// Panics when `r` is out of range.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        self.norms_sq.take();
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The value at (r, c).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Sets the value at (r, c).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.norms_sq.take();
        self.data[r * self.cols + c] = v;
    }

    /// Appends one all-zero row, returning its index.
    ///
    /// Streaming builders grow the cohort one patient at a time; the
    /// flat row-major layout makes this a plain `Vec` extension.
    pub fn push_zero_row(&mut self) -> usize {
        self.norms_sq.take();
        self.data.resize(self.data.len() + self.cols, 0.0);
        self.rows += 1;
        self.rows - 1
    }

    /// Widens the matrix to `cols` columns, padding every existing row
    /// with trailing zeros (a no-op when `cols == num_cols()`).
    ///
    /// Streaming builders grow the vocabulary as new exam types appear;
    /// widening restrides the flat buffer once per growth step.
    ///
    /// # Panics
    /// Panics when `cols` is smaller than the current width.
    pub fn grow_cols(&mut self, cols: usize) {
        assert!(cols >= self.cols, "grow_cols cannot shrink the matrix");
        if cols == self.cols {
            return;
        }
        self.norms_sq.take();
        let mut data = vec![0.0; self.rows * cols];
        for r in 0..self.rows {
            data[r * cols..r * cols + self.cols]
                .copy_from_slice(&self.data[r * self.cols..(r + 1) * self.cols]);
        }
        self.data = data;
        self.cols = cols;
    }

    /// Iterates over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1)).take(self.rows)
    }

    /// The flat row-major buffer.
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// A new matrix containing only the selected rows, in the given order.
    ///
    /// # Panics
    /// Panics when any index is out of range.
    pub fn select_rows(&self, indices: &[usize]) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(indices.len(), self.cols);
        for (new_r, &r) in indices.iter().enumerate() {
            out.row_mut(new_r).copy_from_slice(self.row(r));
        }
        out
    }

    /// A new matrix containing only the selected columns, in the given
    /// order.
    ///
    /// # Panics
    /// Panics when any index is out of range.
    pub fn select_cols(&self, indices: &[usize]) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, indices.len());
        for r in 0..self.rows {
            let src = self.row(r);
            let dst = out.row_mut(r);
            for (new_c, &c) in indices.iter().enumerate() {
                dst[new_c] = src[c];
            }
        }
        out
    }

    /// L2-normalizes every row in place; zero rows are left untouched.
    pub fn normalize_rows(&mut self) {
        for r in 0..self.rows {
            let row = self.row_mut(r);
            let norm = row.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > 0.0 {
                for v in row {
                    *v /= norm;
                }
            }
        }
    }

    /// Per-row squared L2 norms, computed once per matrix and cached.
    ///
    /// This is the precomputation behind the K-means kernel's
    /// dot-product distance form: every backend, every K of a sweep,
    /// and every warm-started partial-mining step evaluating distances
    /// against the same matrix shares one norm vector. The cache is
    /// invalidated by [`row_mut`](DenseMatrix::row_mut),
    /// [`set`](DenseMatrix::set), and
    /// [`normalize_rows`](DenseMatrix::normalize_rows).
    pub fn row_norms_sq(&self) -> &[f64] {
        self.norms_sq
            .get_or_init(|| self.rows_iter().map(|row| dot(row, row)).collect())
    }

    /// Per-column means.
    pub fn col_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        if self.rows == 0 {
            return means;
        }
        for row in self.rows_iter() {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= self.rows as f64;
        }
        means
    }
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
/// Panics (in debug builds) on length mismatch.
#[inline]
pub fn distance_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Cosine similarity of two slices; 0.0 when either is a zero vector.
#[inline]
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let denom = norm(a) * norm(b);
    if denom == 0.0 {
        0.0
    } else {
        dot(a, b) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = DenseMatrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(m.num_rows(), 2);
        assert_eq!(m.num_cols(), 3);
    }

    #[test]
    fn from_rows_and_flat_agree() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let a = DenseMatrix::from_rows(&rows);
        let b = DenseMatrix::from_flat(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = DenseMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn growth_pads_with_zeros_and_invalidates_norms() {
        let mut m = DenseMatrix::from_rows(&[vec![3.0, 4.0]]);
        assert_eq!(m.row_norms_sq(), &[25.0]);
        assert_eq!(m.push_zero_row(), 1);
        assert_eq!(m.num_rows(), 2);
        assert_eq!(m.row(1), &[0.0, 0.0]);
        assert_eq!(m.row_norms_sq(), &[25.0, 0.0]);
        m.grow_cols(4);
        assert_eq!(m.num_cols(), 4);
        assert_eq!(m.row(0), &[3.0, 4.0, 0.0, 0.0]);
        assert_eq!(m.row(1), &[0.0, 0.0, 0.0, 0.0]);
        m.set(1, 3, 2.0);
        assert_eq!(m.row_norms_sq(), &[25.0, 4.0]);
        m.grow_cols(4); // no-op
        assert_eq!(m.as_flat().len(), 8);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn grow_cols_rejects_shrinking() {
        let mut m = DenseMatrix::zeros(1, 3);
        m.grow_cols(2);
    }

    #[test]
    fn select_rows_and_cols() {
        let m = DenseMatrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ]);
        let r = m.select_rows(&[2, 0]);
        assert_eq!(r.row(0), &[7.0, 8.0, 9.0]);
        assert_eq!(r.row(1), &[1.0, 2.0, 3.0]);
        let c = m.select_cols(&[2, 1]);
        assert_eq!(c.row(0), &[3.0, 2.0]);
        assert_eq!(c.num_cols(), 2);
    }

    #[test]
    fn normalize_rows_handles_zero_rows() {
        let mut m = DenseMatrix::from_rows(&[vec![3.0, 4.0], vec![0.0, 0.0]]);
        m.normalize_rows();
        assert!((norm(m.row(0)) - 1.0).abs() < 1e-12);
        assert_eq!(m.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn col_means_average() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0]]);
        assert_eq!(m.col_means(), vec![2.0, 20.0]);
        assert_eq!(DenseMatrix::zeros(0, 2).col_means(), vec![0.0, 0.0]);
    }

    #[test]
    fn slice_helpers() {
        let a = [1.0, 2.0, 2.0];
        let b = [0.0, 0.0, 2.0];
        assert_eq!(distance_sq(&a, &b), 1.0 + 4.0);
        assert_eq!(dot(&a, &b), 4.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-12);
        assert_eq!(cosine(&a, &[0.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn row_norms_cache_and_invalidation() {
        let mut m = DenseMatrix::from_rows(&[vec![3.0, 4.0], vec![1.0, 0.0]]);
        assert_eq!(m.row_norms_sq(), &[25.0, 1.0]);
        // Cached pointer is stable across calls.
        let p1 = m.row_norms_sq().as_ptr();
        let p2 = m.row_norms_sq().as_ptr();
        assert_eq!(p1, p2);
        // Mutation invalidates.
        m.set(1, 1, 2.0);
        assert_eq!(m.row_norms_sq(), &[25.0, 5.0]);
        m.row_mut(0)[0] = 0.0;
        assert_eq!(m.row_norms_sq(), &[16.0, 5.0]);
        m.normalize_rows();
        let norms = m.row_norms_sq().to_vec();
        assert!((norms[0] - 1.0).abs() < 1e-12 && (norms[1] - 1.0).abs() < 1e-12);
        // Clones carry (or recompute) a consistent cache.
        let c = m.clone();
        assert_eq!(c.row_norms_sq(), m.row_norms_sq());
    }

    #[test]
    fn rows_iter_matches_row() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let collected: Vec<&[f64]> = m.rows_iter().collect();
        assert_eq!(collected, vec![m.row(0), m.row(1)]);
    }
}
