//! # ada-vsm
//!
//! Vector Space Model and linear-algebra substrate for ADA-HEALTH.
//!
//! The paper's only implemented data transformation maps the examination
//! log "to a Vector Space Model (VSM) representation, which is
//! particularly suited to handle sparse datasets": one vector per
//! patient, counting how many times the patient underwent each exam type.
//! This crate provides:
//!
//! * [`sparse::SparseVec`] — sorted-pairs sparse vectors with the usual
//!   algebra (dot, norms, cosine);
//! * [`dense::DenseMatrix`] — a row-major dense matrix used as the
//!   clustering working set (159 columns at paper scale is comfortably
//!   dense);
//! * [`vsm::VsmBuilder`] — the ExamLog → patient×exam matrix
//!   transformation under selectable weightings (count, binary, TF-IDF,
//!   log-count) and feature filters (the horizontal partial-mining knob);
//! * [`kdtree::KdTree`] — a bounding-box kd-tree with per-node aggregate
//!   statistics (count, vector sum, squared-norm sum), exactly the
//!   structure Kanungo et al.'s *filtering* K-means (the paper's
//!   reference \[3\]) traverses.

#![warn(missing_docs)]

pub mod dense;
pub mod kdtree;
pub mod reduce;
pub mod sparse;
pub mod vsm;

pub use dense::DenseMatrix;
pub use kdtree::KdTree;
pub use reduce::{Pca, Standardizer};
pub use sparse::SparseVec;
pub use vsm::{PatientVectors, VsmBuilder, Weighting};
