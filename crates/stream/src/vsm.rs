//! The incremental vector-space model.
//!
//! `ada_vsm::VsmBuilder` builds a whole-cohort matrix in one pass; the
//! streaming layer cannot afford that — it updates per-patient count
//! vectors *in place* as windows close. Rows (patients) and columns
//! (exam types) are appended in order of first appearance in the
//! canonical fold sequence, which makes the layout a pure function of
//! the folded record multiset: any delivery order that folds the same
//! windows produces a byte-identical matrix.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use ada_dataset::{ExamTypeId, PatientId};
use ada_vsm::DenseMatrix;

use crate::fingerprint::Fnv64;

/// One folded record group: `(day, patient, exam, count)` in canonical
/// `(day, patient, exam)` order.
pub type FoldEntry = (i64, u32, u32, i64);

/// A multiplicative hasher for the dense `u32` id keys of the row and
/// column maps: the fold path does two lookups per record, and SipHash
/// is measurable overhead there. Fibonacci hashing mixes the id into
/// the high bits; the final xor-shift folds them back down for the
/// table's low-bit bucket index.
#[derive(Default)]
pub struct IdHasher(u64);

impl Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0 ^ (self.0 >> 32)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    fn write_u32(&mut self, i: u32) {
        self.0 = (self.0 ^ u64::from(i)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

type IdMap = HashMap<u32, usize, BuildHasherDefault<IdHasher>>;

/// Per-patient exam-count vectors, grown in place.
#[derive(Debug, Clone)]
pub struct IncrementalVsm {
    matrix: DenseMatrix,
    row_of: IdMap,
    patients: Vec<PatientId>,
    col_of: IdMap,
    features: Vec<ExamTypeId>,
    version: u64,
}

impl Default for IncrementalVsm {
    fn default() -> Self {
        Self::new()
    }
}

impl IncrementalVsm {
    /// An empty model: no patients, no vocabulary.
    pub fn new() -> Self {
        Self {
            matrix: DenseMatrix::zeros(0, 0),
            row_of: IdMap::default(),
            patients: Vec::new(),
            col_of: IdMap::default(),
            features: Vec::new(),
            version: 0,
        }
    }

    /// Folds one closed window's entries (canonical order) into the
    /// matrix. New exam types grow the vocabulary — the column map's
    /// version bumps once per growth event — and new patients append
    /// zero rows before their counts land.
    pub fn fold(&mut self, entries: &[FoldEntry]) {
        // Vocabulary growth first, one restride for the whole window.
        let mut grew = false;
        for &(_, _, exam, _) in entries {
            if !self.col_of.contains_key(&exam) {
                self.col_of.insert(exam, self.features.len());
                self.features.push(ExamTypeId(exam));
                grew = true;
            }
        }
        if grew {
            self.version += 1;
            self.matrix.grow_cols(self.features.len());
        }
        for &(_, patient, exam, count) in entries {
            let row = *self.row_of.entry(patient).or_insert_with(|| {
                self.patients.push(PatientId(patient));
                self.matrix.push_zero_row()
            });
            let col = self.col_of[&exam];
            let cell = self.matrix.get(row, col);
            self.matrix.set(row, col, cell + count as f64);
        }
    }

    /// The count matrix (active patients × seen exam types).
    pub fn matrix(&self) -> &DenseMatrix {
        &self.matrix
    }

    /// Active patients in row order.
    pub fn patients(&self) -> &[PatientId] {
        &self.patients
    }

    /// Seen exam types in column order.
    pub fn features(&self) -> &[ExamTypeId] {
        &self.features
    }

    /// Number of active patients (rows).
    pub fn rows(&self) -> usize {
        self.patients.len()
    }

    /// Vocabulary size (columns).
    pub fn vocab(&self) -> usize {
        self.features.len()
    }

    /// Column-map version: bumps once per window that grew the
    /// vocabulary. A model fitted at version `v` must be zero-padded
    /// before warm-starting at a later version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// FNV-1a over the whole state: shape, version, row/column orders,
    /// and every cell's exact bit pattern.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.patients.len() as u64);
        h.write_u64(self.features.len() as u64);
        h.write_u64(self.version);
        for p in &self.patients {
            h.write_u64(u64::from(p.0));
        }
        for e in &self.features {
            h.write_u64(u64::from(e.0));
        }
        for &v in self.matrix.as_flat() {
            h.write_f64(v);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_grows_rows_and_columns_in_first_appearance_order() {
        let mut vsm = IncrementalVsm::new();
        vsm.fold(&[(10, 7, 3, 2), (10, 9, 1, 1)]);
        assert_eq!(vsm.rows(), 2);
        assert_eq!(vsm.vocab(), 2);
        assert_eq!(vsm.version(), 1);
        assert_eq!(vsm.patients(), &[PatientId(7), PatientId(9)]);
        assert_eq!(vsm.features(), &[ExamTypeId(3), ExamTypeId(1)]);
        assert_eq!(vsm.matrix().row(0), &[2.0, 0.0]);
        assert_eq!(vsm.matrix().row(1), &[0.0, 1.0]);
        // Second window: existing patient gains counts, new exam grows
        // the vocabulary (version bump), new patient appends a row.
        vsm.fold(&[(20, 7, 5, 1), (20, 2, 3, 4)]);
        assert_eq!(vsm.rows(), 3);
        assert_eq!(vsm.vocab(), 3);
        assert_eq!(vsm.version(), 2);
        assert_eq!(vsm.matrix().row(0), &[2.0, 0.0, 1.0]);
        assert_eq!(vsm.matrix().row(2), &[4.0, 0.0, 0.0]);
        // A window with no new vocabulary does not bump the version.
        vsm.fold(&[(30, 7, 1, 1)]);
        assert_eq!(vsm.version(), 2);
    }

    #[test]
    fn fingerprint_tracks_state_exactly() {
        let mut a = IncrementalVsm::new();
        let mut b = IncrementalVsm::new();
        a.fold(&[(1, 0, 0, 1), (1, 1, 1, 1)]);
        b.fold(&[(1, 0, 0, 1), (1, 1, 1, 1)]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.fold(&[(2, 0, 0, 1)]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Same multiset, different fold grouping, same windows → equal:
        let mut c = IncrementalVsm::new();
        c.fold(&[(1, 0, 0, 1)]);
        c.fold(&[(1, 1, 1, 1)]);
        // Row/column order differs only if first-appearance order
        // differs; here it does not.
        a.fold(&[]);
        assert_eq!(c.rows(), a.rows());
    }
}
