//! # ada-stream — streaming ingestion and incremental mining
//!
//! The rest of the workspace analyzes a *static cohort snapshot*: load
//! the whole `ExamLog`, build the VSM, mine it, report. This crate
//! opens the "hospital feed" scenario instead — exam records arrive
//! one at a time (or in small batches, possibly out of timestamp
//! order) and the system continuously absorbs them:
//!
//! * **[`StreamEngine`]** — the deterministic core. A bounded reorder
//!   buffer absorbs out-of-order arrivals; a watermark (`newest
//!   timestamp seen − allowed lateness`) closes fixed-length windows;
//!   each closed window's records are folded in *canonical order*
//!   (`(day, patient, exam)`) into an incremental VSM ([`IncrementalVsm`]:
//!   per-patient count vectors updated in place, vocabulary growth via
//!   a versioned column map) and then drive a mini-batch K-means
//!   update warm-started from the previous model, with a seeded drift
//!   detector escalating to a full re-fit when the model has gone
//!   stale. Every closed window is checkpointed into the
//!   schema-validated `stream_windows` K-DB collection, so a restart —
//!   or a promoted replication follower — replays the checkpoints and
//!   resumes byte-identically from the last durable watermark.
//! * **[`StreamHandle`]** — the concurrency shell: a bounded,
//!   backpressured ingestion channel feeding one fold worker, with a
//!   flush barrier for read-your-writes status queries.
//! * **[`StreamMiningSpec`] / [`StreamReport`]** — the session-shaped
//!   packaging `ada-service` runs as `Workload::StreamMining`.
//!
//! ## Determinism
//!
//! The flagship invariant, proptest-pinned in `tests/`: the same
//! record stream (same seed, same window boundaries) produces a
//! byte-identical VSM and model whether ingested in one batch, record
//! by record, or replayed after a crash from the durable watermark —
//! because windows close on *timestamps*, not on arrival boundaries,
//! and every fold happens in canonical order. A drift-triggered full
//! re-fit equals a cold [`ada_mining::KMeans::fit`] over the same
//! accumulated cohort, by construction (it *is* one).

pub mod channel;
pub mod config;
pub mod engine;
pub mod error;
pub mod fingerprint;
pub mod spec;
pub mod vsm;

pub use channel::{IngestAck, IngestRejected, StreamHandle};
pub use config::StreamConfig;
pub use engine::StreamEngine;
pub use error::StreamError;
pub use fingerprint::Fnv64;
pub use spec::{StreamMiningSpec, StreamReport};
pub use vsm::IncrementalVsm;
