//! Stream configuration.

use serde::{Deserialize, Serialize};

/// Everything that defines a stream's deterministic behaviour.
///
/// Two engines opened with equal configurations and fed the same
/// record multiset produce byte-identical state regardless of delivery
/// order (within the lateness bound) or batch boundaries — the config
/// is therefore part of the stream's identity, and resuming a durable
/// stream with a *different* config is refused as corruption.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Stream name: tags every `stream_windows` checkpoint, every
    /// flight-recorder mark, and the service registry entry.
    pub name: String,
    /// Window length in days. Windows are aligned to the epoch
    /// (`day.div_euclid(window_days)`), not to the first record, so
    /// window boundaries never depend on arrival order.
    pub window_days: i64,
    /// Allowed lateness in days: the watermark trails the newest
    /// timestamp seen by this much, and a window only closes once the
    /// watermark passes its end. Larger values tolerate more disorder
    /// at the cost of buffering and result latency.
    pub lateness_days: i64,
    /// Number of clusters mined.
    pub k: usize,
    /// Master seed for every K-means initialization (warm updates
    /// inherit centroids instead of re-initializing, so the seed only
    /// re-enters on full re-fits — which is what makes a drift re-fit
    /// equal a cold fit).
    pub seed: u64,
    /// Lloyd iteration budget of one warm mini-batch update (small:
    /// the model moves a bounded amount per window).
    pub update_iters: usize,
    /// Lloyd iteration budget of a full (cold) re-fit.
    pub refit_iters: usize,
    /// Drift escalation threshold: a warm update whose SSE-per-row
    /// exceeds `threshold ×` the last full fit's baseline triggers a
    /// full re-fit.
    pub drift_threshold: f64,
    /// Minimum active patients (non-zero rows) before the first model
    /// is fit; below this the stream folds records but reports no
    /// model.
    pub min_rows: usize,
    /// Whether every window close runs a model update. `false` folds
    /// and checkpoints only (the model then moves on demand via
    /// [`crate::StreamEngine::force_refit`]) — the smoke bench uses
    /// this to measure the pure ingest path.
    pub mine_on_close: bool,
    /// Bounded ingestion-channel capacity in *batches*; a full channel
    /// pushes back on the producer (wire callers see `Busy`).
    pub channel_capacity: usize,
}

impl StreamConfig {
    /// A sensible default stream: weekly windows, two weeks of
    /// lateness, k=4, mining on every close.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            window_days: 7,
            lateness_days: 14,
            k: 4,
            seed: 0,
            update_iters: 5,
            refit_iters: 100,
            drift_threshold: 1.25,
            min_rows: 16,
            mine_on_close: true,
            channel_capacity: 64,
        }
    }

    /// Sets the window length in days.
    #[must_use]
    pub fn window_days(mut self, days: i64) -> Self {
        self.window_days = days;
        self
    }

    /// Sets the allowed lateness in days.
    #[must_use]
    pub fn lateness_days(mut self, days: i64) -> Self {
        self.lateness_days = days;
        self
    }

    /// Sets the number of clusters.
    #[must_use]
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the warm-update iteration budget.
    #[must_use]
    pub fn update_iters(mut self, iters: usize) -> Self {
        self.update_iters = iters;
        self
    }

    /// Sets the full re-fit iteration budget.
    #[must_use]
    pub fn refit_iters(mut self, iters: usize) -> Self {
        self.refit_iters = iters;
        self
    }

    /// Sets the drift escalation threshold.
    #[must_use]
    pub fn drift_threshold(mut self, threshold: f64) -> Self {
        self.drift_threshold = threshold;
        self
    }

    /// Sets the minimum active rows before the first fit.
    #[must_use]
    pub fn min_rows(mut self, rows: usize) -> Self {
        self.min_rows = rows;
        self
    }

    /// Enables or disables mining on window close.
    #[must_use]
    pub fn mine_on_close(mut self, mine: bool) -> Self {
        self.mine_on_close = mine;
        self
    }

    /// Sets the ingestion-channel capacity (batches).
    #[must_use]
    pub fn channel_capacity(mut self, capacity: usize) -> Self {
        self.channel_capacity = capacity;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_every_knob() {
        let c = StreamConfig::new("feed")
            .window_days(3)
            .lateness_days(9)
            .k(7)
            .seed(11)
            .update_iters(2)
            .refit_iters(50)
            .drift_threshold(2.0)
            .min_rows(5)
            .mine_on_close(false)
            .channel_capacity(8);
        assert_eq!(c.name, "feed");
        assert_eq!(c.window_days, 3);
        assert_eq!(c.lateness_days, 9);
        assert_eq!(c.k, 7);
        assert_eq!(c.seed, 11);
        assert_eq!(c.update_iters, 2);
        assert_eq!(c.refit_iters, 50);
        assert_eq!(c.drift_threshold, 2.0);
        assert_eq!(c.min_rows, 5);
        assert!(!c.mine_on_close);
        assert_eq!(c.channel_capacity, 8);
    }
}
