//! The concurrent front door: a bounded, backpressured ingestion
//! channel in front of a [`StreamEngine`].
//!
//! Producers (wire handlers, the example feed, benches) enqueue
//! batches without blocking the engine; a dedicated worker thread
//! drains them in arrival order. The channel is bounded by
//! [`crate::StreamConfig::channel_capacity`] — a full channel rejects
//! the batch instead of buffering unboundedly, which the service layer
//! maps to its standard `Busy` backpressure signal.
//!
//! Reads are *read-your-writes*: [`StreamHandle::status`] and
//! [`StreamHandle::seal`] flush everything enqueued before them, so a
//! caller that saw its batch accepted sees that batch's effect in the
//! next query.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use ada_dataset::ExamRecord;
use ada_kdb::Document;

use crate::engine::StreamEngine;
use crate::error::StreamError;

/// Why a batch was not accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestRejected {
    /// The bounded channel is full: back off and retry.
    Full,
    /// The stream was closed (service shutdown or explicit close).
    Closed,
    /// The worker hit a persistent fault (e.g. a checkpoint write
    /// failed); the stream is poisoned and reports the first error.
    Fault(String),
}

impl std::fmt::Display for IngestRejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestRejected::Full => write!(f, "ingestion channel full"),
            IngestRejected::Closed => write!(f, "stream closed"),
            IngestRejected::Fault(msg) => write!(f, "stream faulted: {msg}"),
        }
    }
}

/// A successful enqueue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestAck {
    /// Records accepted in this batch.
    pub accepted: usize,
    /// Batches enqueued but not yet drained (including this one).
    pub pending: usize,
}

enum Op {
    Ingest(Vec<ExamRecord>),
    Seal,
}

struct Shared {
    /// Batches enqueued and not yet fully processed.
    pending: Mutex<usize>,
    drained: Condvar,
    /// First worker error, if any (poisons the stream).
    fault: Mutex<Option<String>>,
}

/// Thread-safe handle over a [`StreamEngine`]: bounded ingestion plus
/// flushing queries. Cloning is cheap (it is an `Arc` inside); the
/// worker stops when [`StreamHandle::close`] runs or the last handle
/// drops.
pub struct StreamHandle {
    engine: Arc<Mutex<StreamEngine>>,
    sender: Mutex<Option<SyncSender<Op>>>,
    shared: Arc<Shared>,
    worker: Mutex<Option<JoinHandle<()>>>,
    name: String,
    capacity: usize,
}

impl StreamHandle {
    /// Wraps an opened engine, spawning the drain worker.
    pub fn spawn(engine: StreamEngine) -> Arc<Self> {
        let capacity = engine.config().channel_capacity.max(1);
        let name = engine.config().name.clone();
        let engine = Arc::new(Mutex::new(engine));
        let shared = Arc::new(Shared {
            pending: Mutex::new(0),
            drained: Condvar::new(),
            fault: Mutex::new(None),
        });
        let (sender, receiver) = sync_channel::<Op>(capacity);
        let worker = {
            let engine = Arc::clone(&engine);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("ada-stream-{name}"))
                .spawn(move || drain(&engine, &shared, &receiver))
                .expect("spawn stream worker")
        };
        Arc::new(Self {
            engine,
            sender: Mutex::new(Some(sender)),
            shared,
            worker: Mutex::new(Some(worker)),
            name,
            capacity,
        })
    }

    /// The stream's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The bounded channel's capacity in batches (the backpressure
    /// threshold reported alongside `Full` rejections).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues a batch without blocking. A full channel rejects with
    /// [`IngestRejected::Full`] — that is the backpressure contract.
    pub fn try_ingest(&self, records: Vec<ExamRecord>) -> Result<IngestAck, IngestRejected> {
        if let Some(msg) = self.shared.fault.lock().unwrap().clone() {
            return Err(IngestRejected::Fault(msg));
        }
        let accepted = records.len();
        let sender = self.sender.lock().unwrap();
        let Some(sender) = sender.as_ref() else {
            return Err(IngestRejected::Closed);
        };
        // Count before sending so a racing flush cannot observe the
        // batch in the channel but not in `pending`.
        let mut pending = self.shared.pending.lock().unwrap();
        *pending += 1;
        match sender.try_send(Op::Ingest(records)) {
            Ok(()) => Ok(IngestAck {
                accepted,
                pending: *pending,
            }),
            Err(err) => {
                *pending -= 1;
                match err {
                    TrySendError::Full(_) => Err(IngestRejected::Full),
                    TrySendError::Disconnected(_) => Err(IngestRejected::Closed),
                }
            }
        }
    }

    /// Blocks until every batch enqueued before this call has been
    /// drained into the engine, then surfaces any worker fault.
    pub fn flush(&self) -> Result<(), StreamError> {
        let mut pending = self.shared.pending.lock().unwrap();
        while *pending > 0 {
            pending = self.shared.drained.wait(pending).unwrap();
        }
        drop(pending);
        match self.shared.fault.lock().unwrap().clone() {
            Some(msg) => Err(StreamError::Corrupt(msg)),
            None => Ok(()),
        }
    }

    /// Flushes, then closes every buffered window regardless of the
    /// watermark (end of feed).
    ///
    /// # Errors
    /// Worker faults and checkpoint persistence failures.
    pub fn seal(&self) -> Result<(), StreamError> {
        {
            let guard = self.sender.lock().unwrap();
            let Some(sender) = guard.as_ref() else {
                return Err(StreamError::Corrupt("stream closed".into()));
            };
            // Never block inside `send` while holding the `pending`
            // mutex: the worker needs it to finish an op (and free
            // channel space), which would deadlock against a full
            // channel. Wait for room on the `drained` condvar instead —
            // the worker signals it after every op.
            let mut pending = self.shared.pending.lock().unwrap();
            loop {
                *pending += 1;
                match sender.try_send(Op::Seal) {
                    Ok(()) => break,
                    Err(TrySendError::Full(_)) => {
                        *pending -= 1;
                        pending = self.shared.drained.wait(pending).unwrap();
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        *pending -= 1;
                        return Err(StreamError::Corrupt("stream worker gone".into()));
                    }
                }
            }
        }
        self.flush()
    }

    /// Flushes and returns the stream's status document
    /// (read-your-writes: reflects every batch accepted before this
    /// call).
    ///
    /// # Errors
    /// Worker faults surfaced by the flush.
    pub fn status(&self) -> Result<Document, StreamError> {
        self.flush()?;
        Ok(self.engine.lock().unwrap().status_document())
    }

    /// Flushes and runs `f` against the engine (model queries, forced
    /// re-fits).
    ///
    /// # Errors
    /// Worker faults surfaced by the flush.
    pub fn with_engine<T>(&self, f: impl FnOnce(&mut StreamEngine) -> T) -> Result<T, StreamError> {
        self.flush()?;
        Ok(f(&mut self.engine.lock().unwrap()))
    }

    /// Drains outstanding work and stops the worker. Idempotent; the
    /// handle rejects ingestion afterwards. Does *not* seal — buffered
    /// windows stay buffered (their records are pre-watermark and will
    /// be re-delivered on resume by a replaying source).
    pub fn close(&self) {
        let sender = self.sender.lock().unwrap().take();
        drop(sender);
        if let Some(worker) = self.worker.lock().unwrap().take() {
            let _ = worker.join();
        }
    }
}

impl Drop for StreamHandle {
    fn drop(&mut self) {
        self.close();
    }
}

/// The worker loop: apply operations in arrival order, record the
/// first fault, signal the flush barrier after every operation.
fn drain(engine: &Mutex<StreamEngine>, shared: &Shared, receiver: &Receiver<Op>) {
    while let Ok(op) = receiver.recv() {
        let result = {
            let mut engine = engine.lock().unwrap();
            match op {
                Op::Ingest(records) => engine.ingest(&records),
                Op::Seal => engine.seal(),
            }
        };
        if let Err(err) = result {
            let mut fault = shared.fault.lock().unwrap();
            if fault.is_none() {
                *fault = Some(err.to_string());
            }
        }
        let mut pending = shared.pending.lock().unwrap();
        *pending = pending.saturating_sub(1);
        shared.drained.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StreamConfig;
    use ada_dataset::{Date, ExamTypeId, PatientId};

    fn rec(patient: u32, exam: u32, month: u8, day: u8) -> ExamRecord {
        ExamRecord::new(
            PatientId(patient),
            ExamTypeId(exam),
            Date::new(2015, month, day).unwrap(),
        )
    }

    #[test]
    fn handle_matches_direct_engine_state() {
        let config = StreamConfig::new("h")
            .window_days(7)
            .lateness_days(3)
            .k(2)
            .min_rows(2);
        let feed = vec![
            rec(0, 0, 1, 2),
            rec(1, 1, 1, 4),
            rec(0, 1, 1, 12),
            rec(2, 0, 1, 20),
            rec(1, 0, 2, 3),
        ];
        let handle = StreamHandle::spawn(StreamEngine::new(config.clone()));
        for batch in feed.chunks(2) {
            handle.try_ingest(batch.to_vec()).unwrap();
        }
        handle.seal().unwrap();
        let via_handle = handle
            .with_engine(|e| (e.vsm_fingerprint(), e.model_fingerprint()))
            .unwrap();
        handle.close();

        let mut direct = StreamEngine::new(config);
        direct.ingest(&feed).unwrap();
        direct.seal().unwrap();
        assert_eq!(
            via_handle,
            (direct.vsm_fingerprint(), direct.model_fingerprint())
        );
    }

    #[test]
    fn seal_survives_a_saturated_channel() {
        // Regression: seal once blocked inside `send` while holding the
        // `pending` mutex, deadlocking against a full channel whose
        // worker needed that mutex to free a slot. Hammer a capacity-1
        // channel so seal frequently races a full buffer.
        let handle = StreamHandle::spawn(StreamEngine::new(
            StreamConfig::new("full")
                .window_days(7)
                .lateness_days(3)
                .channel_capacity(1),
        ));
        let mut sent = 0u64;
        for i in 0..400u32 {
            let batch = vec![rec(i % 11, i % 5, 1 + (i % 6) as u8, 1 + (i % 27) as u8)];
            loop {
                match handle.try_ingest(batch.clone()) {
                    Ok(_) => {
                        sent += 1;
                        break;
                    }
                    Err(IngestRejected::Full) => std::thread::yield_now(),
                    Err(other) => panic!("unexpected rejection: {other}"),
                }
            }
            if i % 40 == 0 {
                handle.seal().unwrap();
            }
        }
        handle.seal().unwrap();
        let status = handle.status().unwrap();
        assert_eq!(status.get("ingested").unwrap().as_i64(), Some(sent as i64));
        handle.close();
    }

    #[test]
    fn status_is_read_your_writes_and_close_rejects() {
        let handle = StreamHandle::spawn(StreamEngine::new(
            StreamConfig::new("s").window_days(7).lateness_days(3),
        ));
        let ack = handle
            .try_ingest(vec![rec(0, 0, 1, 2), rec(1, 0, 1, 3)])
            .unwrap();
        assert_eq!(ack.accepted, 2);
        let status = handle.status().unwrap();
        assert_eq!(status.get("ingested").unwrap().as_i64(), Some(2));
        handle.close();
        assert_eq!(
            handle.try_ingest(vec![rec(2, 0, 1, 4)]),
            Err(IngestRejected::Closed)
        );
    }
}
