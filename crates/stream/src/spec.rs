//! The service-facing workload surface: a serializable spec for a
//! stream-mining session and the report it yields.

use serde::{Deserialize, Serialize};

use crate::config::StreamConfig;
use crate::engine::StreamEngine;
use crate::fingerprint::format_fp;

/// Parameters of a `Workload::StreamMining` session: the service feeds
/// the session's cohort through a [`StreamEngine`] in timestamp order
/// (with seeded bounded disorder, exercising the reorder buffer) and
/// reports the resulting live model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamMiningSpec {
    /// Window length in days.
    pub window_days: i64,
    /// Allowed lateness in days.
    pub lateness_days: i64,
    /// Clusters mined.
    pub k: usize,
    /// Master seed (K-means init *and* feed disorder).
    pub seed: u64,
    /// Warm mini-batch iteration budget.
    pub update_iters: usize,
    /// Full re-fit iteration budget.
    pub refit_iters: usize,
    /// Drift escalation threshold.
    pub drift_threshold: f64,
    /// Minimum active rows before the first fit.
    pub min_rows: usize,
    /// Bounded-disorder block size for the replayed feed (`<= 1` means
    /// strict timestamp order; must stay within the lateness bound for
    /// loss-free delivery).
    pub disorder: usize,
    /// Ingestion batch size when replaying the cohort.
    pub chunk: usize,
}

impl Default for StreamMiningSpec {
    fn default() -> Self {
        Self {
            window_days: 7,
            lateness_days: 14,
            k: 4,
            seed: 0,
            update_iters: 5,
            refit_iters: 100,
            drift_threshold: 1.25,
            min_rows: 16,
            disorder: 8,
            chunk: 256,
        }
    }
}

impl StreamMiningSpec {
    /// A small, fast spec for smoke paths and tests.
    pub fn quick() -> Self {
        Self {
            window_days: 7,
            lateness_days: 7,
            k: 3,
            update_iters: 3,
            refit_iters: 30,
            min_rows: 8,
            disorder: 4,
            chunk: 64,
            ..Self::default()
        }
    }

    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the cluster count.
    #[must_use]
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// The engine configuration this spec describes, under `name`.
    pub fn to_config(&self, name: impl Into<String>) -> StreamConfig {
        StreamConfig::new(name)
            .window_days(self.window_days)
            .lateness_days(self.lateness_days)
            .k(self.k)
            .seed(self.seed)
            .update_iters(self.update_iters)
            .refit_iters(self.refit_iters)
            .drift_threshold(self.drift_threshold)
            .min_rows(self.min_rows)
    }
}

/// What a stream-mining session reports: the deterministic summary of
/// the stream's final state (fingerprints stand in for the matrices).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamReport {
    /// Stream name.
    pub stream: String,
    /// Records accepted by the engine.
    pub ingested: u64,
    /// Records folded through closed windows.
    pub folded: u64,
    /// Out-of-order arrivals absorbed by the reorder buffer.
    pub reordered: u64,
    /// Late arrivals dropped behind the closed bound.
    pub dropped: u64,
    /// Windows closed.
    pub windows_closed: u64,
    /// Full re-fits (first fit + drift escalations).
    pub refits: u64,
    /// Active patients (matrix rows).
    pub rows: usize,
    /// Vocabulary size (matrix columns).
    pub vocab: usize,
    /// Column-map version.
    pub vocab_version: u64,
    /// Last drift score.
    pub drift: f64,
    /// Final model SSE (0 when no model was fit).
    pub sse: f64,
    /// Whether a model exists.
    pub has_model: bool,
    /// FNV-1a fingerprint of the VSM state (16 hex digits).
    pub vsm_fp: String,
    /// FNV-1a fingerprint of the model ("" when none).
    pub model_fp: String,
}

impl StreamReport {
    /// Snapshots an engine's deterministic summary.
    pub fn from_engine(engine: &StreamEngine) -> Self {
        let status = engine.status_document();
        let geti = |field: &str| {
            status
                .get(field)
                .and_then(ada_kdb::Value::as_i64)
                .unwrap_or(0) as u64
        };
        Self {
            stream: engine.config().name.clone(),
            ingested: geti("ingested"),
            folded: engine.folded(),
            reordered: geti("reordered"),
            dropped: geti("dropped"),
            windows_closed: engine.windows_closed(),
            refits: engine.refits(),
            rows: engine.vsm().rows(),
            vocab: engine.vsm().vocab(),
            vocab_version: engine.vsm().version(),
            drift: engine.drift(),
            sse: engine.model().map_or(0.0, |m| m.sse),
            has_model: engine.model().is_some(),
            vsm_fp: format_fp(engine.vsm_fingerprint()),
            model_fp: engine.model_fingerprint().map_or(String::new(), format_fp),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_maps_every_knob_onto_the_config() {
        let spec = StreamMiningSpec::quick().seed(9).k(5);
        let config = spec.to_config("feed");
        assert_eq!(config.name, "feed");
        assert_eq!(config.k, 5);
        assert_eq!(config.seed, 9);
        assert_eq!(config.window_days, spec.window_days);
        assert_eq!(config.lateness_days, 7);
        assert_eq!(config.update_iters, spec.update_iters);
        assert_eq!(config.refit_iters, spec.refit_iters);
        assert_eq!(config.drift_threshold, spec.drift_threshold);
        assert_eq!(config.min_rows, spec.min_rows);
        assert!(config.mine_on_close);
    }

    #[test]
    fn report_reflects_engine_state() {
        let engine = StreamEngine::new(StreamConfig::new("r"));
        let report = StreamReport::from_engine(&engine);
        assert_eq!(report.stream, "r");
        assert_eq!(report.windows_closed, 0);
        assert!(!report.has_model);
        assert_eq!(report.vsm_fp.len(), 16);
        assert_eq!(report.model_fp, "");
    }
}
