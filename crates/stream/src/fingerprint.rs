//! Streaming FNV-1a fingerprints.
//!
//! The determinism gates compare VSM and model state across ingestion
//! orders, chunkings, and crash replays without shipping matrices
//! around; a 64-bit FNV-1a over the exact bit patterns is the
//! established workspace idiom for "byte-identical or not".

/// An incremental 64-bit FNV-1a hasher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Mixes raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Mixes one `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Mixes one `i64` (little-endian two's complement).
    pub fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    /// Mixes one `f64`'s exact bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Formats a digest the way the `stream_windows` schema stores it: 16
/// lowercase hex digits.
pub fn format_fp(fp: u64) -> String {
    format!("{fp:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector_and_sensitivity() {
        // FNV-1a("a") is a published test vector.
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut x = Fnv64::new();
        x.write_f64(1.0);
        let mut y = Fnv64::new();
        y.write_f64(1.0 + f64::EPSILON);
        assert_ne!(x.finish(), y.finish(), "one-ulp difference must show");
        assert_eq!(format_fp(0xaf), "00000000000000af");
    }
}
