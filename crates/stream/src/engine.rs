//! The deterministic streaming core: reorder buffer, watermark,
//! window closes, incremental mining, durable checkpoints.
//!
//! ## Watermark and reorder semantics
//!
//! Records carry calendar days (`Date::days_since_epoch`). Windows are
//! `window_days` long and aligned to the epoch — window `w` covers
//! days `[w·len, (w+1)·len)` — so window boundaries are a property of
//! the *data*, never of arrival order. Arrivals land in a per-window
//! reorder buffer (append-only, so the hot ingest path is one `Vec`
//! push); the watermark is `newest day seen − lateness_days`, and a
//! window closes once the watermark reaches its end: from then on no
//! in-bound arrival can belong to it. Closing sorts the window's
//! records into canonical `(day, patient, exam)` order, folds them
//! into the incremental VSM, runs the mini-batch model update, and
//! persists one `stream_windows` checkpoint. Arrivals behind the
//! closed bound are *late*: counted, dropped, never folded.
//!
//! ## Determinism argument
//!
//! Every fold consumes a window's records in canonical `(day, patient,
//! exam)` order with multiplicities — a pure function of the record
//! multiset, not of delivery order or batch boundaries. Model updates
//! run only at window closes, which happen at the same points (between
//! the same folds) for every delivery schedule. Hence: one batch,
//! record-by-record, or any in-bound shuffle → byte-identical VSM,
//! model, and checkpoints. Crash replay folds the checkpointed windows
//! (stored in canonical order) through the same code path and verifies
//! the stored fingerprints as it goes, then resumes at the durable
//! watermark.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use ada_dataset::ExamRecord;
use ada_kdb::schema::{self, names};
use ada_kdb::{Document, Filter, KdbError, SharedKdb, Value};
use ada_mining::kmeans::pad_centroids;
use ada_mining::{KMeans, KMeansResult};
use ada_obs::{FlightRecorder, StreamMetrics};
use ada_vsm::DenseMatrix;

use crate::config::StreamConfig;
use crate::error::StreamError;
use crate::fingerprint::format_fp;
use crate::vsm::{FoldEntry, IncrementalVsm};

/// One buffered record: canonical identity `(day, patient, exam)`.
type Rec = (i64, u32, u32);

/// The deterministic streaming state machine (single-threaded; wrap in
/// [`crate::StreamHandle`] for a concurrent front door).
pub struct StreamEngine {
    config: StreamConfig,
    kdb: Option<SharedKdb>,
    metrics: Arc<StreamMetrics>,
    recorder: Option<Arc<FlightRecorder>>,
    /// Buffered (not yet folded) records, grouped by window id in
    /// arrival order; sorted into canonical order at close.
    buffer: BTreeMap<i64, Vec<Rec>>,
    buffered_records: i64,
    /// Newest day seen (drives the watermark).
    max_day: Option<i64>,
    /// Exclusive day bound of the closed region: arrivals below it are
    /// late. `None` until the first window closes.
    closed_bound: Option<i64>,
    schema_ready: bool,
    vsm: IncrementalVsm,
    model: Option<KMeansResult>,
    /// SSE per row at the last full fit (the drift baseline).
    baseline: f64,
    last_drift: f64,
    // Deterministic (checkpointed) counters.
    windows_closed: u64,
    folded: u64,
    refits: u64,
    // Process-local (not checkpointed) counters.
    ingested: u64,
    reordered: u64,
    dropped: u64,
    forced_refits: u64,
}

impl StreamEngine {
    /// A fresh engine with no checkpoint store (tests, benches).
    pub fn new(config: StreamConfig) -> Self {
        Self {
            config,
            kdb: None,
            metrics: Arc::new(StreamMetrics::new()),
            recorder: None,
            buffer: BTreeMap::new(),
            buffered_records: 0,
            max_day: None,
            closed_bound: None,
            schema_ready: false,
            vsm: IncrementalVsm::new(),
            model: None,
            baseline: 0.0,
            last_drift: 0.0,
            windows_closed: 0,
            folded: 0,
            refits: 0,
            ingested: 0,
            reordered: 0,
            dropped: 0,
            forced_refits: 0,
        }
    }

    /// Opens a stream over a durable store: if `stream_windows` holds
    /// checkpoints for this stream name, they are replayed — each
    /// window folded through the normal code path and verified against
    /// its stored fingerprints — and the engine resumes from the last
    /// durable watermark. Returns the engine and the number of
    /// resumed windows.
    ///
    /// The configuration must equal the one that wrote the
    /// checkpoints; a mismatch surfaces as a fingerprint divergence
    /// ([`StreamError::Corrupt`]) rather than a silent history fork.
    ///
    /// # Errors
    /// [`StreamError::Kdb`] on store errors, [`StreamError::Corrupt`]
    /// when replayed state disagrees with the stored fingerprints.
    pub fn open(
        config: StreamConfig,
        kdb: Option<SharedKdb>,
        metrics: Arc<StreamMetrics>,
        recorder: Option<Arc<FlightRecorder>>,
    ) -> Result<(Self, u64), StreamError> {
        let mut engine = Self::new(config);
        engine.metrics = metrics;
        engine.recorder = recorder;
        let Some(kdb) = kdb else {
            return Ok((engine, 0));
        };
        let docs = {
            let snap = kdb.read();
            if snap.collection(names::STREAM_WINDOWS).is_none() {
                Vec::new()
            } else {
                let mut docs: Vec<Document> = snap
                    .find(
                        names::STREAM_WINDOWS,
                        &Filter::eq("stream", engine.config.name.as_str()),
                    )?
                    .into_iter()
                    .map(|(_, doc)| doc)
                    .collect();
                docs.sort_by_key(|d| d.get("window").and_then(Value::as_i64).unwrap_or(i64::MAX));
                docs
            }
        };
        engine.kdb = Some(kdb);
        let resumed = docs.len() as u64;
        engine.schema_ready = resumed > 0;
        for doc in docs {
            engine.replay_checkpoint(&doc)?;
        }
        if let Some(bound) = engine.closed_bound {
            // Rewind the watermark exactly to the durable bound: the
            // source replays everything at or after it; anything below
            // is already folded and will be dropped as late.
            engine.max_day = Some(bound + engine.config.lateness_days);
        }
        Ok((engine, resumed))
    }

    /// Ingests a batch of records: buffers them, advances the
    /// watermark, closes every window the watermark has passed.
    ///
    /// The watermark advances — and windows close — *per record*, not
    /// per batch: the state trajectory is a function of the delivery
    /// sequence alone, so cutting the same sequence into different
    /// batch sizes cannot change which late arrivals are dropped.
    ///
    /// # Errors
    /// Checkpoint persistence failures ([`StreamError::Kdb`]).
    pub fn ingest(&mut self, records: &[ExamRecord]) -> Result<(), StreamError> {
        self.ingested += records.len() as u64;
        self.metrics.ingested(records.len() as u64);
        for r in records {
            let day = r.date.days_since_epoch();
            if self.max_day.is_some_and(|m| day < m) {
                self.reordered += 1;
                self.metrics.reordered();
            }
            if self.closed_bound.is_some_and(|b| day < b) {
                self.dropped += 1;
                self.metrics.dropped();
                continue;
            }
            let wid = day.div_euclid(self.config.window_days);
            self.buffer
                .entry(wid)
                .or_default()
                .push((day, r.patient.0, r.exam.0));
            self.buffered_records += 1;
            if self.max_day.is_none_or(|m| day > m) {
                self.max_day = Some(day);
                self.close_ready()?;
            }
        }
        Ok(())
    }

    /// Closes every remaining buffered window regardless of the
    /// watermark (end of feed / drain before shutdown). The stream
    /// stays usable; subsequent arrivals behind the new closed bound
    /// are late.
    ///
    /// # Errors
    /// Checkpoint persistence failures ([`StreamError::Kdb`]).
    pub fn seal(&mut self) -> Result<(), StreamError> {
        while let Some((&wid, _)) = self.buffer.iter().next() {
            self.close_window(wid)?;
        }
        Ok(())
    }

    /// Runs a full cold re-fit on the accumulated cohort right now —
    /// byte-identical to `KMeans::fit` over [`Self::matrix`], by
    /// construction. Returns whether a fit ran (needs at least `k`
    /// active rows).
    ///
    /// This is an operator/diagnostic action outside the checkpointed
    /// history: call it at end of feed (after [`Self::seal`]) or on a
    /// stream that will not checkpoint further windows, otherwise a
    /// later crash replay — which cannot see the forced re-fit — will
    /// detect the divergence and refuse to resume.
    pub fn force_refit(&mut self) -> bool {
        if self.vsm.rows() < self.config.k.max(1) {
            return false;
        }
        let result = self.cold_config().fit(self.vsm.matrix());
        self.baseline = result.sse / self.vsm.rows() as f64;
        self.model = Some(result);
        self.forced_refits += 1;
        self.metrics.refit();
        true
    }

    fn cold_config(&self) -> KMeans {
        KMeans::new(self.config.k)
            .seed(self.config.seed)
            .max_iters(self.config.refit_iters)
    }

    /// Closes every window whose end the watermark has passed, oldest
    /// first.
    fn close_ready(&mut self) -> Result<(), StreamError> {
        let Some(max_day) = self.max_day else {
            return Ok(());
        };
        let watermark = max_day - self.config.lateness_days;
        while let Some((&wid, _)) = self.buffer.iter().next() {
            if (wid + 1) * self.config.window_days <= watermark {
                self.close_window(wid)?;
            } else {
                break;
            }
        }
        Ok(())
    }

    /// Folds window `wid`'s buffered records, updates the model, and
    /// persists the checkpoint.
    fn close_window(&mut self, wid: i64) -> Result<(), StreamError> {
        let started = Instant::now();
        let start = wid * self.config.window_days;
        let end = start + self.config.window_days;
        let mut window = self.buffer.remove(&wid).unwrap_or_default();
        debug_assert!(
            window.iter().all(|&(d, _, _)| d >= start && d < end),
            "buffered records belong to their window"
        );
        if window.is_empty() {
            // Nothing arrived for this span: no state change, no
            // checkpoint — but the closed bound still advances.
            self.closed_bound = Some(self.closed_bound.map_or(end, |b| b.max(end)));
            return Ok(());
        }
        // Canonical order with multiplicities: a pure function of the
        // window's record multiset, independent of arrival order.
        window.sort_unstable();
        let mut entries: Vec<FoldEntry> = Vec::with_capacity(window.len());
        for &(day, patient, exam) in &window {
            match entries.last_mut() {
                Some(e) if e.0 == day && e.1 == patient && e.2 == exam => e.3 += 1,
                _ => entries.push((day, patient, exam, 1)),
            }
        }
        let (refit, drift) = self.fold_and_update(end, &entries);
        self.metrics.window_closed();
        self.persist_checkpoint(wid, start, end, &entries, refit, drift)?;
        if let Some(recorder) = &self.recorder {
            recorder.mark(&self.config.name, "stream_window", started.elapsed());
        }
        Ok(())
    }

    /// The deterministic half of a window close, shared by the live
    /// path and crash replay: fold the entries, advance the bound,
    /// update the model. Returns (refit, drift score).
    fn fold_and_update(&mut self, end: i64, entries: &[FoldEntry]) -> (bool, f64) {
        let records: i64 = entries.iter().map(|&(_, _, _, c)| c).sum();
        self.buffered_records -= records.min(self.buffered_records);
        self.vsm.fold(entries);
        self.folded += records as u64;
        self.windows_closed += 1;
        self.closed_bound = Some(self.closed_bound.map_or(end, |b| b.max(end)));
        if !self.config.mine_on_close {
            return (false, self.last_drift);
        }
        self.update_model()
    }

    /// One mini-batch model update over the accumulated cohort:
    /// warm-started Lloyd with a small iteration budget, escalating to
    /// a full re-fit when the drift detector trips.
    fn update_model(&mut self) -> (bool, f64) {
        let rows = self.vsm.rows();
        if rows < self.config.k.max(self.config.min_rows) {
            return (false, self.last_drift);
        }
        match self.model.take() {
            None => {
                // First fit: cold, full budget — the streaming
                // equivalent of the batch pipeline's mining step.
                let result = self.cold_config().fit(self.vsm.matrix());
                self.baseline = result.sse / rows as f64;
                self.model = Some(result);
                self.refits += 1;
                self.metrics.refit();
                (true, self.last_drift)
            }
            Some(prev) => {
                let warm_seed = pad_centroids(&prev.centroids, self.vsm.vocab());
                let warm = self
                    .cold_config()
                    .max_iters(self.config.update_iters)
                    .fit_from(self.vsm.matrix(), warm_seed);
                let warm_rate = warm.sse / rows as f64;
                let drift = if self.baseline > 0.0 {
                    warm_rate / self.baseline
                } else if warm_rate > 0.0 {
                    f64::INFINITY
                } else {
                    1.0
                };
                self.last_drift = drift;
                self.metrics.set_drift_score(drift);
                if drift > self.config.drift_threshold {
                    // Stale: the warm model no longer explains the
                    // accumulated cohort. Full re-fit — byte-identical
                    // to a cold fit, which is the determinism gate.
                    let result = self.cold_config().fit(self.vsm.matrix());
                    self.baseline = result.sse / rows as f64;
                    self.model = Some(result);
                    self.refits += 1;
                    self.metrics.refit();
                    (true, drift)
                } else {
                    self.model = Some(warm);
                    (false, drift)
                }
            }
        }
    }

    /// Builds and inserts the durable checkpoint for a closed window.
    fn persist_checkpoint(
        &mut self,
        wid: i64,
        start: i64,
        end: i64,
        entries: &[FoldEntry],
        refit: bool,
        drift: f64,
    ) -> Result<(), StreamError> {
        let Some(kdb) = self.kdb.clone() else {
            return Ok(());
        };
        if !self.schema_ready {
            schema::init_stream_schema(&mut kdb.write())?;
            self.schema_ready = true;
        }
        let mut flat = Vec::with_capacity(entries.len() * 4);
        for &(day, patient, exam, count) in entries {
            flat.push(Value::I64(day));
            flat.push(Value::I64(i64::from(patient)));
            flat.push(Value::I64(i64::from(exam)));
            flat.push(Value::I64(count));
        }
        let count = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
        let doc = Document::new()
            .with("stream", self.config.name.as_str())
            .with("window", wid)
            .with("start_day", start)
            .with("end_day", end)
            .with("watermark", end)
            .with("records", Value::Array(flat))
            .with("folded", count(self.folded))
            .with("refits", count(self.refits))
            .with("refit", refit)
            .with("drift", if drift.is_finite() { drift } else { f64::MAX })
            .with("rows", count(self.vsm.rows() as u64))
            .with("vocab", count(self.vsm.vocab() as u64))
            .with("vocab_version", count(self.vsm.version()))
            .with("vsm_fp", format_fp(self.vsm.fingerprint()))
            .with(
                "model_fp",
                self.model
                    .as_ref()
                    .map_or(String::new(), |m| format_fp(m.fingerprint())),
            );
        schema::insert_stream_window(&mut kdb.write(), doc)?;
        Ok(())
    }

    /// Replays one durable checkpoint through the deterministic close
    /// path and verifies the stored fingerprints.
    fn replay_checkpoint(&mut self, doc: &Document) -> Result<(), StreamError> {
        let corrupt = |what: &str| StreamError::Corrupt(format!("checkpoint {what}"));
        let geti = |field: &str| {
            doc.get(field)
                .and_then(Value::as_i64)
                .ok_or_else(|| corrupt(&format!("missing integer `{field}`")))
        };
        let end = geti("end_day")?;
        let quads = doc
            .get("records")
            .and_then(Value::as_array)
            .ok_or_else(|| corrupt("missing `records`"))?;
        if quads.len() % 4 != 0 {
            return Err(corrupt("ragged `records`"));
        }
        let mut entries = Vec::with_capacity(quads.len() / 4);
        for quad in quads.chunks_exact(4) {
            let nums: Vec<i64> = quad.iter().filter_map(Value::as_i64).collect();
            if nums.len() != 4 {
                return Err(corrupt("non-integer `records`"));
            }
            let patient = u32::try_from(nums[1]).map_err(|_| corrupt("patient id out of range"))?;
            let exam = u32::try_from(nums[2]).map_err(|_| corrupt("exam id out of range"))?;
            entries.push((nums[0], patient, exam, nums[3]));
        }
        self.fold_and_update(end, &entries);
        let stored_vsm = doc.get("vsm_fp").and_then(Value::as_str).unwrap_or("");
        if stored_vsm != format_fp(self.vsm.fingerprint()) {
            return Err(corrupt(
                "VSM fingerprint diverged on replay (config mismatch or corruption)",
            ));
        }
        let stored_model = doc.get("model_fp").and_then(Value::as_str).unwrap_or("");
        let replayed_model = self
            .model
            .as_ref()
            .map_or(String::new(), |m| format_fp(m.fingerprint()));
        if stored_model != replayed_model {
            return Err(corrupt(
                "model fingerprint diverged on replay (config mismatch or corruption)",
            ));
        }
        if geti("folded")? != i64::try_from(self.folded).unwrap_or(i64::MAX)
            || geti("refits")? != i64::try_from(self.refits).unwrap_or(i64::MAX)
        {
            return Err(corrupt("cumulative counters diverged on replay"));
        }
        Ok(())
    }

    /// The stream's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// The live model, once enough rows accumulated.
    pub fn model(&self) -> Option<&KMeansResult> {
        self.model.as_ref()
    }

    /// The accumulated count matrix (active patients × seen exams).
    pub fn matrix(&self) -> &DenseMatrix {
        self.vsm.matrix()
    }

    /// The incremental VSM.
    pub fn vsm(&self) -> &IncrementalVsm {
        &self.vsm
    }

    /// FNV-1a fingerprint of the VSM state.
    pub fn vsm_fingerprint(&self) -> u64 {
        self.vsm.fingerprint()
    }

    /// FNV-1a fingerprint of the model, when one exists.
    pub fn model_fingerprint(&self) -> Option<u64> {
        self.model.as_ref().map(KMeansResult::fingerprint)
    }

    /// Windows closed so far (checkpointed count).
    pub fn windows_closed(&self) -> u64 {
        self.windows_closed
    }

    /// Full re-fits driven by the window path (first fits + drift
    /// escalations; checkpointed).
    pub fn refits(&self) -> u64 {
        self.refits
    }

    /// Records folded through closed windows (checkpointed).
    pub fn folded(&self) -> u64 {
        self.folded
    }

    /// The exclusive day bound of the closed region (the durable
    /// watermark once checkpoints exist).
    pub fn watermark(&self) -> Option<i64> {
        self.closed_bound
    }

    /// The most recent drift score (0 until a warm update ran).
    pub fn drift(&self) -> f64 {
        self.last_drift
    }

    /// The stream's full status as one document (served over the wire
    /// by `StreamQuery`).
    pub fn status_document(&self) -> Document {
        let count = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
        let model = match &self.model {
            None => Value::Null,
            Some(m) => Value::Doc(
                Document::new()
                    .with("k", count(m.k() as u64))
                    .with("sse", m.sse)
                    .with("iterations", count(m.iterations as u64))
                    .with("converged", m.converged)
                    .with("fingerprint", format_fp(m.fingerprint()))
                    .with(
                        "cluster_sizes",
                        Value::Array(
                            m.cluster_sizes()
                                .into_iter()
                                .map(|s| Value::I64(count(s as u64)))
                                .collect(),
                        ),
                    ),
            ),
        };
        Document::new()
            .with("stream", self.config.name.as_str())
            .with("windows_closed", count(self.windows_closed))
            .with(
                "watermark",
                self.closed_bound.map_or(Value::Null, Value::I64),
            )
            .with("ingested", count(self.ingested))
            .with("folded", count(self.folded))
            .with("reordered", count(self.reordered))
            .with("dropped", count(self.dropped))
            .with("buffered", self.buffered_records)
            .with("rows", count(self.vsm.rows() as u64))
            .with("vocab", count(self.vsm.vocab() as u64))
            .with("vocab_version", count(self.vsm.version()))
            .with("refits", count(self.refits))
            .with("forced_refits", count(self.forced_refits))
            .with("drift", self.last_drift)
            .with("vsm_fp", format_fp(self.vsm.fingerprint()))
            .with("model", model)
    }
}

/// Maps a [`StreamError`] store failure back onto [`KdbError`] when
/// callers need the underlying kind.
impl StreamError {
    /// The wrapped store error, when this is one.
    pub fn as_kdb(&self) -> Option<&KdbError> {
        match self {
            StreamError::Kdb(e) => Some(e),
            StreamError::Corrupt(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_dataset::{Date, ExamTypeId, PatientId};

    fn rec(patient: u32, exam: u32, month: u8, day: u8) -> ExamRecord {
        ExamRecord::new(
            PatientId(patient),
            ExamTypeId(exam),
            Date::new(2015, month, day).unwrap(),
        )
    }

    fn tiny_config() -> StreamConfig {
        StreamConfig::new("t")
            .window_days(7)
            .lateness_days(3)
            .k(2)
            .min_rows(2)
            .update_iters(3)
            .refit_iters(20)
    }

    #[test]
    fn windows_close_only_when_watermark_passes() {
        let mut e = StreamEngine::new(tiny_config());
        e.ingest(&[rec(0, 0, 1, 1), rec(1, 1, 1, 2)]).unwrap();
        assert_eq!(e.windows_closed(), 0, "watermark still inside window");
        // A record 10+ days later pushes the watermark past the first
        // window's end.
        e.ingest(&[rec(2, 0, 1, 20)]).unwrap();
        assert_eq!(e.windows_closed(), 1);
        assert_eq!(e.folded(), 2);
        assert!(e.watermark().is_some());
        // Late arrival behind the closed bound is dropped.
        let before = e.folded();
        e.ingest(&[rec(3, 0, 1, 1)]).unwrap();
        assert_eq!(e.folded(), before);
        assert_eq!(
            e.status_document().get("dropped").unwrap().as_i64(),
            Some(1)
        );
        // Seal drains the rest.
        e.seal().unwrap();
        assert_eq!(e.folded(), 3);
        assert!(e.buffer.is_empty());
    }

    #[test]
    fn chunking_does_not_change_state() {
        let feed = [
            rec(0, 0, 1, 3),
            rec(1, 1, 1, 5),
            rec(0, 1, 1, 9),
            rec(2, 0, 1, 16),
            rec(1, 0, 1, 22),
            rec(0, 0, 2, 2),
            rec(2, 1, 2, 10),
            rec(1, 1, 2, 18),
        ];
        let run = |chunk: usize| {
            let mut e = StreamEngine::new(tiny_config());
            for batch in feed.chunks(chunk) {
                e.ingest(batch).unwrap();
            }
            e.seal().unwrap();
            (
                e.vsm_fingerprint(),
                e.model_fingerprint(),
                e.windows_closed(),
            )
        };
        let whole = run(feed.len());
        for chunk in [1, 2, 3, 5] {
            assert_eq!(run(chunk), whole, "chunk size {chunk} diverged");
        }
    }

    #[test]
    fn in_bound_reorder_is_absorbed_and_counted() {
        let ordered = vec![rec(0, 0, 1, 3), rec(1, 1, 1, 4), rec(2, 0, 1, 5)];
        let shuffled = vec![ordered[2], ordered[0], ordered[1]];
        let run = |feed: &[ExamRecord]| {
            let mut e = StreamEngine::new(tiny_config());
            e.ingest(feed).unwrap();
            e.seal().unwrap();
            (e.vsm_fingerprint(), e.status_document())
        };
        let (fp_a, _) = run(&ordered);
        let (fp_b, status_b) = run(&shuffled);
        assert_eq!(fp_a, fp_b);
        assert_eq!(status_b.get("reordered").unwrap().as_i64(), Some(2));
        assert_eq!(status_b.get("dropped").unwrap().as_i64(), Some(0));
    }

    #[test]
    fn first_fit_then_warm_updates_then_forced_refit_equals_cold() {
        let mut cfg = tiny_config();
        cfg.min_rows = 2;
        let mut e = StreamEngine::new(cfg);
        let mut feed = Vec::new();
        for i in 0..30u32 {
            feed.push(rec(i % 6, i % 3, 1 + (i % 11) as u8, 1 + (i % 27) as u8));
        }
        feed.sort_by_key(|r| (r.date, r.patient.0, r.exam.0));
        for batch in feed.chunks(4) {
            e.ingest(batch).unwrap();
        }
        e.seal().unwrap();
        assert!(e.refits() >= 1, "first fit is a cold fit");
        assert!(e.model().is_some());
        assert!(e.force_refit());
        let cold = KMeans::new(2).seed(0).max_iters(20).fit(e.matrix());
        assert_eq!(
            e.model_fingerprint().unwrap(),
            cold.fingerprint(),
            "forced re-fit must equal a cold fit over the accumulated cohort"
        );
    }

    #[test]
    fn empty_windows_leave_no_checkpoint_but_advance_the_bound() {
        let mut e = StreamEngine::new(tiny_config());
        // Two records three windows apart: the gap windows are empty.
        e.ingest(&[rec(0, 0, 1, 1)]).unwrap();
        e.ingest(&[rec(1, 0, 2, 20)]).unwrap();
        assert_eq!(e.windows_closed(), 1, "only the non-empty window closed");
        assert!(e.watermark().unwrap() > 7, "bound advanced past the gap");
    }
}
