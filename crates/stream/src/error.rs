//! Typed streaming errors.

use ada_kdb::KdbError;

/// Everything that can go wrong inside the streaming layer.
#[derive(Debug)]
pub enum StreamError {
    /// A checkpoint read or write against K-DB failed.
    Kdb(KdbError),
    /// Durable checkpoints disagree with the replayed state — the
    /// store was written by a different configuration (or corrupted
    /// behind our back). Resuming would silently fork history, so the
    /// open is refused instead.
    Corrupt(String),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Kdb(e) => write!(f, "stream checkpoint store error: {e}"),
            StreamError::Corrupt(msg) => write!(f, "stream checkpoint corrupt: {msg}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Kdb(e) => Some(e),
            StreamError::Corrupt(_) => None,
        }
    }
}

impl From<KdbError> for StreamError {
    fn from(e: KdbError) -> Self {
        StreamError::Kdb(e)
    }
}
