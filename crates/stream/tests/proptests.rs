//! Property tests for the flagship streaming invariant: the engine's
//! state is a pure function of the record multiset and the
//! configuration — never of batch boundaries, and never of delivery
//! order within the lateness bound.

use ada_dataset::{Date, ExamRecord, ExamTypeId, PatientId};
use ada_stream::{StreamConfig, StreamEngine};
use proptest::prelude::*;

/// Day number of 2015-01-01, the base of every generated feed.
fn base_day() -> i64 {
    Date::new(2015, 1, 1).unwrap().days_since_epoch()
}

fn record(patient: u32, exam: u32, day_offset: i64) -> ExamRecord {
    ExamRecord::new(
        PatientId(patient),
        ExamTypeId(exam),
        Date::from_days_since_epoch(base_day() + day_offset).unwrap(),
    )
}

/// A feed of up to 120 records spread over ~9 weeks: several windows'
/// worth under the 7-day config below.
fn feeds() -> impl Strategy<Value = Vec<ExamRecord>> {
    prop::collection::vec((0u32..10, 0u32..6, 0i64..63), 1..120)
        .prop_map(|raw| raw.into_iter().map(|(p, e, d)| record(p, e, d)).collect())
}

fn config(lateness_days: i64) -> StreamConfig {
    StreamConfig::new("prop")
        .window_days(7)
        .lateness_days(lateness_days)
        .k(3)
        .min_rows(3)
        .update_iters(3)
        .refit_iters(25)
}

/// Runs a feed through a fresh engine in the given chunk sizes and
/// returns the complete deterministic outcome.
fn run(
    feed: &[ExamRecord],
    lateness_days: i64,
    chunk: usize,
) -> (u64, Option<u64>, u64, u64, Option<i64>) {
    let mut engine = StreamEngine::new(config(lateness_days));
    for batch in feed.chunks(chunk.max(1)) {
        engine.ingest(batch).unwrap();
    }
    engine.seal().unwrap();
    (
        engine.vsm_fingerprint(),
        engine.model_fingerprint(),
        engine.windows_closed(),
        engine.folded(),
        engine.watermark(),
    )
}

/// Deterministically permutes a feed from a seed (Fisher–Yates over a
/// splitmix-style generator — no RNG crate needed in tests).
fn permute(feed: &[ExamRecord], seed: u64) -> Vec<ExamRecord> {
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut out = feed.to_vec();
    for i in (1..out.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Batch boundaries are invisible: the same delivery sequence cut
    // into any chunk sizes — including one record at a time — lands on
    // byte-identical VSM and model state, with tight lateness (so
    // windows close mid-feed) and with loose lateness alike.
    #[test]
    fn chunking_is_invisible(
        feed in feeds(),
        chunk_a in 1usize..40,
        chunk_b in 1usize..40,
        lateness in prop_oneof![Just(3i64), Just(14i64)],
    ) {
        let a = run(&feed, lateness, chunk_a);
        let b = run(&feed, lateness, chunk_b);
        let whole = run(&feed, lateness, feed.len());
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &whole);
    }

    // Delivery order is invisible while arrivals stay in bound: with
    // the lateness window covering the feed's whole day span, *any*
    // permutation of the records — interleaved into different chunk
    // sizes — produces the identical model.
    #[test]
    fn in_bound_interleaving_is_invisible(
        feed in feeds(),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        chunk in 1usize..40,
    ) {
        // Day offsets span < 63 days, so 63 days of lateness keeps
        // every permutation in bound (nothing is ever late-dropped).
        let a = run(&permute(&feed, seed_a), 63, chunk);
        let b = run(&permute(&feed, seed_b), 63, 7);
        let canonical = run(&feed, 63, feed.len());
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &canonical);
    }

    // A drift-triggered (or forced) full re-fit equals a cold
    // `KMeans::fit` over the accumulated cohort — streaming never
    // bakes in a model a batch run could not reproduce.
    #[test]
    fn forced_refit_equals_cold_fit(feed in feeds()) {
        let mut engine = StreamEngine::new(config(3));
        engine.ingest(&feed).unwrap();
        engine.seal().unwrap();
        if engine.force_refit() {
            let cfg = config(3);
            let cold = ada_mining::KMeans::new(cfg.k)
                .seed(cfg.seed)
                .max_iters(cfg.refit_iters)
                .fit(engine.matrix());
            prop_assert_eq!(engine.model_fingerprint(), Some(cold.fingerprint()));
        }
    }
}
