//! Crash-replay determinism: a stream resumed from its durable
//! `stream_windows` checkpoints — with the source re-delivering the
//! feed — lands on byte-identical state to a run that never crashed.

use std::sync::Arc;

use ada_dataset::synthetic::{generate, SyntheticConfig};
use ada_dataset::{ExamRecord, StreamOrder};
use ada_kdb::SharedKdb;
use ada_obs::StreamMetrics;
use ada_stream::{StreamConfig, StreamEngine, StreamError};

fn config() -> StreamConfig {
    StreamConfig::new("ward-7")
        .window_days(7)
        .lateness_days(7)
        .k(3)
        .min_rows(8)
        .update_iters(3)
        .refit_iters(30)
}

/// A mildly disordered feed over a small synthetic cohort.
fn feed() -> Vec<ExamRecord> {
    let log = generate(
        &SyntheticConfig {
            num_patients: 60,
            num_exam_types: 20,
            target_records: 900,
            ..SyntheticConfig::small()
        },
        7,
    );
    StreamOrder::new(&log, 7, 5).collect()
}

fn open(kdb: &SharedKdb) -> (StreamEngine, u64) {
    StreamEngine::open(
        config(),
        Some(kdb.clone()),
        Arc::new(StreamMetrics::new()),
        None,
    )
    .expect("checkpoints replay cleanly")
}

fn fingerprints(engine: &StreamEngine) -> (u64, Option<u64>, u64, u64, u64) {
    (
        engine.vsm_fingerprint(),
        engine.model_fingerprint(),
        engine.windows_closed(),
        engine.folded(),
        engine.refits(),
    )
}

#[test]
fn crash_replay_resumes_byte_identically() {
    let feed = feed();

    // Reference: one uninterrupted run.
    let reference = SharedKdb::in_memory();
    let (mut uninterrupted, resumed) = open(&reference);
    assert_eq!(resumed, 0, "fresh store has nothing to resume");
    uninterrupted.ingest(&feed).unwrap();
    uninterrupted.seal().unwrap();
    let expected = fingerprints(&uninterrupted);
    assert!(expected.2 > 0, "the cohort spans several windows");
    assert!(expected.1.is_some(), "enough rows accumulated for a model");

    // Crash run: ingest half the feed in small batches, then drop the
    // engine — everything buffered past the durable watermark is lost.
    let store = SharedKdb::in_memory();
    let (mut victim, _) = open(&store);
    for batch in feed[..feed.len() / 2].chunks(17) {
        victim.ingest(batch).unwrap();
    }
    let durable_windows = victim.windows_closed();
    assert!(durable_windows > 0, "some windows closed before the crash");
    drop(victim);

    // Restart: replay the checkpoints, then let the source re-deliver
    // the entire feed from the beginning. Everything below the durable
    // watermark is already folded and gets dropped as late; everything
    // at or above it folds exactly once.
    let (mut resumed_engine, resumed) = open(&store);
    assert_eq!(resumed, durable_windows, "every durable window replayed");
    assert!(
        resumed_engine.watermark().is_some(),
        "resume restores the durable watermark"
    );
    resumed_engine.ingest(&feed).unwrap();
    resumed_engine.seal().unwrap();
    assert_eq!(
        fingerprints(&resumed_engine),
        expected,
        "crash + replay must be invisible in the final state"
    );

    // The re-delivered prefix shows up as late drops, not double folds.
    let status = resumed_engine.status_document();
    let dropped = status.get("dropped").unwrap().as_i64().unwrap();
    assert!(dropped > 0, "the already-folded prefix is dropped as late");
}

#[test]
fn reopening_a_completed_stream_replays_every_window() {
    let feed = feed();
    let store = SharedKdb::in_memory();
    let (mut engine, _) = open(&store);
    engine.ingest(&feed).unwrap();
    engine.seal().unwrap();
    let expected = fingerprints(&engine);
    drop(engine);

    let (reopened, resumed) = open(&store);
    assert_eq!(resumed, expected.2);
    assert_eq!(fingerprints(&reopened), expected);
}

#[test]
fn resuming_with_a_different_config_is_refused_as_corrupt() {
    let feed = feed();
    let store = SharedKdb::in_memory();
    let (mut engine, _) = open(&store);
    engine.ingest(&feed).unwrap();
    engine.seal().unwrap();
    drop(engine);

    // Same name, different k: the replayed model fingerprint cannot
    // match the stored one, so the resume refuses to fork history.
    match StreamEngine::open(
        config().k(5),
        Some(store.clone()),
        Arc::new(StreamMetrics::new()),
        None,
    ) {
        Err(StreamError::Corrupt(_)) => {}
        Err(other) => panic!("expected Corrupt, got {other:?}"),
        Ok(_) => panic!("config mismatch must not resume silently"),
    }
}

#[test]
fn streams_are_isolated_by_name() {
    let store = SharedKdb::in_memory();
    let feed = feed();
    let (mut a, _) = open(&store);
    a.ingest(&feed).unwrap();
    a.seal().unwrap();
    drop(a);

    // A different stream name over the same store starts empty.
    let (other, resumed) = StreamEngine::open(
        config().k(3).window_days(7),
        Some(store.clone()),
        Arc::new(StreamMetrics::new()),
        None,
    )
    .map(|(mut e, r)| {
        e.ingest(&[]).unwrap();
        (e, r)
    })
    .unwrap();
    assert_eq!(resumed, other.windows_closed());
    let (fresh, fresh_resumed) = StreamEngine::open(
        StreamConfig::new("other-ward"),
        Some(store),
        Arc::new(StreamMetrics::new()),
        None,
    )
    .unwrap();
    assert_eq!(fresh_resumed, 0);
    assert_eq!(fresh.windows_closed(), 0);
}
