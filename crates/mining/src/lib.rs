//! # ada-mining
//!
//! From-scratch mining algorithms for ADA-HEALTH.
//!
//! The paper's preliminary implementation leans on two exploratory
//! algorithm families plus a classifier:
//!
//! * **Clustering** — K-means; its reference \[3\] is Kanungo et al.'s
//!   kd-tree *filtering* algorithm, implemented in [`kmeans::filtering`]
//!   next to the classic Lloyd iteration ([`kmeans::lloyd`]), bisecting
//!   K-means ([`kmeans::bisecting`]) and DBSCAN ([`dbscan`]) as the
//!   extension algorithms the architecture can swap in.
//! * **Frequent-pattern discovery** — its reference \[2\] (MeTA) mines
//!   medical treatments at multiple abstraction levels; [`patterns`]
//!   implements Apriori, FP-growth, association-rule generation and a
//!   taxonomy-aware multi-level miner.
//! * **Classification** — Table I scores clustering robustness with a
//!   decision tree under 10-fold cross validation; [`tree`] is a CART
//!   implementation, [`bayes`] a Gaussian naive Bayes ablation
//!   alternative, and [`validate`] the stratified k-fold driver.
//!
//! All algorithms are deterministic given their seeds.

#![warn(missing_docs)]

pub mod bayes;
pub mod dbscan;
pub mod forest;
pub mod hierarchical;
pub mod kmeans;
pub mod knn;
pub mod patterns;
pub mod sequences;
pub mod tree;
pub mod validate;

pub use kmeans::{pad_centroids, KMeans, KMeansBackend, KMeansInit, KMeansResult};
pub use patterns::{FrequentItemset, Itemset, Transaction};
pub use tree::DecisionTree;
