//! Gaussian naive Bayes classifier.
//!
//! The ablation alternative to the decision tree in the optimizer's
//! robustness check ("decision trees as classification model" is called
//! a *first implementation* in the paper, inviting substitutes). Per
//! class, each feature gets an independent Gaussian with variance
//! smoothing; prediction maximizes the log joint.

use ada_vsm::dense::DenseMatrix;
use serde::{Deserialize, Serialize};

/// A fitted Gaussian naive Bayes model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianNb {
    /// Per-class log prior.
    log_prior: Vec<f64>,
    /// Per-class per-feature means (class-major).
    mean: Vec<Vec<f64>>,
    /// Per-class per-feature variances, smoothed.
    var: Vec<Vec<f64>>,
    num_features: usize,
}

impl GaussianNb {
    /// Fits the model.
    ///
    /// Classes absent from `labels` get a −∞ prior and are never
    /// predicted.
    ///
    /// # Panics
    /// Panics on empty input, shape mismatch, or labels ≥ `num_classes`.
    pub fn fit(matrix: &DenseMatrix, labels: &[usize], num_classes: usize) -> Self {
        assert_eq!(matrix.num_rows(), labels.len(), "label count mismatch");
        assert!(!labels.is_empty(), "cannot fit on empty data");
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        let n = matrix.num_rows();
        let d = matrix.num_cols();

        let mut counts = vec![0usize; num_classes];
        let mut mean = vec![vec![0.0; d]; num_classes];
        for (i, &c) in labels.iter().enumerate() {
            counts[c] += 1;
            for (m, v) in mean[c].iter_mut().zip(matrix.row(i)) {
                *m += v;
            }
        }
        for c in 0..num_classes {
            if counts[c] > 0 {
                let inv = 1.0 / counts[c] as f64;
                for m in &mut mean[c] {
                    *m *= inv;
                }
            }
        }

        let mut var = vec![vec![0.0; d]; num_classes];
        for (i, &c) in labels.iter().enumerate() {
            for ((v, m), x) in var[c].iter_mut().zip(&mean[c]).zip(matrix.row(i)) {
                let diff = x - m;
                *v += diff * diff;
            }
        }
        // Variance smoothing proportional to the global variance scale,
        // mirroring the common `var_smoothing` trick.
        let global_scale = {
            let means = matrix.col_means();
            let mut total = 0.0;
            for row in matrix.rows_iter() {
                for (x, m) in row.iter().zip(&means) {
                    let diff = x - m;
                    total += diff * diff;
                }
            }
            (total / (n * d.max(1)) as f64).max(1e-12)
        };
        let eps = 1e-9 * global_scale + 1e-12;
        for c in 0..num_classes {
            let denom = counts[c].max(1) as f64;
            for v in &mut var[c] {
                *v = *v / denom + eps;
            }
        }

        let log_prior = counts
            .iter()
            .map(|&c| {
                if c == 0 {
                    f64::NEG_INFINITY
                } else {
                    (c as f64 / n as f64).ln()
                }
            })
            .collect();

        Self {
            log_prior,
            mean,
            var,
            num_features: d,
        }
    }

    /// Predicts the class of one feature row.
    ///
    /// # Panics
    /// Panics when `row.len()` differs from the training feature count.
    pub fn predict_row(&self, row: &[f64]) -> usize {
        assert_eq!(row.len(), self.num_features, "feature count mismatch");
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for c in 0..self.log_prior.len() {
            if self.log_prior[c].is_infinite() {
                continue;
            }
            let mut score = self.log_prior[c];
            for ((x, m), v) in row.iter().zip(&self.mean[c]).zip(&self.var[c]) {
                let diff = x - m;
                score += -0.5 * ((std::f64::consts::TAU * v).ln() + diff * diff / v);
            }
            if score > best_score {
                best_score = score;
                best = c;
            }
        }
        best
    }

    /// Predicts classes for every row of `matrix`.
    pub fn predict(&self, matrix: &DenseMatrix) -> Vec<usize> {
        (0..matrix.num_rows())
            .map(|i| self.predict_row(matrix.row(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gaussian_classes(seed: u64) -> (DenseMatrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for class in 0..3usize {
            let center = class as f64 * 8.0;
            for _ in 0..40 {
                rows.push(vec![
                    center + rng.gen_range(-1.0..1.0),
                    -center + rng.gen_range(-1.0..1.0),
                ]);
                labels.push(class);
            }
        }
        (DenseMatrix::from_rows(&rows), labels)
    }

    #[test]
    fn separable_classes_classified_perfectly() {
        let (m, labels) = gaussian_classes(1);
        let model = GaussianNb::fit(&m, &labels, 3);
        assert_eq!(model.predict(&m), labels);
    }

    #[test]
    fn absent_class_never_predicted() {
        let (m, labels) = gaussian_classes(2);
        // Claim 5 classes; classes 3 and 4 are absent.
        let model = GaussianNb::fit(&m, &labels, 5);
        let predictions = model.predict(&m);
        assert!(predictions.iter().all(|&p| p < 3));
    }

    #[test]
    fn handles_constant_features() {
        let m = DenseMatrix::from_rows(&[
            vec![1.0, 0.0],
            vec![1.0, 0.1],
            vec![1.0, 9.0],
            vec![1.0, 9.1],
        ]);
        let labels = vec![0, 0, 1, 1];
        let model = GaussianNb::fit(&m, &labels, 2);
        assert_eq!(model.predict(&m), labels);
    }

    #[test]
    fn prior_dominates_for_uninformative_features() {
        // Identical feature distributions; class 1 has 3x the examples.
        let m = DenseMatrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0], vec![1.0]]);
        let labels = vec![1, 1, 1, 0];
        let model = GaussianNb::fit(&m, &labels, 2);
        assert_eq!(model.predict_row(&[1.0]), 1);
    }

    #[test]
    fn deterministic() {
        let (m, labels) = gaussian_classes(3);
        let a = GaussianNb::fit(&m, &labels, 3);
        let b = GaussianNb::fit(&m, &labels, 3);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let m = DenseMatrix::from_rows(&[vec![1.0]]);
        let _ = GaussianNb::fit(&m, &[2], 2);
    }
}
