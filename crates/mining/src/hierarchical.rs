//! Agglomerative hierarchical clustering (Lance–Williams).
//!
//! An extension clustering algorithm for ADA-HEALTH's algorithm-
//! selection layer: unlike K-means it produces a full dendrogram, so the
//! optimizer can cut at any K without re-running — useful when the K
//! sweep itself is the expensive part. Single, complete and average
//! (UPGMA) linkage via the Lance–Williams update on a condensed distance
//! matrix; O(n²) memory, O(n² log n)–O(n³) time, intended for the
//! (sub-sampled) working sets the pipeline actually clusters.

use ada_vsm::dense::{distance_sq, DenseMatrix};
use serde::{Deserialize, Serialize};

/// Inter-cluster distance definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Linkage {
    /// Minimum pairwise distance (chaining-prone, finds elongated
    /// clusters).
    Single,
    /// Maximum pairwise distance (compact clusters).
    Complete,
    /// Unweighted average pairwise distance (UPGMA).
    Average,
}

/// One merge step of the dendrogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Merge {
    /// First merged node (< n: leaf; ≥ n: the merge with index `a - n`).
    pub a: usize,
    /// Second merged node (same encoding).
    pub b: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f64,
    /// Number of leaves under the new node.
    pub size: usize,
}

/// A fitted dendrogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dendrogram {
    /// Number of leaves (input points).
    pub num_points: usize,
    /// The n − 1 merges, in non-decreasing distance order for single and
    /// complete linkage (average linkage can produce inversions only
    /// under exotic metrics; Euclidean is safe).
    pub merges: Vec<Merge>,
}

impl Dendrogram {
    /// Cuts the dendrogram into exactly `k` clusters (dense labels,
    /// deterministic numbering by first-member index).
    ///
    /// # Panics
    /// Panics when `k` is 0 or exceeds the number of points.
    #[allow(clippy::needless_range_loop)] // i is both the leaf id and the label slot
    pub fn cut(&self, k: usize) -> Vec<usize> {
        assert!(
            k >= 1 && k <= self.num_points,
            "cannot cut {} points into {k} clusters",
            self.num_points
        );
        // Union-find over the first (n - k) merges.
        let n = self.num_points;
        let mut parent: Vec<usize> = (0..2 * n - 1).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (step, merge) in self.merges.iter().take(n - k).enumerate() {
            let node = n + step;
            let ra = find(&mut parent, merge.a);
            let rb = find(&mut parent, merge.b);
            parent[ra] = node;
            parent[rb] = node;
        }
        // Dense labels in order of first appearance.
        let mut labels = vec![usize::MAX; n];
        let mut next = 0usize;
        let mut label_of_root = std::collections::HashMap::new();
        for i in 0..n {
            let root = find(&mut parent, i);
            let label = *label_of_root.entry(root).or_insert_with(|| {
                let l = next;
                next += 1;
                l
            });
            labels[i] = label;
        }
        labels
    }

    /// Cuts at a distance threshold: clusters are the connected
    /// components of merges with `distance <= threshold`.
    pub fn cut_at_distance(&self, threshold: f64) -> Vec<usize> {
        let below = self
            .merges
            .iter()
            .take_while(|m| m.distance <= threshold)
            .count();
        self.cut(self.num_points - below)
    }
}

/// Runs agglomerative clustering on the rows of `matrix` (Euclidean
/// distances).
///
/// # Panics
/// Panics when the matrix has no rows.
#[allow(clippy::needless_range_loop)] // lockstep multi-array indexing
pub fn agglomerative(matrix: &DenseMatrix, linkage: Linkage) -> Dendrogram {
    let n = matrix.num_rows();
    assert!(n > 0, "cannot cluster an empty matrix");
    if n == 1 {
        return Dendrogram {
            num_points: 1,
            merges: Vec::new(),
        };
    }

    // Active cluster list; dist[i][j] for active i < j held in a full
    // square for simplicity (n is pipeline-sized, not corpus-sized).
    let mut dist = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = distance_sq(matrix.row(i), matrix.row(j)).sqrt();
            dist[i][j] = d;
            dist[j][i] = d;
        }
    }

    // slot -> dendrogram node id; slot -> leaf count; active slots.
    let mut node_id: Vec<usize> = (0..n).collect();
    let mut size: Vec<usize> = vec![1; n];
    let mut active: Vec<bool> = vec![true; n];
    let mut merges = Vec::with_capacity(n - 1);

    for step in 0..(n - 1) {
        // Find the closest active pair (ties → lowest indices, so the
        // result is deterministic).
        let mut best = (usize::MAX, usize::MAX, f64::INFINITY);
        for i in 0..n {
            if !active[i] {
                continue;
            }
            for j in (i + 1)..n {
                if !active[j] {
                    continue;
                }
                if dist[i][j] < best.2 {
                    best = (i, j, dist[i][j]);
                }
            }
        }
        let (i, j, d) = best;

        // Lance–Williams update into slot i.
        for m in 0..n {
            if !active[m] || m == i || m == j {
                continue;
            }
            let dim = dist[i][m];
            let djm = dist[j][m];
            let updated = match linkage {
                Linkage::Single => dim.min(djm),
                Linkage::Complete => dim.max(djm),
                Linkage::Average => {
                    let (si, sj) = (size[i] as f64, size[j] as f64);
                    (si * dim + sj * djm) / (si + sj)
                }
            };
            dist[i][m] = updated;
            dist[m][i] = updated;
        }

        merges.push(Merge {
            a: node_id[i],
            b: node_id[j],
            distance: d,
            size: size[i] + size[j],
        });
        node_id[i] = n + step;
        size[i] += size[j];
        active[j] = false;
    }

    Dendrogram {
        num_points: n,
        merges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![10.0, 10.0],
            vec![10.1, 10.0],
            vec![10.0, 10.1],
        ])
    }

    #[test]
    fn cut_recovers_blobs_under_every_linkage() {
        let m = two_blobs();
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let dendro = agglomerative(&m, linkage);
            let labels = dendro.cut(2);
            assert_eq!(labels[0], labels[1]);
            assert_eq!(labels[0], labels[2]);
            assert_eq!(labels[3], labels[4]);
            assert_eq!(labels[3], labels[5]);
            assert_ne!(labels[0], labels[3], "{linkage:?}");
        }
    }

    #[test]
    fn merge_count_and_sizes() {
        let m = two_blobs();
        let dendro = agglomerative(&m, Linkage::Average);
        assert_eq!(dendro.merges.len(), 5);
        assert_eq!(dendro.merges.last().unwrap().size, 6);
        // Distances non-decreasing for average linkage on Euclidean data.
        for w in dendro.merges.windows(2) {
            assert!(w[1].distance >= w[0].distance - 1e-9);
        }
    }

    #[test]
    fn cut_k_extremes() {
        let m = two_blobs();
        let dendro = agglomerative(&m, Linkage::Complete);
        let all_one = dendro.cut(1);
        assert!(all_one.iter().all(|&l| l == 0));
        let singletons = dendro.cut(6);
        let mut sorted = singletons.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
    }

    #[test]
    fn cut_at_distance_threshold() {
        let m = two_blobs();
        let dendro = agglomerative(&m, Linkage::Single);
        // Within-blob links are ~0.1; between-blob ~14.
        let labels = dendro.cut_at_distance(1.0);
        let mut distinct = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 2);
        let everything = dendro.cut_at_distance(100.0);
        assert!(everything.iter().all(|&l| l == 0));
    }

    #[test]
    fn single_vs_complete_on_a_chain() {
        // A chain of points: single linkage keeps it together; complete
        // linkage splits it when cutting into 2.
        let m = DenseMatrix::from_rows(&[
            vec![0.0],
            vec![1.0],
            vec![2.0],
            vec![3.0],
            vec![4.0],
            vec![5.0],
        ]);
        let complete = agglomerative(&m, Linkage::Complete).cut(2);
        // Complete linkage splits the chain into two *contiguous*
        // segments (tie-breaking makes the exact boundary 4|2 here).
        let boundary = complete.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(boundary, 1, "complete cut must be contiguous: {complete:?}");
        assert_ne!(complete[0], complete[5]);
        // Single linkage merges neighbours first; its 2-cut is also a
        // single contiguous split of the chain.
        let single = agglomerative(&m, Linkage::Single).cut(2);
        let single_boundary = single.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(
            single_boundary, 1,
            "single cut must be contiguous: {single:?}"
        );
    }

    #[test]
    fn single_point_and_deterministic() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0]]);
        let dendro = agglomerative(&m, Linkage::Average);
        assert!(dendro.merges.is_empty());
        assert_eq!(dendro.cut(1), vec![0]);

        let m2 = two_blobs();
        let a = agglomerative(&m2, Linkage::Average);
        let b = agglomerative(&m2, Linkage::Average);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "cannot cut")]
    fn cut_rejects_bad_k() {
        let dendro = agglomerative(&two_blobs(), Linkage::Average);
        let _ = dendro.cut(7);
    }
}
