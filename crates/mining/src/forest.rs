//! Random forest: bagged CART trees with feature subsampling.
//!
//! The paper calls decision trees its "first implementation" of the
//! robustness classifier, inviting stronger substitutes. A forest
//! averages away single-tree variance: each tree trains on a bootstrap
//! sample and, at every split, sees only a random feature subset;
//! prediction is the majority vote. Deterministic given the seed.

use ada_vsm::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::tree::{Criterion, DecisionTree, TreeConfig};

/// Random-forest hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees.
    pub num_trees: usize,
    /// Per-tree depth/leaf limits.
    pub tree: TreeConfig,
    /// Features sampled per tree: `None` = √d (the classification
    /// default), `Some(m)` = exactly `m` (capped at d).
    pub features_per_tree: Option<usize>,
    /// RNG seed (bootstrap + feature sampling).
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            num_trees: 25,
            tree: TreeConfig {
                max_depth: 12,
                min_samples_leaf: 2,
                min_gain: 1e-7,
                criterion: Criterion::Gini,
            },
            features_per_tree: None,
            seed: 0,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    /// One (feature subset, tree) pair per member. Trees are trained on
    /// the column-sliced bootstrap sample, so prediction re-slices the
    /// query row with the stored subset.
    members: Vec<(Vec<usize>, DecisionTree)>,
    num_classes: usize,
    num_features: usize,
}

impl RandomForest {
    /// Fits the forest.
    ///
    /// # Panics
    /// Panics on empty data, shape mismatch, labels ≥ `num_classes`, or
    /// a zero-tree configuration.
    pub fn fit(
        matrix: &DenseMatrix,
        labels: &[usize],
        num_classes: usize,
        config: &ForestConfig,
    ) -> Self {
        assert_eq!(matrix.num_rows(), labels.len(), "label count mismatch");
        assert!(!labels.is_empty(), "cannot fit on empty data");
        assert!(config.num_trees >= 1, "need at least one tree");
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        let n = matrix.num_rows();
        let d = matrix.num_cols();
        let m = config
            .features_per_tree
            .unwrap_or_else(|| (d as f64).sqrt().ceil() as usize)
            .clamp(1, d);

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut members = Vec::with_capacity(config.num_trees);
        for _ in 0..config.num_trees {
            // Bootstrap rows.
            let rows: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            // Feature subset (without replacement).
            let mut features: Vec<usize> = (0..d).collect();
            for i in 0..m {
                let j = rng.gen_range(i..d);
                features.swap(i, j);
            }
            features.truncate(m);
            features.sort_unstable();

            let sample = matrix.select_rows(&rows).select_cols(&features);
            let sample_labels: Vec<usize> = rows.iter().map(|&r| labels[r]).collect();
            let tree = DecisionTree::fit(&sample, &sample_labels, num_classes, &config.tree);
            members.push((features, tree));
        }

        Self {
            members,
            num_classes,
            num_features: d,
        }
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.members.len()
    }

    /// Per-class vote fractions for one row.
    ///
    /// # Panics
    /// Panics when `row.len()` differs from the training feature count.
    pub fn vote_distribution(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.num_features, "feature count mismatch");
        let mut votes = vec![0usize; self.num_classes];
        let mut sliced = Vec::new();
        for (features, tree) in &self.members {
            sliced.clear();
            sliced.extend(features.iter().map(|&f| row[f]));
            votes[tree.predict_row(&sliced)] += 1;
        }
        let total = self.members.len() as f64;
        votes.into_iter().map(|v| v as f64 / total).collect()
    }

    /// Majority-vote prediction for one row (ties → lower class).
    pub fn predict_row(&self, row: &[f64]) -> usize {
        let dist = self.vote_distribution(row);
        dist.iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| {
                a.partial_cmp(b)
                    .expect("finite vote fractions")
                    .then(ib.cmp(ia))
            })
            .map(|(i, _)| i)
            .expect("at least one class")
    }

    /// Predicts every row of `matrix`.
    pub fn predict(&self, matrix: &DenseMatrix) -> Vec<usize> {
        (0..matrix.num_rows())
            .map(|i| self.predict_row(matrix.row(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn noisy_classes(seed: u64) -> (DenseMatrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for class in 0..3usize {
            for _ in 0..50 {
                // Two informative features + three noise features.
                let c = class as f64 * 4.0;
                rows.push(vec![
                    c + rng.gen_range(-1.2..1.2),
                    -c + rng.gen_range(-1.2..1.2),
                    rng.gen_range(-5.0..5.0),
                    rng.gen_range(-5.0..5.0),
                    rng.gen_range(-5.0..5.0),
                ]);
                labels.push(class);
            }
        }
        (DenseMatrix::from_rows(&rows), labels)
    }

    #[test]
    fn forest_classifies_noisy_data() {
        let (m, labels) = noisy_classes(1);
        let forest = RandomForest::fit(&m, &labels, 3, &ForestConfig::default());
        let predictions = forest.predict(&m);
        let correct = predictions
            .iter()
            .zip(&labels)
            .filter(|(a, b)| a == b)
            .count();
        assert!(
            correct as f64 / labels.len() as f64 > 0.9,
            "training accuracy {correct}/{}",
            labels.len()
        );
    }

    #[test]
    fn forest_beats_or_matches_single_shallow_tree_out_of_sample() {
        let (train_x, train_y) = noisy_classes(2);
        let (test_x, test_y) = noisy_classes(3);
        let cfg = ForestConfig {
            num_trees: 40,
            ..ForestConfig::default()
        };
        let forest = RandomForest::fit(&train_x, &train_y, 3, &cfg);
        let forest_acc = accuracy(&forest.predict(&test_x), &test_y);
        let tree = crate::tree::DecisionTree::fit(
            &train_x,
            &train_y,
            3,
            &TreeConfig {
                max_depth: 3,
                ..TreeConfig::default()
            },
        );
        let tree_acc = accuracy(&tree.predict(&test_x), &test_y);
        assert!(
            forest_acc >= tree_acc - 0.02,
            "forest {forest_acc} vs shallow tree {tree_acc}"
        );
        assert!(forest_acc > 0.85, "forest_acc = {forest_acc}");
    }

    fn accuracy(pred: &[usize], truth: &[usize]) -> f64 {
        pred.iter().zip(truth).filter(|(a, b)| a == b).count() as f64 / truth.len() as f64
    }

    #[test]
    fn vote_distribution_sums_to_one() {
        let (m, labels) = noisy_classes(4);
        let forest = RandomForest::fit(&m, &labels, 3, &ForestConfig::default());
        let dist = forest.vote_distribution(m.row(0));
        assert_eq!(dist.len(), 3);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let (m, labels) = noisy_classes(5);
        let a = RandomForest::fit(&m, &labels, 3, &ForestConfig::default());
        let b = RandomForest::fit(&m, &labels, 3, &ForestConfig::default());
        assert_eq!(a, b);
        let other = ForestConfig {
            seed: 99,
            ..ForestConfig::default()
        };
        let c = RandomForest::fit(&m, &labels, 3, &other);
        assert_ne!(a, c, "different seeds must give different forests");
    }

    #[test]
    fn feature_subsetting_respected() {
        let (m, labels) = noisy_classes(6);
        let cfg = ForestConfig {
            num_trees: 5,
            features_per_tree: Some(2),
            ..ForestConfig::default()
        };
        let forest = RandomForest::fit(&m, &labels, 3, &cfg);
        assert_eq!(forest.num_trees(), 5);
        for (features, _) in &forest.members {
            assert_eq!(features.len(), 2);
            assert!(features.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let m = DenseMatrix::from_rows(&[vec![0.0]]);
        let _ = RandomForest::fit(&m, &[7], 3, &ForestConfig::default());
    }
}
