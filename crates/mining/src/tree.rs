//! CART decision tree (binary splits on continuous features).
//!
//! The paper's optimizer "built a classifier … to assess the robustness
//! of clustering results …, using the same input features of the
//! clustering algorithm, and the class label assigned by the clustering
//! algorithm itself as target. … In our first implementation, we used
//! decision trees as classification model." This is that model: a
//! depth-limited CART with gini or entropy impurity, midpoint thresholds
//! and deterministic tie-breaking.

use ada_vsm::dense::DenseMatrix;
use serde::{Deserialize, Serialize};

/// Split impurity criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Criterion {
    /// Gini impurity `1 − Σ pᵢ²` (CART default).
    Gini,
    /// Shannon entropy `−Σ pᵢ ln pᵢ`.
    Entropy,
}

impl Criterion {
    fn impurity(self, counts: &[usize], total: usize) -> f64 {
        if total == 0 {
            return 0.0;
        }
        let t = total as f64;
        match self {
            Criterion::Gini => {
                1.0 - counts
                    .iter()
                    .map(|&c| {
                        let p = c as f64 / t;
                        p * p
                    })
                    .sum::<f64>()
            }
            Criterion::Entropy => counts
                .iter()
                .filter(|&&c| c > 0)
                .map(|&c| {
                    let p = c as f64 / t;
                    -p * p.ln()
                })
                .sum(),
        }
    }
}

/// Decision-tree hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum number of samples in each child of a split.
    pub min_samples_leaf: usize,
    /// Minimum impurity decrease a split must achieve.
    pub min_gain: f64,
    /// Impurity criterion.
    pub criterion: Criterion,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 10,
            min_samples_leaf: 2,
            min_gain: 1e-7,
            criterion: Criterion::Gini,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted CART decision tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    num_classes: usize,
    num_features: usize,
}

impl DecisionTree {
    /// Fits a tree on the rows of `matrix` with the given labels.
    ///
    /// # Panics
    /// Panics on empty input, label/row count mismatch, or labels
    /// ≥ `num_classes`.
    pub fn fit(
        matrix: &DenseMatrix,
        labels: &[usize],
        num_classes: usize,
        config: &TreeConfig,
    ) -> Self {
        assert_eq!(matrix.num_rows(), labels.len(), "label count mismatch");
        assert!(!labels.is_empty(), "cannot fit on empty data");
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            num_classes,
            num_features: matrix.num_cols(),
        };
        let mut indices: Vec<usize> = (0..matrix.num_rows()).collect();
        tree.grow(matrix, labels, &mut indices, 0, config);
        tree
    }

    /// Grows the subtree over `indices` (reordered in place), returning
    /// its node id.
    fn grow(
        &mut self,
        matrix: &DenseMatrix,
        labels: &[usize],
        indices: &mut [usize],
        depth: usize,
        config: &TreeConfig,
    ) -> usize {
        let counts = self.class_counts(labels, indices);
        let majority = argmax_counts(&counts);
        let impurity = config.criterion.impurity(&counts, indices.len());

        let make_leaf = |tree: &mut Self| {
            tree.nodes.push(Node::Leaf { class: majority });
            tree.nodes.len() - 1
        };

        if depth >= config.max_depth
            || indices.len() < 2 * config.min_samples_leaf
            || impurity == 0.0
        {
            return make_leaf(self);
        }

        let Some((feature, threshold, gain)) =
            self.best_split(matrix, labels, indices, impurity, config)
        else {
            return make_leaf(self);
        };
        if gain < config.min_gain {
            return make_leaf(self);
        }

        // Partition indices in place: left = value <= threshold.
        let mid = partition(indices, |&i| matrix.get(i, feature) <= threshold);
        if mid == 0 || mid == indices.len() {
            return make_leaf(self); // numerically degenerate split
        }

        // Reserve the node slot before recursing so the root ends up at 0
        // only for a leaf; we instead build children first and push the
        // split after, then return its id (children ids are stable).
        let (left_slice, right_slice) = indices.split_at_mut(mid);
        let left = self.grow(matrix, labels, left_slice, depth + 1, config);
        let right = self.grow(matrix, labels, right_slice, depth + 1, config);
        self.nodes.push(Node::Split {
            feature,
            threshold,
            left,
            right,
        });
        self.nodes.len() - 1
    }

    fn class_counts(&self, labels: &[usize], indices: &[usize]) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &i in indices {
            counts[labels[i]] += 1;
        }
        counts
    }

    /// Exhaustive best split: for every feature, sort the node's rows by
    /// value and scan class-count prefixes, evaluating each boundary
    /// between distinct values.
    fn best_split(
        &self,
        matrix: &DenseMatrix,
        labels: &[usize],
        indices: &[usize],
        parent_impurity: f64,
        config: &TreeConfig,
    ) -> Option<(usize, f64, f64)> {
        let n = indices.len();
        let total = n as f64;
        let mut best: Option<(usize, f64, f64)> = None;
        let mut order: Vec<usize> = Vec::with_capacity(n);
        for feature in 0..self.num_features {
            order.clear();
            order.extend_from_slice(indices);
            order.sort_unstable_by(|&a, &b| {
                matrix
                    .get(a, feature)
                    .partial_cmp(&matrix.get(b, feature))
                    .expect("finite feature values")
            });

            let mut left_counts = vec![0usize; self.num_classes];
            let mut right_counts = self.class_counts(labels, indices);
            for pos in 0..n - 1 {
                let i = order[pos];
                left_counts[labels[i]] += 1;
                right_counts[labels[i]] -= 1;
                let v = matrix.get(i, feature);
                let v_next = matrix.get(order[pos + 1], feature);
                if v == v_next {
                    continue; // can't split between equal values
                }
                let left_n = pos + 1;
                let right_n = n - left_n;
                if left_n < config.min_samples_leaf || right_n < config.min_samples_leaf {
                    continue;
                }
                let gain = parent_impurity
                    - (left_n as f64 / total) * config.criterion.impurity(&left_counts, left_n)
                    - (right_n as f64 / total) * config.criterion.impurity(&right_counts, right_n);
                let threshold = v + (v_next - v) / 2.0;
                let better = match best {
                    None => true,
                    Some((bf, bt, bg)) => {
                        gain > bg + 1e-12
                            || ((gain - bg).abs() <= 1e-12 && (feature, threshold) < (bf, bt))
                    }
                };
                if better {
                    best = Some((feature, threshold, gain));
                }
            }
        }
        best
    }

    /// Predicts the class of a single feature row.
    ///
    /// # Panics
    /// Panics when `row.len() != num_features`.
    pub fn predict_row(&self, row: &[f64]) -> usize {
        assert_eq!(row.len(), self.num_features, "feature count mismatch");
        let mut node = self.nodes.len() - 1; // root is pushed last
        loop {
            match &self.nodes[node] {
                Node::Leaf { class } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predicts classes for every row of `matrix`.
    pub fn predict(&self, matrix: &DenseMatrix) -> Vec<usize> {
        (0..matrix.num_rows())
            .map(|i| self.predict_row(matrix.row(i)))
            .collect()
    }

    /// Number of leaf nodes.
    pub fn num_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Depth of the tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], id: usize) -> usize {
            match &nodes[id] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + rec(nodes, *left).max(rec(nodes, *right)),
            }
        }
        rec(&self.nodes, self.nodes.len() - 1)
    }
}

/// Stable partition: reorders `slice` so that all elements satisfying
/// `pred` come first; returns the boundary.
fn partition<T: Copy>(slice: &mut [T], pred: impl Fn(&T) -> bool) -> usize {
    let mut kept: Vec<T> = Vec::with_capacity(slice.len());
    let mut rest: Vec<T> = Vec::new();
    for &x in slice.iter() {
        if pred(&x) {
            kept.push(x);
        } else {
            rest.push(x);
        }
    }
    let mid = kept.len();
    slice[..mid].copy_from_slice(&kept);
    slice[mid..].copy_from_slice(&rest);
    mid
}

fn argmax_counts(counts: &[usize]) -> usize {
    counts
        .iter()
        .enumerate()
        .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-feature, three-class dataset needing two nested splits:
    /// x ≈ 0 → class 0; x ≈ 1, y ≈ 0 → class 1; x ≈ 1, y ≈ 1 → class 2.
    fn nested_data() -> (DenseMatrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for &(x, y, l) in &[
            (0.0, 0.0, 0usize),
            (0.0, 1.0, 0),
            (1.0, 0.0, 1),
            (1.0, 1.0, 2),
        ] {
            for jitter in 0..5 {
                let e = jitter as f64 * 0.01;
                rows.push(vec![x + e, y + e]);
                labels.push(l);
            }
        }
        (DenseMatrix::from_rows(&rows), labels)
    }

    #[test]
    fn fits_nested_splits_exactly() {
        let (m, labels) = nested_data();
        let tree = DecisionTree::fit(&m, &labels, 3, &TreeConfig::default());
        assert_eq!(tree.predict(&m), labels);
        assert_eq!(tree.depth(), 2);
        assert_eq!(tree.num_leaves(), 3);
    }

    #[test]
    fn greedy_cart_cannot_split_pure_xor() {
        // Known CART limitation: every single split of a balanced XOR has
        // zero impurity decrease, so with a positive min_gain the root
        // stays a leaf. Documents the expected greedy behaviour.
        let m = DenseMatrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ]);
        let labels = vec![0, 1, 1, 0];
        let cfg = TreeConfig {
            min_samples_leaf: 1,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&m, &labels, 2, &cfg);
        assert_eq!(tree.num_leaves(), 1);
    }

    #[test]
    fn pure_node_is_single_leaf() {
        let m = DenseMatrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let labels = vec![1, 1, 1];
        let tree = DecisionTree::fit(&m, &labels, 2, &TreeConfig::default());
        assert_eq!(tree.num_leaves(), 1);
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.predict_row(&[99.0]), 1);
    }

    #[test]
    fn max_depth_zero_predicts_majority() {
        let (m, labels) = nested_data();
        let cfg = TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&m, &labels, 3, &cfg);
        assert_eq!(tree.num_leaves(), 1);
        // Class 0 holds 10 of 20 samples: the unsplit root predicts it.
        assert_eq!(tree.predict_row(&[1.0, 1.0]), 0);
    }

    #[test]
    fn min_samples_leaf_blocks_tiny_splits() {
        let m = DenseMatrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let labels = vec![0, 0, 0, 1];
        let cfg = TreeConfig {
            min_samples_leaf: 2,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&m, &labels, 2, &cfg);
        // The clean split (isolating the single class-1 sample) is
        // forbidden; only the balanced 2|2 split remains, whose impure
        // right child cannot be refined further. x = 3 is therefore
        // misclassified as the right child's majority (tie → class 0).
        assert_eq!(tree.num_leaves(), 2);
        assert_eq!(tree.predict_row(&[3.0]), 0);
        assert_eq!(tree.predict_row(&[0.0]), 0);
    }

    #[test]
    fn entropy_criterion_also_solves_separable_data() {
        let m = DenseMatrix::from_rows(&[
            vec![0.0],
            vec![0.1],
            vec![0.2],
            vec![5.0],
            vec![5.1],
            vec![5.2],
        ]);
        let labels = vec![0, 0, 0, 1, 1, 1];
        let cfg = TreeConfig {
            criterion: Criterion::Entropy,
            min_samples_leaf: 1,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&m, &labels, 2, &cfg);
        assert_eq!(tree.predict(&m), labels);
        assert_eq!(tree.num_leaves(), 2);
        assert_eq!(tree.depth(), 1);
    }

    #[test]
    fn handles_constant_features() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 5.0], vec![1.0, 9.0]]);
        let labels = vec![0, 1, 1];
        let cfg = TreeConfig {
            min_samples_leaf: 1,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&m, &labels, 2, &cfg);
        // Constant feature 0 must be ignored; feature 1 separates.
        assert_eq!(tree.predict(&m), labels);
    }

    #[test]
    fn multiclass_separable() {
        let m = DenseMatrix::from_rows(&[
            vec![0.0],
            vec![0.2],
            vec![5.0],
            vec![5.2],
            vec![10.0],
            vec![10.2],
        ]);
        let labels = vec![0, 0, 1, 1, 2, 2];
        let cfg = TreeConfig {
            min_samples_leaf: 1,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&m, &labels, 3, &cfg);
        assert_eq!(tree.predict(&m), labels);
        assert_eq!(tree.num_leaves(), 3);
    }

    #[test]
    fn deterministic_fit() {
        let (m, labels) = nested_data();
        let a = DecisionTree::fit(&m, &labels, 3, &TreeConfig::default());
        let b = DecisionTree::fit(&m, &labels, 3, &TreeConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn impurity_functions() {
        assert_eq!(Criterion::Gini.impurity(&[5, 0], 5), 0.0);
        assert!((Criterion::Gini.impurity(&[5, 5], 10) - 0.5).abs() < 1e-12);
        assert_eq!(Criterion::Entropy.impurity(&[5, 0], 5), 0.0);
        assert!((Criterion::Entropy.impurity(&[5, 5], 10) - 2f64.ln().abs()).abs() < 1e-12);
        assert_eq!(Criterion::Gini.impurity(&[], 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let m = DenseMatrix::from_rows(&[vec![1.0]]);
        let _ = DecisionTree::fit(&m, &[5], 2, &TreeConfig::default());
    }
}
