//! Stratified k-fold cross-validation.
//!
//! Table I's classification metrics come from "10-fold cross validation
//! … used to evaluate the classification model". Folds are stratified by
//! class so every fold sees (approximately) the full label distribution
//! — essential here because K-means cluster sizes are heavily skewed.

use ada_metrics::ConfusionMatrix;
use ada_vsm::dense::DenseMatrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Builds `num_folds` stratified folds over `labels`; returns, for each
/// fold, the indices of its *test* partition. Every index appears in
/// exactly one fold.
///
/// # Panics
/// Panics when `num_folds == 0` or there are fewer samples than folds.
pub fn stratified_folds(labels: &[usize], num_folds: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(num_folds >= 1, "need at least one fold");
    assert!(
        labels.len() >= num_folds,
        "fewer samples ({}) than folds ({num_folds})",
        labels.len()
    );
    let num_classes = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    for (i, &l) in labels.iter().enumerate() {
        per_class[l].push(i);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); num_folds];
    let mut next = 0usize;
    for class_indices in &mut per_class {
        class_indices.shuffle(&mut rng);
        // Round-robin across folds, continuing the cursor between classes
        // so small classes don't all land in fold 0.
        for &i in class_indices.iter() {
            folds[next % num_folds].push(i);
            next += 1;
        }
    }
    for fold in &mut folds {
        fold.sort_unstable();
    }
    folds
}

/// Runs k-fold cross-validation of an arbitrary classifier and pools the
/// per-fold confusion matrices.
///
/// `train_and_predict(train_x, train_y, test_x)` must return one
/// predicted label per test row.
///
/// # Panics
/// Panics when the classifier returns the wrong number of predictions,
/// or on degenerate fold configurations (see [`stratified_folds`]).
pub fn cross_validate<F>(
    matrix: &DenseMatrix,
    labels: &[usize],
    num_classes: usize,
    num_folds: usize,
    seed: u64,
    mut train_and_predict: F,
) -> ConfusionMatrix
where
    F: FnMut(&DenseMatrix, &[usize], &DenseMatrix) -> Vec<usize>,
{
    assert_eq!(matrix.num_rows(), labels.len(), "label count mismatch");
    let folds = stratified_folds(labels, num_folds, seed);
    let mut pooled = ConfusionMatrix::new(num_classes);
    for fold in &folds {
        if fold.is_empty() {
            continue;
        }
        let in_fold = {
            let mut mask = vec![false; labels.len()];
            for &i in fold {
                mask[i] = true;
            }
            mask
        };
        let train_idx: Vec<usize> = (0..labels.len()).filter(|&i| !in_fold[i]).collect();
        if train_idx.is_empty() {
            continue; // single-fold CV: nothing to train on
        }
        let train_x = matrix.select_rows(&train_idx);
        let train_y: Vec<usize> = train_idx.iter().map(|&i| labels[i]).collect();
        let test_x = matrix.select_rows(fold);
        let predictions = train_and_predict(&train_x, &train_y, &test_x);
        assert_eq!(
            predictions.len(),
            fold.len(),
            "classifier returned wrong number of predictions"
        );
        for (&i, &p) in fold.iter().zip(&predictions) {
            pooled.record(labels[i], p);
        }
    }
    pooled
}

/// Convenience wrapper: 10-fold CV of a CART decision tree, the paper's
/// Table I protocol.
pub fn cross_validate_tree(
    matrix: &DenseMatrix,
    labels: &[usize],
    num_classes: usize,
    config: &crate::tree::TreeConfig,
    seed: u64,
) -> ConfusionMatrix {
    cross_validate(matrix, labels, num_classes, 10, seed, |tx, ty, sx| {
        crate::tree::DecisionTree::fit(tx, ty, num_classes, config).predict(sx)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeConfig;

    #[test]
    fn folds_partition_all_indices() {
        let labels = vec![0, 1, 0, 1, 0, 1, 2, 2, 2, 0];
        let folds = stratified_folds(&labels, 3, 1);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn folds_are_stratified() {
        // 40 of class 0, 40 of class 1 into 4 folds: each fold must get
        // 10 of each.
        let labels: Vec<usize> = (0..80).map(|i| i % 2).collect();
        let folds = stratified_folds(&labels, 4, 2);
        for fold in &folds {
            let ones = fold.iter().filter(|&&i| labels[i] == 1).count();
            assert_eq!(fold.len(), 20);
            assert_eq!(ones, 10);
        }
    }

    #[test]
    fn folds_deterministic_per_seed() {
        let labels: Vec<usize> = (0..30).map(|i| i % 3).collect();
        assert_eq!(
            stratified_folds(&labels, 5, 7),
            stratified_folds(&labels, 5, 7)
        );
        assert_ne!(
            stratified_folds(&labels, 5, 7),
            stratified_folds(&labels, 5, 8)
        );
    }

    #[test]
    fn cv_perfect_on_separable_data() {
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![if i % 2 == 0 { 0.0 } else { 10.0 } + (i as f64) * 0.001])
            .collect();
        let labels: Vec<usize> = (0..60).map(|i| i % 2).collect();
        let m = DenseMatrix::from_rows(&rows);
        let cm = cross_validate_tree(&m, &labels, 2, &TreeConfig::default(), 3);
        assert_eq!(cm.total(), 60);
        assert!((cm.accuracy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cv_near_chance_on_random_labels() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let rows: Vec<Vec<f64>> = (0..200).map(|_| vec![rng.gen::<f64>()]).collect();
        let labels: Vec<usize> = (0..200).map(|_| rng.gen_range(0..2)).collect();
        let m = DenseMatrix::from_rows(&rows);
        let cm = cross_validate_tree(&m, &labels, 2, &TreeConfig::default(), 5);
        assert!(cm.accuracy() < 0.7, "accuracy {}", cm.accuracy());
    }

    #[test]
    #[should_panic(expected = "fewer samples")]
    fn rejects_more_folds_than_samples() {
        let _ = stratified_folds(&[0, 1], 5, 0);
    }
}
