//! Sequential-pattern mining over per-patient visit timelines.
//!
//! MeTA (the paper's reference \[2\]) characterizes *treatments* — ordered
//! examination histories — not just co-occurrence sets. This module
//! mines frequent *sequences*: ordered item lists that appear, in order
//! and in distinct visits, within at least `min_support` patients'
//! timelines (an AprioriAll-style level-wise miner). Sequences feed the
//! treatment-compliance end-goal ("which examinations follow which").

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use super::patterns::{Item, Itemset};

/// One patient's timeline: visits in chronological order, each a sorted
/// set of items.
pub type VisitSequence = Vec<Itemset>;

/// A frequent sequential pattern.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrequentSequence {
    /// The ordered items (each step matched in a *distinct, later*
    /// visit).
    pub sequence: Vec<Item>,
    /// Number of timelines containing the sequence.
    pub support: usize,
}

impl FrequentSequence {
    /// Relative support given the timeline count.
    pub fn relative_support(&self, num_sequences: usize) -> f64 {
        if num_sequences == 0 {
            0.0
        } else {
            self.support as f64 / num_sequences as f64
        }
    }
}

/// True when `pattern` occurs in `timeline`: items matched in strictly
/// increasing visit positions.
pub fn contains_sequence(timeline: &VisitSequence, pattern: &[Item]) -> bool {
    let mut visit_idx = 0usize;
    'outer: for item in pattern {
        while visit_idx < timeline.len() {
            let visit = &timeline[visit_idx];
            visit_idx += 1;
            if visit.binary_search(item).is_ok() {
                continue 'outer;
            }
        }
        return false;
    }
    true
}

/// Mines all sequences of length ≤ `max_len` with support ≥
/// `min_support`, in canonical order (length, then lexicographic).
///
/// # Panics
/// Panics when `min_support == 0` or `max_len == 0`.
pub fn mine(
    timelines: &[VisitSequence],
    min_support: usize,
    max_len: usize,
) -> Vec<FrequentSequence> {
    assert!(min_support >= 1, "min_support must be at least 1");
    assert!(max_len >= 1, "max_len must be at least 1");

    // L1: frequent single items (timeline-level support).
    let mut item_support: HashMap<Item, usize> = HashMap::new();
    for timeline in timelines {
        let mut seen: Vec<Item> = timeline.iter().flatten().copied().collect();
        seen.sort_unstable();
        seen.dedup();
        for item in seen {
            *item_support.entry(item).or_insert(0) += 1;
        }
    }
    let mut frequent_items: Vec<Item> = item_support
        .iter()
        .filter(|&(_, &c)| c >= min_support)
        .map(|(&i, _)| i)
        .collect();
    frequent_items.sort_unstable();

    let mut result: Vec<FrequentSequence> = frequent_items
        .iter()
        .map(|&i| FrequentSequence {
            sequence: vec![i],
            support: item_support[&i],
        })
        .collect();

    let mut current: Vec<Vec<Item>> = result.iter().map(|f| f.sequence.clone()).collect();
    let mut length = 1usize;
    while length < max_len && !current.is_empty() {
        // Candidate generation: extend every frequent sequence with every
        // frequent item (sequences, unlike itemsets, allow repeats —
        // "HbA1c then HbA1c again" is a real follow-up pattern).
        let mut next = Vec::new();
        for base in &current {
            for &item in &frequent_items {
                let mut candidate = base.clone();
                candidate.push(item);
                // Prune: the (k)-suffix must be frequent (downward
                // closure for sequences).
                let suffix = &candidate[1..];
                if !current.iter().any(|s| s == suffix) {
                    continue;
                }
                let support = timelines
                    .iter()
                    .filter(|t| contains_sequence(t, &candidate))
                    .count();
                if support >= min_support {
                    next.push(FrequentSequence {
                        sequence: candidate,
                        support,
                    });
                }
            }
        }
        current = next.iter().map(|f| f.sequence.clone()).collect();
        result.extend(next);
        length += 1;
    }

    result.sort_by(|a, b| {
        a.sequence
            .len()
            .cmp(&b.sequence.len())
            .then_with(|| a.sequence.cmp(&b.sequence))
    });
    result
}

/// The confidence of the sequential rule `prefix ⇒ next`: among
/// timelines containing `prefix`, the fraction that continue with
/// `next` afterwards. Returns 0.0 when the prefix never occurs.
pub fn sequence_confidence(timelines: &[VisitSequence], prefix: &[Item], next: Item) -> f64 {
    let mut with_prefix = 0usize;
    let mut continued = 0usize;
    let mut full: Vec<Item> = prefix.to_vec();
    full.push(next);
    for t in timelines {
        if contains_sequence(t, prefix) {
            with_prefix += 1;
            if contains_sequence(t, &full) {
                continued += 1;
            }
        }
    }
    if with_prefix == 0 {
        0.0
    } else {
        continued as f64 / with_prefix as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timelines() -> Vec<VisitSequence> {
        vec![
            // patient 0: a -> b -> c
            vec![vec![0], vec![1], vec![2]],
            // patient 1: a -> b (same visit has d)
            vec![vec![0, 3], vec![1]],
            // patient 2: b -> a (reversed)
            vec![vec![1], vec![0]],
            // patient 3: a -> a -> b (repeat)
            vec![vec![0], vec![0], vec![1]],
        ]
    }

    #[test]
    fn containment_requires_order_and_distinct_visits() {
        let t: VisitSequence = vec![vec![0, 1], vec![2]];
        assert!(contains_sequence(&t, &[0, 2]));
        assert!(contains_sequence(&t, &[1, 2]));
        // 0 and 1 share a visit: no "0 then 1" sequence.
        assert!(!contains_sequence(&t, &[0, 1]));
        assert!(!contains_sequence(&t, &[2, 0]));
        assert!(contains_sequence(&t, &[]));
        assert!(contains_sequence(&t, &[2]));
    }

    #[test]
    fn mines_ordered_patterns() {
        let result = mine(&timelines(), 2, 3);
        let find = |seq: &[Item]| result.iter().find(|f| f.sequence == seq).map(|f| f.support);
        assert_eq!(find(&[0]), Some(4));
        assert_eq!(find(&[1]), Some(4));
        // a -> b in patients 0, 1, 3.
        assert_eq!(find(&[0, 1]), Some(3));
        // b -> a only in patient 2: below support 2.
        assert_eq!(find(&[1, 0]), None);
    }

    #[test]
    fn repeats_are_found() {
        let result = mine(&timelines(), 1, 2);
        let rep = result.iter().find(|f| f.sequence == vec![0, 0]);
        assert_eq!(rep.map(|f| f.support), Some(1)); // patient 3 only
    }

    #[test]
    fn max_len_caps_pattern_length() {
        let result = mine(&timelines(), 1, 2);
        assert!(result.iter().all(|f| f.sequence.len() <= 2));
        let longer = mine(&timelines(), 1, 3);
        assert!(longer.iter().any(|f| f.sequence.len() == 3));
    }

    #[test]
    fn downward_closure_for_sequences() {
        let result = mine(&timelines(), 1, 3);
        let supports: HashMap<&Vec<Item>, usize> =
            result.iter().map(|f| (&f.sequence, f.support)).collect();
        for f in &result {
            if f.sequence.len() >= 2 {
                let prefix = f.sequence[..f.sequence.len() - 1].to_vec();
                let suffix = f.sequence[1..].to_vec();
                assert!(supports[&prefix] >= f.support);
                assert!(supports[&suffix] >= f.support);
            }
        }
    }

    #[test]
    fn sequence_rule_confidence() {
        let ts = timelines();
        // P(continue with b | saw a) = 3 of 4 timelines with a.
        let c = sequence_confidence(&ts, &[0], 1);
        assert!((c - 0.75).abs() < 1e-12);
        assert_eq!(sequence_confidence(&ts, &[9], 1), 0.0);
    }

    #[test]
    fn empty_inputs() {
        assert!(mine(&[], 1, 3).is_empty());
        let empty_timelines: Vec<VisitSequence> = vec![vec![], vec![]];
        assert!(mine(&empty_timelines, 1, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "min_support")]
    fn rejects_zero_support() {
        let _ = mine(&[], 0, 2);
    }
}
