//! Classic Lloyd K-means.
//!
//! The production entry point ([`run`]) executes on the shared
//! [`kernel`](super::kernel): dot-product distances over cached row
//! norms, optional Hamerly bound pruning, and a deterministic chunked
//! parallel reduction. The seed full-scan implementation is retained as
//! [`run_reference`] — the baseline the perf gate and the equivalence
//! property tests compare against.

use ada_vsm::dense::{distance_sq, DenseMatrix};

use super::kernel::{self, KernelOpts, KernelStats};
use super::{update_centroids, KMeansResult};

/// Assigns every row to its nearest centroid (ties to the lowest centroid
/// index) and returns the resulting SSE.
pub(crate) fn assign(
    matrix: &DenseMatrix,
    centroids: &DenseMatrix,
    assignments: &mut [usize],
) -> f64 {
    let k = centroids.num_rows();
    let mut sse = 0.0;
    for (i, a) in assignments.iter_mut().enumerate() {
        let row = matrix.row(i);
        let mut best = 0usize;
        let mut best_d = distance_sq(row, centroids.row(0));
        for c in 1..k {
            let d = distance_sq(row, centroids.row(c));
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        *a = best;
        sse += best_d;
    }
    sse
}

/// Runs Lloyd iterations from the given initial centroids on the
/// shared kernel (bound pruning and thread budget per `opts`).
pub(crate) fn run(
    matrix: &DenseMatrix,
    centroids: DenseMatrix,
    max_iters: usize,
    tol: f64,
    opts: KernelOpts,
) -> (KMeansResult, KernelStats) {
    kernel::run(matrix, centroids, max_iters, tol, opts)
}

/// The seed full-scan Lloyd loop, kept as the plain reference
/// implementation: single-threaded, no pruning, `distance_sq` per
/// point-centroid pair, and an unconditional final re-assignment. The
/// `kmeans_perf` benchmark measures the kernel against this baseline,
/// and the property suite checks the kernel's output against it.
pub fn run_reference(
    matrix: &DenseMatrix,
    mut centroids: DenseMatrix,
    max_iters: usize,
    tol: f64,
) -> KMeansResult {
    let mut assignments = vec![0usize; matrix.num_rows()];
    let mut converged = false;
    let mut iterations = 0;
    while iterations < max_iters {
        assign(matrix, &centroids, &mut assignments);
        let movement = update_centroids(matrix, &mut assignments, &mut centroids);
        iterations += 1;
        if movement <= tol {
            converged = true;
            break;
        }
    }
    // Final assignment against the settled centroids, for an SSE that is
    // consistent with the reported assignment vector.
    let sse = assign(matrix, &centroids, &mut assignments);
    KMeansResult {
        assignments,
        centroids,
        sse,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::testutil::gaussian_blobs;

    #[test]
    fn assign_picks_nearest() {
        let m = DenseMatrix::from_rows(&[vec![0.0], vec![9.0], vec![4.9]]);
        let c = DenseMatrix::from_rows(&[vec![0.0], vec![10.0]]);
        let mut a = vec![0; 3];
        let sse = assign(&m, &c, &mut a);
        assert_eq!(a, vec![0, 1, 0]);
        assert!((sse - (0.0 + 1.0 + 4.9f64 * 4.9)).abs() < 1e-12);
    }

    #[test]
    fn assign_breaks_ties_low_index() {
        let m = DenseMatrix::from_rows(&[vec![5.0]]);
        let c = DenseMatrix::from_rows(&[vec![0.0], vec![10.0]]);
        let mut a = vec![9];
        assign(&m, &c, &mut a);
        assert_eq!(a, vec![0]);
    }

    #[test]
    fn kernel_matches_reference_trajectory() {
        let m = gaussian_blobs(4, 50, 4, 11);
        let start = crate::kmeans::init::initial_centroids(
            &m,
            4,
            crate::kmeans::KMeansInit::KMeansPlusPlus,
            2,
        );
        let reference = run_reference(&m, start.clone(), 100, 1e-6);
        let (kernel, _) = run(
            &m,
            start,
            100,
            1e-6,
            KernelOpts {
                threads: 1,
                prune: true,
            },
        );
        assert_eq!(reference.assignments, kernel.assignments);
        assert_eq!(reference.iterations, kernel.iterations);
        assert_eq!(reference.converged, kernel.converged);
        assert!((reference.sse - kernel.sse).abs() < 1e-9 * (1.0 + reference.sse));
    }

    #[test]
    fn sse_never_increases_across_iterations() {
        let m = gaussian_blobs(3, 40, 3, 10);
        let start =
            crate::kmeans::init::initial_centroids(&m, 3, crate::kmeans::KMeansInit::Forgy, 3);
        // Run step by step and track SSE monotonicity.
        let mut centroids = start;
        let mut assignments = vec![0usize; m.num_rows()];
        let mut last = f64::INFINITY;
        for _ in 0..20 {
            let sse = assign(&m, &centroids, &mut assignments);
            assert!(sse <= last + 1e-9, "SSE went up: {last} -> {sse}");
            last = sse;
            if update_centroids(&m, &mut assignments, &mut centroids) <= 1e-12 {
                break;
            }
        }
    }
}
