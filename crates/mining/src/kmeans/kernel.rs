//! The shared K-means hot path: a deterministic, multi-core Lloyd
//! kernel with Hamerly-style bound pruning.
//!
//! Three independent accelerations compose here, all of them exact —
//! the kernel's output (assignments, centroids, SSE, iteration count)
//! is byte-identical whichever combination is enabled:
//!
//! 1. **Dot-product distances.** `d²(x, c) = ‖x‖² − 2·x·c + ‖c‖²`,
//!    with `‖x‖²` served from [`DenseMatrix::row_norms_sq`]'s
//!    once-per-matrix cache (shared across a whole K sweep and every
//!    warm-started partial-mining subset) and `‖c‖²` recomputed once
//!    per iteration. The inner loop degenerates to one dot product.
//! 2. **Hamerly bounds.** Every point tracks an upper bound `u` on the
//!    distance to its assigned centroid and a lower bound `l` on the
//!    distance to the second-closest one. After a centroid update the
//!    bounds are inflated by the per-centroid movement (`u += δ_a`,
//!    `l −= max_c δ_c`); while `u ≤ max(l, s(a))` holds — where
//!    `s(c) = ½·min_{c'≠c} d(c, c')` is the centroid separation radius,
//!    recomputed each iteration for O(k²·d) — the point's assignment
//!    provably cannot change and the k-way scan is skipped. A failed
//!    test first *tightens* `u` with one exact distance and retests
//!    before falling back to the full scan. Empty-cluster repair
//!    invalidates the moved points' bounds.
//! 3. **Chunked parallel reduction.** Rows are processed in fixed
//!    chunks of [`CHUNK_ROWS`]; each chunk emits private partial sums
//!    (centroid accumulators, counts, SSE) that are reduced **in chunk
//!    order** on the coordinating thread. Floating-point reduction
//!    order is therefore a function of the row count alone — never of
//!    the thread count or of scheduling — which is what makes the
//!    serial and parallel kernels byte-identical.
//!
//! The fixed chunk association means the kernel's centroids can differ
//! from a straight left-to-right fold in the last ulp; the retained
//! seed implementation ([`super::lloyd::run_reference`]) exists as the
//! plain baseline for benchmarks and equivalence tests.

use ada_vsm::dense::{distance_sq, dot, DenseMatrix};

use super::KMeansResult;

/// Eight-lane unrolled dot product for the assignment scan. Independent
/// accumulators break the straight fold's add-latency chain (the scan
/// is latency-bound at paper dimensionality: eight lanes cover FMA
/// latency × issue width on current cores, where four left stalls) and
/// vectorize cleanly across two 4-wide registers. The lane sums combine
/// in the fixed tree `((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7))`, so the
/// result is a pure function of the operands — deterministic across
/// thread counts, prune modes, and call sites.
#[inline]
fn dot8(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = [0.0f64; 8];
    let ca = a.chunks_exact(8);
    let cb = b.chunks_exact(8);
    let (ra, rb) = (ca.remainder(), cb.remainder());
    for (x, y) in ca.zip(cb) {
        s[0] += x[0] * y[0];
        s[1] += x[1] * y[1];
        s[2] += x[2] * y[2];
        s[3] += x[3] * y[3];
        s[4] += x[4] * y[4];
        s[5] += x[5] * y[5];
        s[6] += x[6] * y[6];
        s[7] += x[7] * y[7];
    }
    for (j, (x, y)) in ra.iter().zip(rb).enumerate() {
        s[j] += x * y;
    }
    ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]))
}

/// Fixed row-chunk size of the deterministic reduction. Chunk
/// boundaries — and therefore the floating-point reduction tree — are a
/// pure function of the row count, independent of the thread budget.
pub(crate) const CHUNK_ROWS: usize = 256;

/// Instrumentation counters of one kernel run.
///
/// Purely observational: the counters are accumulated alongside the
/// arithmetic the kernel performs anyway, so collecting them never
/// changes assignments, centroids, SSE, or the iteration count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Exact point-to-centroid distance evaluations performed.
    pub distance_evals: u64,
    /// Points whose k-way scan was skipped by the Hamerly bound test
    /// (either disjunct: lower bound or separation radius).
    pub bound_skips: u64,
    /// Skips attributable to the centroid-separation radius alone (the
    /// lower-bound test had already failed); a subset of `bound_skips`.
    pub sep_test_hits: u64,
    /// Points that paid for the full k-way assignment scan.
    pub rows_scanned: u64,
    /// Lloyd iterations executed (mirrors `KMeansResult::iterations`).
    pub iterations: u64,
    /// Row chunks processed across every assignment pass (the unit of
    /// the deterministic parallel reduction).
    pub chunks: u64,
}

impl KernelStats {
    /// Adds every counter of `other` into `self` (aggregation across
    /// the runs of a sweep or a partial-mining ladder).
    pub fn merge(&mut self, other: &KernelStats) {
        self.distance_evals += other.distance_evals;
        self.bound_skips += other.bound_skips;
        self.sep_test_hits += other.sep_test_hits;
        self.rows_scanned += other.rows_scanned;
        self.iterations += other.iterations;
        self.chunks += other.chunks;
    }

    /// The counters as named pairs, in a stable order — the shape
    /// observer events and session documents carry.
    pub fn as_pairs(&self) -> [(&'static str, u64); 6] {
        [
            ("iterations", self.iterations),
            ("rows_scanned", self.rows_scanned),
            ("distance_evals", self.distance_evals),
            ("bound_skips", self.bound_skips),
            ("sep_test_hits", self.sep_test_hits),
            ("chunks", self.chunks),
        ]
    }
}

/// Execution options of the kernel.
#[derive(Debug, Clone, Copy)]
pub(crate) struct KernelOpts {
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Enable Hamerly bound pruning.
    pub prune: bool,
}

/// Resolves the effective worker count: `0` means one per available
/// core, and tiny inputs are kept serial (same output either way).
pub(crate) fn effective_threads(requested: usize, rows: usize) -> usize {
    let t = if requested == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        requested
    };
    t.clamp(1, rows.div_ceil(CHUNK_ROWS).max(1))
}

/// Runs each task through `body`, returning results in task order.
///
/// Tasks are split into at most `threads` contiguous groups; each
/// worker processes its group in order and the groups are joined in
/// spawn order, so the output sequence — and any reduction folded over
/// it — is identical for every thread count.
pub(crate) fn run_chunks<T, R, F>(threads: usize, tasks: Vec<T>, body: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = tasks.len();
    let workers = threads.clamp(1, n.max(1));
    if workers <= 1 {
        return tasks.into_iter().map(body).collect();
    }
    let base = n / workers;
    let rem = n % workers;
    let mut iter = tasks.into_iter();
    let groups: Vec<Vec<T>> = (0..workers)
        .map(|g| iter.by_ref().take(base + usize::from(g < rem)).collect())
        .collect();
    let body = &body;
    let mut out = Vec::with_capacity(n);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .into_iter()
            .map(|group| scope.spawn(move |_| group.into_iter().map(body).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("kernel worker panicked"));
        }
    })
    .expect("kernel scope panicked");
    out
}

/// Mutable per-chunk view of the assignment and bound state.
struct AssignChunk<'a> {
    start: usize,
    assign: &'a mut [usize],
    upper: &'a mut [f64],
    lower: &'a mut [f64],
}

/// Per-chunk partial results of one assign pass.
struct AssignPartial {
    sums: Vec<f64>,
    counts: Vec<usize>,
    distance_evals: u64,
    bound_skips: u64,
    sep_test_hits: u64,
    rows_scanned: u64,
}

/// One assignment pass over all rows, optionally fused with the
/// centroid accumulation (per-chunk partial sums reduced in chunk
/// order). Returns `(sums, counts)` — empty when `accumulate` is off.
#[allow(clippy::too_many_arguments)]
fn assign_step(
    matrix: &DenseMatrix,
    xnorms: &[f64],
    centroids: &DenseMatrix,
    cnorms: &[f64],
    seps: &[f64],
    assignments: &mut [usize],
    upper: &mut [f64],
    lower: &mut [f64],
    opts: &KernelOpts,
    threads: usize,
    accumulate: bool,
    stats: &mut KernelStats,
) -> (Vec<f64>, Vec<usize>) {
    let k = centroids.num_rows();
    let dim = matrix.num_cols();

    let mut tasks = Vec::with_capacity(assignments.len().div_ceil(CHUNK_ROWS));
    let mut start = 0;
    let mut a_it = assignments.chunks_mut(CHUNK_ROWS);
    let mut u_it = upper.chunks_mut(CHUNK_ROWS);
    let mut l_it = lower.chunks_mut(CHUNK_ROWS);
    while let (Some(assign), Some(up), Some(lo)) = (a_it.next(), u_it.next(), l_it.next()) {
        let len = assign.len();
        tasks.push(AssignChunk {
            start,
            assign,
            upper: up,
            lower: lo,
        });
        start += len;
    }

    stats.chunks += tasks.len() as u64;
    let prune = opts.prune;
    let partials = run_chunks(threads, tasks, |chunk: AssignChunk| {
        let mut partial = AssignPartial {
            sums: vec![0.0; if accumulate { k * dim } else { 0 }],
            counts: vec![0usize; if accumulate { k } else { 0 }],
            distance_evals: 0,
            bound_skips: 0,
            sep_test_hits: 0,
            rows_scanned: 0,
        };
        for i in 0..chunk.assign.len() {
            let r = chunk.start + i;
            let row = matrix.row(r);
            // Hamerly test: the assignment cannot change while the
            // upper bound stays under the second-closest lower bound
            // (`<=`: its equality case is the last scan's own tie,
            // already broken to the lowest index) or *strictly* under
            // the assigned centroid's separation radius (`<`: equality
            // there is an exact midpoint tie that a rescan may break to
            // a lower-indexed centroid).
            let low = chunk.lower[i];
            let passes = move |u: f64, a: usize| u <= low || (prune && u < seps[a]);
            // Pure accounting: a skip where the lower-bound disjunct
            // failed was carried by the separation radius alone.
            let sep_carried = move |u: f64, a: usize| u > low && u < seps[a];
            let skip = prune && passes(chunk.upper[i], chunk.assign[i]);
            if skip {
                partial.bound_skips += 1;
                if sep_carried(chunk.upper[i], chunk.assign[i]) {
                    partial.sep_test_hits += 1;
                }
            } else {
                let mut scan = true;
                if prune {
                    // Tighten the upper bound with one exact distance
                    // to the assigned centroid, then retest.
                    let a = chunk.assign[i];
                    let d = (xnorms[r] - 2.0 * dot8(row, centroids.row(a)) + cnorms[a])
                        .max(0.0)
                        .sqrt();
                    partial.distance_evals += 1;
                    chunk.upper[i] = d;
                    if passes(d, a) {
                        partial.bound_skips += 1;
                        if sep_carried(d, a) {
                            partial.sep_test_hits += 1;
                        }
                        scan = false;
                    }
                }
                if scan {
                    // Full k-way scan tracking best and second-best
                    // (ties resolve to the lowest centroid index).
                    let mut best = 0usize;
                    let mut best_d2 = xnorms[r] - 2.0 * dot8(row, centroids.row(0)) + cnorms[0];
                    let mut second_d2 = f64::INFINITY;
                    for (c, &cn) in cnorms.iter().enumerate().skip(1) {
                        let d2 = xnorms[r] - 2.0 * dot8(row, centroids.row(c)) + cn;
                        if d2 < best_d2 {
                            second_d2 = best_d2;
                            best_d2 = d2;
                            best = c;
                        } else if d2 < second_d2 {
                            second_d2 = d2;
                        }
                    }
                    partial.distance_evals += k as u64;
                    partial.rows_scanned += 1;
                    chunk.assign[i] = best;
                    chunk.upper[i] = best_d2.max(0.0).sqrt();
                    chunk.lower[i] = second_d2.max(0.0).sqrt();
                }
            }
            if accumulate {
                let a = chunk.assign[i];
                partial.counts[a] += 1;
                let acc = &mut partial.sums[a * dim..(a + 1) * dim];
                for (s, v) in acc.iter_mut().zip(row) {
                    *s += v;
                }
            }
        }
        partial
    });

    // Deterministic reduction: strictly in chunk order.
    let mut sums = vec![0.0; if accumulate { k * dim } else { 0 }];
    let mut counts = vec![0usize; if accumulate { k } else { 0 }];
    for partial in partials {
        stats.distance_evals += partial.distance_evals;
        stats.bound_skips += partial.bound_skips;
        stats.sep_test_hits += partial.sep_test_hits;
        stats.rows_scanned += partial.rows_scanned;
        if accumulate {
            for (s, p) in sums.iter_mut().zip(&partial.sums) {
                *s += p;
            }
            for (c, p) in counts.iter_mut().zip(&partial.counts) {
                *c += p;
            }
        }
    }
    (sums, counts)
}

/// Chunk-ordered serial accumulation of member sums and counts — the
/// same reduction tree the parallel assign pass uses, so backends that
/// accumulate outside the kernel (filtering) produce bit-identical
/// centroids.
pub(crate) fn accumulate(
    matrix: &DenseMatrix,
    assignments: &[usize],
    k: usize,
) -> (Vec<f64>, Vec<usize>) {
    let dim = matrix.num_cols();
    let mut sums = vec![0.0; k * dim];
    let mut counts = vec![0usize; k];
    for (chunk_idx, chunk) in assignments.chunks(CHUNK_ROWS).enumerate() {
        let mut part_sums = vec![0.0; k * dim];
        let mut part_counts = vec![0usize; k];
        let start = chunk_idx * CHUNK_ROWS;
        for (i, &a) in chunk.iter().enumerate() {
            part_counts[a] += 1;
            let row = matrix.row(start + i);
            let acc = &mut part_sums[a * dim..(a + 1) * dim];
            for (s, v) in acc.iter_mut().zip(row) {
                *s += v;
            }
        }
        for (s, p) in sums.iter_mut().zip(&part_sums) {
            *s += p;
        }
        for (c, p) in counts.iter_mut().zip(&part_counts) {
            *c += p;
        }
    }
    (sums, counts)
}

/// The result of one centroid update.
pub(crate) struct UpdateOutcome {
    /// Total squared centroid movement (the convergence monitor).
    pub movement: f64,
    /// Per-centroid movement distance `‖Δc‖` (bound inflation).
    pub deltas: Vec<f64>,
    /// Rows reassigned by empty-cluster repair (their bounds are stale).
    pub repaired: Vec<usize>,
}

/// Finalizes a centroid update from accumulated member sums: repairs
/// empty clusters by stealing the globally farthest point (one per
/// empty cluster, deterministic), writes the new centroids, and reports
/// the per-centroid movement.
pub(crate) fn finalize_update(
    matrix: &DenseMatrix,
    assignments: &mut [usize],
    centroids: &mut DenseMatrix,
    sums: &mut [f64],
    counts: &mut [usize],
) -> UpdateOutcome {
    let k = centroids.num_rows();
    let dim = centroids.num_cols();
    let mut repaired = Vec::new();

    let empties: Vec<usize> = (0..k).filter(|&c| counts[c] == 0).collect();
    if !empties.is_empty() {
        let mut donors: Vec<(f64, usize)> = assignments
            .iter()
            .enumerate()
            .filter(|&(_, &a)| counts[a] > 1)
            .map(|(i, &a)| (distance_sq(matrix.row(i), centroids.row(a)), i))
            .collect();
        donors.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite distances"));
        let mut donor_iter = donors.into_iter();
        for empty in empties {
            // Find the next donor whose cluster can still give a point.
            for (_, i) in donor_iter.by_ref() {
                let old = assignments[i];
                if counts[old] <= 1 {
                    continue;
                }
                counts[old] -= 1;
                counts[empty] += 1;
                let row = matrix.row(i);
                for d in 0..dim {
                    sums[old * dim + d] -= row[d];
                    sums[empty * dim + d] += row[d];
                }
                assignments[i] = empty;
                repaired.push(i);
                break;
            }
        }
    }

    let mut movement = 0.0;
    let mut deltas = vec![0.0; k];
    for c in 0..k {
        if counts[c] == 0 {
            continue; // unrepairable (k > distinct points); keep position
        }
        let inv = 1.0 / counts[c] as f64;
        let target = centroids.row_mut(c);
        let mut delta_sq = 0.0;
        for d in 0..dim {
            let new = sums[c * dim + d] * inv;
            let diff = new - target[d];
            delta_sq += diff * diff;
            target[d] = new;
        }
        movement += delta_sq;
        deltas[c] = delta_sq.sqrt();
    }
    UpdateOutcome {
        movement,
        deltas,
        repaired,
    }
}

/// Half the distance from each centroid to its nearest other centroid:
/// a point within `seps[a]` of centroid `a` provably has `a` as its
/// argmin (any other centroid is at least as far by the triangle
/// inequality). O(k²·d) — negligible next to the O(n·k·d) scan.
fn separations(centroids: &DenseMatrix) -> Vec<f64> {
    let k = centroids.num_rows();
    let mut seps = vec![f64::INFINITY; k];
    for a in 0..k {
        for b in a + 1..k {
            let d2 = distance_sq(centroids.row(a), centroids.row(b));
            if d2 < seps[a] {
                seps[a] = d2;
            }
            if d2 < seps[b] {
                seps[b] = d2;
            }
        }
    }
    for s in &mut seps {
        *s = 0.5 * s.sqrt(); // k == 1: stays infinite, always skips
    }
    seps
}

/// Inflates every point's bounds by the centroid movement of the last
/// update: `u += δ_assigned`, `l −= max_c δ_c`.
fn propagate_bounds(
    outcome: &UpdateOutcome,
    assignments: &[usize],
    upper: &mut [f64],
    lower: &mut [f64],
) {
    let dmax = outcome.deltas.iter().copied().fold(0.0, f64::max);
    if dmax == 0.0 {
        return;
    }
    for ((u, l), &a) in upper.iter_mut().zip(lower.iter_mut()).zip(assignments) {
        *u += outcome.deltas[a];
        *l -= dmax;
    }
}

/// Exact SSE of `assignments` against `centroids`, chunk-reduced
/// deterministically (per-point `distance_sq` — no cancellation).
pub(crate) fn sse_pass(
    matrix: &DenseMatrix,
    centroids: &DenseMatrix,
    assignments: &[usize],
    threads: usize,
) -> f64 {
    let tasks: Vec<(usize, &[usize])> = assignments
        .chunks(CHUNK_ROWS)
        .enumerate()
        .map(|(i, chunk)| (i * CHUNK_ROWS, chunk))
        .collect();
    let partials = run_chunks(threads, tasks, |(start, chunk): (usize, &[usize])| {
        let mut sse = 0.0;
        for (i, &a) in chunk.iter().enumerate() {
            sse += distance_sq(matrix.row(start + i), centroids.row(a));
        }
        sse
    });
    partials.into_iter().sum()
}

/// Runs the kernel from the given initial centroids.
///
/// Iteration semantics match the seed Lloyd loop (assign, update,
/// converge on `movement ≤ tol`); when the loop settles with *zero*
/// movement the last in-loop assignment is already consistent and no
/// final re-assignment pass runs — otherwise (non-zero converged
/// movement, or the max-iters path) assignments are settled against the
/// final centroids before the SSE pass.
pub(crate) fn run(
    matrix: &DenseMatrix,
    mut centroids: DenseMatrix,
    max_iters: usize,
    tol: f64,
    opts: KernelOpts,
) -> (KMeansResult, KernelStats) {
    let n = matrix.num_rows();
    let k = centroids.num_rows();
    let threads = effective_threads(opts.threads, n);
    let xnorms = matrix.row_norms_sq();

    let mut assignments = vec![0usize; n];
    let mut upper = vec![f64::INFINITY; n];
    let mut lower = vec![f64::NEG_INFINITY; n];
    let mut stats = KernelStats::default();
    let mut iterations = 0;
    let mut converged = false;
    let mut zero_movement = false;
    let mut pending: Option<UpdateOutcome> = None;

    while iterations < max_iters {
        if let Some(outcome) = pending.take() {
            propagate_bounds(&outcome, &assignments, &mut upper, &mut lower);
        }
        let cnorms: Vec<f64> = (0..k)
            .map(|c| dot(centroids.row(c), centroids.row(c)))
            .collect();
        let seps = if opts.prune {
            separations(&centroids)
        } else {
            vec![0.0; k]
        };
        let (mut sums, mut counts) = assign_step(
            matrix,
            xnorms,
            &centroids,
            &cnorms,
            &seps,
            &mut assignments,
            &mut upper,
            &mut lower,
            &opts,
            threads,
            true,
            &mut stats,
        );
        let outcome = finalize_update(
            matrix,
            &mut assignments,
            &mut centroids,
            &mut sums,
            &mut counts,
        );
        for &r in &outcome.repaired {
            upper[r] = f64::INFINITY;
            lower[r] = f64::NEG_INFINITY;
        }
        iterations += 1;
        let movement = outcome.movement;
        pending = Some(outcome);
        if movement <= tol {
            converged = true;
            zero_movement = movement == 0.0;
            break;
        }
    }

    if !(converged && zero_movement) {
        // The centroids moved after the last in-loop assignment (or the
        // loop never ran): settle assignments against the final
        // centroids so the reported vector is their argmin.
        if let Some(outcome) = pending.take() {
            propagate_bounds(&outcome, &assignments, &mut upper, &mut lower);
        }
        let cnorms: Vec<f64> = (0..k)
            .map(|c| dot(centroids.row(c), centroids.row(c)))
            .collect();
        let seps = if opts.prune {
            separations(&centroids)
        } else {
            vec![0.0; k]
        };
        assign_step(
            matrix,
            xnorms,
            &centroids,
            &cnorms,
            &seps,
            &mut assignments,
            &mut upper,
            &mut lower,
            &opts,
            threads,
            false,
            &mut stats,
        );
    }
    let sse = sse_pass(matrix, &centroids, &assignments, threads);
    stats.iterations = iterations as u64;
    (
        KMeansResult {
            assignments,
            centroids,
            sse,
            iterations,
            converged,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::testutil::gaussian_blobs;
    use crate::kmeans::{init, KMeansInit};

    fn opts(threads: usize, prune: bool) -> KernelOpts {
        KernelOpts { threads, prune }
    }

    #[test]
    fn pruned_parallel_matches_plain_serial_bitwise() {
        let m = gaussian_blobs(4, 60, 5, 41);
        let start = init::initial_centroids(&m, 4, KMeansInit::KMeansPlusPlus, 7);
        let (plain, _) = run(&m, start.clone(), 100, 1e-6, opts(1, false));
        for threads in [1, 2, 4, 7] {
            let (pruned, stats) = run(&m, start.clone(), 100, 1e-6, opts(threads, true));
            assert_eq!(plain, pruned, "threads = {threads}");
            assert!(stats.bound_skips > 0, "pruning never fired");
        }
    }

    #[test]
    fn pruning_reduces_distance_evaluations() {
        // A poor Forgy start forces a longer trajectory — the regime
        // where the bounds pay off (the first scan is never prunable).
        let m = gaussian_blobs(6, 80, 4, 42);
        let start = init::initial_centroids(&m, 6, KMeansInit::Forgy, 3);
        let (full_result, full) = run(&m, start.clone(), 100, 1e-6, opts(1, false));
        let (pruned_result, pruned) = run(&m, start, 100, 1e-6, opts(1, true));
        assert_eq!(full_result, pruned_result);
        assert!(
            pruned.distance_evals * 2 < full.distance_evals,
            "pruned {} vs full {} ({} iterations)",
            pruned.distance_evals,
            full.distance_evals,
            full_result.iterations
        );
    }

    #[test]
    fn run_chunks_preserves_order_across_thread_counts() {
        let tasks: Vec<usize> = (0..37).collect();
        let serial = run_chunks(1, tasks.clone(), |t| t * 2);
        for threads in [2, 3, 8, 64] {
            assert_eq!(serial, run_chunks(threads, tasks.clone(), |t| t * 2));
        }
    }

    #[test]
    fn zero_movement_exit_skips_final_reassign() {
        // A well-separated 2-blob instance converges to a fixed point:
        // the kernel must report converged with a consistent SSE.
        let m = gaussian_blobs(2, 40, 3, 43);
        let start = init::initial_centroids(&m, 2, KMeansInit::KMeansPlusPlus, 1);
        let (result, _) = run(&m, start, 100, 1e-6, opts(1, true));
        assert!(result.converged);
        let manual = sse_pass(&m, &result.centroids, &result.assignments, 1);
        assert_eq!(result.sse, manual);
    }

    #[test]
    fn max_iters_zero_still_assigns() {
        let m = gaussian_blobs(2, 10, 2, 44);
        let start = init::initial_centroids(&m, 2, KMeansInit::Forgy, 2);
        let (result, _) = run(&m, start.clone(), 0, 1e-6, opts(1, true));
        assert!(!result.converged);
        assert_eq!(result.iterations, 0);
        // Assignments are the argmin of the (unmoved) initial centroids.
        let mut reference = vec![0usize; m.num_rows()];
        crate::kmeans::lloyd::assign(&m, &start, &mut reference);
        assert_eq!(result.assignments, reference);
    }

    #[test]
    fn k_one_skips_after_first_scan() {
        let m = gaussian_blobs(1, 50, 3, 45);
        let start = init::initial_centroids(&m, 1, KMeansInit::Forgy, 1);
        let (result, stats) = run(&m, start, 100, 1e-6, opts(1, true));
        assert!(result.converged);
        assert!(result.assignments.iter().all(|&a| a == 0));
        assert!(stats.bound_skips > 0);
    }
}
