//! K-means clustering: configuration, shared driver, and backends.
//!
//! The paper's clustering component is "a center-based algorithm such as
//! K-Means", with Kanungo et al.'s filtering algorithm as its cited
//! implementation. The [`KMeans`] driver exposes both backends behind
//! one configuration:
//!
//! * [`lloyd`] — the classic full-scan Lloyd iteration;
//! * [`filtering`] — the kd-tree filtering algorithm, which assigns
//!   whole tree cells to a single candidate centroid whenever every
//!   other candidate is provably farther from the cell.
//!
//! Both backends perform identical centroid updates, so given the same
//! initial centroids they walk the same trajectory (a property the test
//! suite checks); the filtering backend just touches far fewer points
//! per iteration on clustered data.
//!
//! The Lloyd backend executes on the shared [`kernel`]: dot-product
//! distances over the matrix's cached row norms, Hamerly bound pruning
//! ([`KMeans::prune`]), and a chunk-ordered parallel reduction
//! ([`KMeans::threads`]) whose output is byte-identical to the serial
//! path for every thread count.

pub mod bisecting;
pub mod filtering;
pub mod init;
pub(crate) mod kernel;
pub mod lloyd;
pub mod spherical;

use ada_vsm::dense::DenseMatrix;
use serde::{Deserialize, Serialize};

pub use init::KMeansInit;
pub use kernel::KernelStats;

/// Which K-means backend executes the iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KMeansBackend {
    /// Classic Lloyd: every iteration scans every point.
    Lloyd,
    /// Kanungo et al.'s kd-tree filtering algorithm (paper reference \[3\]).
    Filtering,
}

/// K-means configuration.
///
/// ```
/// use ada_mining::kmeans::KMeans;
/// use ada_vsm::DenseMatrix;
///
/// let points = DenseMatrix::from_rows(&[
///     vec![0.0, 0.0], vec![0.1, 0.0],
///     vec![9.0, 9.0], vec![9.1, 9.0],
/// ]);
/// let result = KMeans::new(2).seed(1).fit(&points);
/// assert_eq!(result.assignments[0], result.assignments[1]);
/// assert_ne!(result.assignments[0], result.assignments[2]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeans {
    /// Number of clusters.
    pub k: usize,
    /// Maximum number of iterations.
    pub max_iters: usize,
    /// Convergence tolerance on total squared centroid movement.
    pub tol: f64,
    /// Centroid initialization strategy.
    pub init: KMeansInit,
    /// RNG seed for the initialization.
    pub seed: u64,
    /// Iteration backend.
    pub backend: KMeansBackend,
    /// Row-level worker threads of the Lloyd kernel (0 = one per
    /// available core). Every value produces byte-identical output —
    /// the kernel reduces per-chunk partial sums in a fixed chunk
    /// order — so this is purely a latency knob.
    pub threads: usize,
    /// Hamerly bound pruning (Lloyd kernel only). Exact: pruned runs
    /// return the same assignments, centroids, SSE, and iteration
    /// count as unpruned ones, with far fewer distance evaluations.
    pub prune: bool,
}

impl KMeans {
    /// A sensible default configuration: k-means++ init, Lloyd backend,
    /// 100 iterations, tolerance 1e-6, serial with bound pruning on.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iters: 100,
            tol: 1e-6,
            init: KMeansInit::KMeansPlusPlus,
            seed: 0,
            backend: KMeansBackend::Lloyd,
            threads: 1,
            prune: true,
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the backend.
    pub fn backend(mut self, backend: KMeansBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the initialization strategy.
    pub fn init(mut self, init: KMeansInit) -> Self {
        self.init = init;
        self
    }

    /// Sets the iteration cap.
    pub fn max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Sets the row-level thread budget (0 = one per available core).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables or disables Hamerly bound pruning.
    pub fn prune(mut self, prune: bool) -> Self {
        self.prune = prune;
        self
    }

    /// Runs the configured backend on the rows of `matrix`.
    ///
    /// # Panics
    /// Panics when `k == 0`, the matrix is empty, or `k` exceeds the
    /// number of rows.
    pub fn fit(&self, matrix: &DenseMatrix) -> KMeansResult {
        assert!(self.k > 0, "k must be positive");
        assert!(matrix.num_rows() > 0, "cannot cluster an empty matrix");
        assert!(
            self.k <= matrix.num_rows(),
            "k = {} exceeds {} points",
            self.k,
            matrix.num_rows()
        );
        let centroids = init::initial_centroids(matrix, self.k, self.init, self.seed);
        self.fit_from(matrix, centroids)
    }

    /// Runs the configured backend from explicit initial centroids
    /// (used by tests and by bisecting K-means).
    ///
    /// # Panics
    /// Panics on shape mismatch between `matrix` and `centroids`.
    pub fn fit_from(&self, matrix: &DenseMatrix, centroids: DenseMatrix) -> KMeansResult {
        self.fit_from_with_stats(matrix, centroids).0
    }

    /// Runs the configured backend and additionally reports the
    /// kernel's instrumentation counters (distance evaluations, bound
    /// skips). The filtering backend reports zeroed counters — its
    /// pruning works on tree cells, not per-point bounds.
    pub fn fit_with_stats(&self, matrix: &DenseMatrix) -> (KMeansResult, KernelStats) {
        assert!(self.k > 0, "k must be positive");
        assert!(matrix.num_rows() > 0, "cannot cluster an empty matrix");
        assert!(
            self.k <= matrix.num_rows(),
            "k = {} exceeds {} points",
            self.k,
            matrix.num_rows()
        );
        let centroids = init::initial_centroids(matrix, self.k, self.init, self.seed);
        self.fit_from_with_stats(matrix, centroids)
    }

    /// Runs the configured backend from explicit initial centroids and
    /// additionally reports the kernel's instrumentation counters —
    /// the warm-started form of [`KMeans::fit_with_stats`], used by the
    /// partial-mining ladders to aggregate counters across rungs.
    ///
    /// # Panics
    /// Panics on shape mismatch between `matrix` and `centroids`.
    pub fn fit_from_with_stats(
        &self,
        matrix: &DenseMatrix,
        centroids: DenseMatrix,
    ) -> (KMeansResult, KernelStats) {
        assert_eq!(centroids.num_rows(), self.k, "centroid count");
        assert_eq!(centroids.num_cols(), matrix.num_cols(), "dim mismatch");
        let opts = kernel::KernelOpts {
            threads: self.threads,
            prune: self.prune,
        };
        match self.backend {
            KMeansBackend::Lloyd => lloyd::run(matrix, centroids, self.max_iters, self.tol, opts),
            KMeansBackend::Filtering => (
                filtering::run(matrix, centroids, self.max_iters, self.tol, self.threads),
                KernelStats::default(),
            ),
        }
    }
}

/// The output of a K-means run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansResult {
    /// Cluster index of every input row.
    pub assignments: Vec<usize>,
    /// Final centroids (k × dim).
    pub centroids: DenseMatrix,
    /// Final SSE (sum of squared distances to assigned centroids).
    pub sse: f64,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Whether the run converged before hitting `max_iters`.
    pub converged: bool,
}

impl KMeansResult {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.num_rows()
    }

    /// Cluster sizes (length k).
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }

    /// FNV-1a fingerprint of the whole model — every assignment, every
    /// centroid coordinate's exact bit pattern, the SSE bits, and the
    /// shape. Two results fingerprint equal iff they are byte-identical,
    /// which is how the streaming layer and the determinism gates
    /// compare models without shipping matrices around.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(&(self.centroids.num_rows() as u64).to_le_bytes());
        mix(&(self.centroids.num_cols() as u64).to_le_bytes());
        for &v in self.centroids.as_flat() {
            mix(&v.to_bits().to_le_bytes());
        }
        for &a in &self.assignments {
            mix(&(a as u64).to_le_bytes());
        }
        mix(&self.sse.to_bits().to_le_bytes());
        mix(&(self.iterations as u64).to_le_bytes());
        mix(&[u8::from(self.converged)]);
        h
    }
}

/// Zero-pads `prev` (k × d_prev) into `dim` columns (`d_prev <= dim`):
/// carried centroid coordinates keep their columns and newly added
/// feature columns start at zero.
///
/// This is the warm-start seam shared by the partial-mining ladders
/// (whose horizontal feature sets are frequency-order prefixes of one
/// another) and the streaming miner (whose vocabulary grows as new exam
/// types appear): both re-seed [`KMeans::fit_from`] with a previous
/// model whose feature space has since widened.
///
/// # Panics
/// Panics in debug builds when `dim` is smaller than `prev`'s width.
pub fn pad_centroids(prev: &DenseMatrix, dim: usize) -> DenseMatrix {
    debug_assert!(prev.num_cols() <= dim, "warm starts only widen");
    if prev.num_cols() == dim {
        return prev.clone();
    }
    let mut out = DenseMatrix::zeros(prev.num_rows(), dim);
    for c in 0..prev.num_rows() {
        out.row_mut(c)[..prev.num_cols()].copy_from_slice(prev.row(c));
    }
    out
}

/// Shared post-assignment centroid update: recomputes each centroid as
/// the mean of its members and repairs empty clusters by stealing the
/// point farthest from its own centroid.
///
/// Accumulation runs through the kernel's chunk-ordered reduction, so
/// every backend — serial or parallel — produces bit-identical
/// centroids from identical assignments.
///
/// Returns the total squared movement of centroids (the convergence
/// monitor both backends use).
pub(crate) fn update_centroids(
    matrix: &DenseMatrix,
    assignments: &mut [usize],
    centroids: &mut DenseMatrix,
) -> f64 {
    let (mut sums, mut counts) = kernel::accumulate(matrix, assignments, centroids.num_rows());
    kernel::finalize_update(matrix, assignments, centroids, &mut sums, &mut counts).movement
}

#[cfg(test)]
pub(crate) mod testutil {
    use ada_vsm::dense::DenseMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// `blobs` well-separated Gaussian blobs of `per_blob` points each.
    pub fn gaussian_blobs(blobs: usize, per_blob: usize, dim: usize, seed: u64) -> DenseMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(blobs * per_blob);
        for b in 0..blobs {
            let center: Vec<f64> = (0..dim)
                .map(|d| ((b * dim + d) % 7) as f64 * 10.0)
                .collect();
            for _ in 0..per_blob {
                rows.push(
                    center
                        .iter()
                        .map(|&c| c + rng.gen_range(-0.5..0.5))
                        .collect::<Vec<f64>>(),
                );
            }
        }
        DenseMatrix::from_rows(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testutil::gaussian_blobs;

    #[test]
    fn result_cluster_sizes_sum_to_n() {
        let m = gaussian_blobs(3, 30, 4, 1);
        let result = KMeans::new(3).seed(5).fit(&m);
        assert_eq!(result.cluster_sizes().iter().sum::<usize>(), 90);
        assert_eq!(result.k(), 3);
    }

    #[test]
    fn recovers_separated_blobs() {
        let m = gaussian_blobs(4, 25, 3, 2);
        let result = KMeans::new(4).seed(3).fit(&m);
        assert!(result.converged);
        // Each blob of 25 consecutive rows must be pure.
        for b in 0..4 {
            let first = result.assignments[b * 25];
            for i in 0..25 {
                assert_eq!(result.assignments[b * 25 + i], first, "blob {b}");
            }
        }
        assert!(result.sse < 90.0 * 0.25 * 3.0, "sse = {}", result.sse);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = gaussian_blobs(3, 20, 3, 4);
        let a = KMeans::new(3).seed(9).fit(&m);
        let b = KMeans::new(3).seed(9).fit(&m);
        assert_eq!(a, b);
    }

    #[test]
    fn backends_agree_from_same_start() {
        let m = gaussian_blobs(5, 40, 4, 7);
        let start = init::initial_centroids(&m, 5, KMeansInit::KMeansPlusPlus, 11);
        let lloyd = KMeans::new(5).fit_from(&m, start.clone());
        let filtering = KMeans::new(5)
            .backend(KMeansBackend::Filtering)
            .fit_from(&m, start);
        assert_eq!(lloyd.assignments, filtering.assignments);
        assert!((lloyd.sse - filtering.sse).abs() < 1e-6 * (1.0 + lloyd.sse));
        assert_eq!(lloyd.iterations, filtering.iterations);
    }

    #[test]
    fn k_equals_n_gives_zero_sse() {
        let m = gaussian_blobs(2, 3, 2, 8);
        let result = KMeans::new(6).seed(1).fit(&m);
        assert!(result.sse < 1e-9, "sse = {}", result.sse);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_k_larger_than_n() {
        let m = gaussian_blobs(1, 3, 2, 0);
        let _ = KMeans::new(10).fit(&m);
    }

    #[test]
    fn empty_cluster_repair_keeps_k_clusters() {
        // Points in a line, initial centroids stacked on one point: some
        // clusters will start empty and must be repaired.
        let m = DenseMatrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0], vec![100.0]]);
        let start = DenseMatrix::from_rows(&[vec![0.0], vec![0.0], vec![0.0]]);
        let result = KMeans::new(3).fit_from(&m, start);
        let sizes = result.cluster_sizes();
        assert!(sizes.iter().all(|&s| s > 0), "sizes = {sizes:?}");
    }
}
