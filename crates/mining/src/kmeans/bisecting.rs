//! Bisecting K-means: repeatedly split the worst cluster with 2-means.
//!
//! An extension backend for the ADA-HEALTH optimizer: it trades a little
//! quality for a deterministic top-down structure and tends to produce
//! more balanced clusters on long-tailed data.

use ada_vsm::dense::{distance_sq, DenseMatrix};

use super::{KMeans, KMeansResult};

/// Configuration for bisecting K-means.
#[derive(Debug, Clone, PartialEq)]
pub struct Bisecting {
    /// Target number of clusters.
    pub k: usize,
    /// Number of 2-means restarts per split (best SSE wins).
    pub split_trials: usize,
    /// Base configuration used for the inner 2-means runs.
    pub inner: KMeans,
}

impl Bisecting {
    /// Default configuration: 3 split trials, inner k-means++ 2-means.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            split_trials: 3,
            inner: KMeans::new(2),
        }
    }

    /// Sets the RNG seed of the inner 2-means runs.
    pub fn seed(mut self, seed: u64) -> Self {
        self.inner.seed = seed;
        self
    }

    /// Sets the row-level thread budget of the inner 2-means runs
    /// (0 = one per available core; output is identical either way).
    pub fn threads(mut self, threads: usize) -> Self {
        self.inner.threads = threads;
        self
    }

    /// Runs bisecting K-means on the rows of `matrix`.
    ///
    /// # Panics
    /// Panics when `k == 0` or `k` exceeds the number of rows.
    pub fn fit(&self, matrix: &DenseMatrix) -> KMeansResult {
        assert!(self.k > 0, "k must be positive");
        assert!(self.k <= matrix.num_rows(), "k exceeds point count");
        let n = matrix.num_rows();

        // clusters[c] = indices of rows in cluster c.
        let mut clusters: Vec<Vec<usize>> = vec![(0..n).collect()];
        while clusters.len() < self.k {
            // Pick the cluster with the largest SSE contribution that can
            // still be split (≥ 2 points).
            let victim = clusters
                .iter()
                .enumerate()
                .filter(|(_, members)| members.len() >= 2)
                .map(|(c, members)| (c, cluster_sse(matrix, members)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite SSE"))
                .map(|(c, _)| c);
            let Some(victim) = victim else {
                break; // everything is singletons
            };

            let members = clusters[victim].clone();
            let sub = matrix.select_rows(&members);
            let mut best: Option<KMeansResult> = None;
            for trial in 0..self.split_trials.max(1) {
                let mut cfg = self.inner.clone();
                cfg.k = 2;
                cfg.seed = self
                    .inner
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(trial as u64 + clusters.len() as u64 * 1000);
                let result = cfg.fit(&sub);
                if best.as_ref().is_none_or(|b| result.sse < b.sse) {
                    best = Some(result);
                }
            }
            let split = best.expect("at least one trial runs");

            let mut left = Vec::new();
            let mut right = Vec::new();
            for (local, &original) in members.iter().enumerate() {
                if split.assignments[local] == 0 {
                    left.push(original);
                } else {
                    right.push(original);
                }
            }
            // 2-means with k=2 and n>=2 never leaves an empty side thanks
            // to empty-cluster repair, but guard anyway.
            if left.is_empty() || right.is_empty() {
                break;
            }
            clusters[victim] = left;
            clusters.push(right);
        }

        // Materialize assignments and centroids.
        let k = clusters.len();
        let mut assignments = vec![0usize; n];
        for (c, members) in clusters.iter().enumerate() {
            for &i in members {
                assignments[i] = c;
            }
        }
        let centroids = ada_metrics::centroids_of(matrix, &assignments, k);
        let sse = ada_metrics::sse(matrix, &assignments, &centroids);
        KMeansResult {
            assignments,
            centroids,
            sse,
            iterations: k,
            converged: k == self.k,
        }
    }
}

/// SSE of one cluster around its own mean.
fn cluster_sse(matrix: &DenseMatrix, members: &[usize]) -> f64 {
    let dim = matrix.num_cols();
    let mut mean = vec![0.0; dim];
    for &i in members {
        for (m, v) in mean.iter_mut().zip(matrix.row(i)) {
            *m += v;
        }
    }
    let inv = 1.0 / members.len() as f64;
    for m in &mut mean {
        *m *= inv;
    }
    members
        .iter()
        .map(|&i| distance_sq(matrix.row(i), &mean))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::testutil::gaussian_blobs;

    #[test]
    fn reaches_target_k() {
        let m = gaussian_blobs(4, 30, 3, 31);
        let result = Bisecting::new(4).seed(1).fit(&m);
        assert_eq!(result.k(), 4);
        assert!(result.converged);
        assert!(result.cluster_sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn recovers_separated_blobs() {
        let m = gaussian_blobs(3, 40, 2, 32);
        let result = Bisecting::new(3).seed(2).fit(&m);
        for b in 0..3 {
            let first = result.assignments[b * 40];
            assert!(
                result.assignments[b * 40..(b + 1) * 40]
                    .iter()
                    .all(|&a| a == first),
                "blob {b} split"
            );
        }
    }

    #[test]
    fn k_one_is_single_cluster() {
        let m = gaussian_blobs(2, 10, 2, 33);
        let result = Bisecting::new(1).fit(&m);
        assert_eq!(result.k(), 1);
        assert!(result.assignments.iter().all(|&a| a == 0));
    }

    #[test]
    fn caps_at_singletons() {
        let m = DenseMatrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let result = Bisecting::new(3).seed(3).fit(&m);
        assert_eq!(result.k(), 3);
        assert!(result.sse < 1e-9);
    }

    #[test]
    fn deterministic() {
        let m = gaussian_blobs(3, 20, 2, 34);
        let a = Bisecting::new(3).seed(9).fit(&m);
        let b = Bisecting::new(3).seed(9).fit(&m);
        assert_eq!(a, b);
    }
}
