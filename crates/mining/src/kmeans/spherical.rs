//! Spherical K-means: cosine-objective clustering.
//!
//! The paper's interestingness metric (overall similarity) is
//! cosine-based, while classic K-means optimizes squared Euclidean
//! error — a mismatch on un-normalized count vectors. Spherical K-means
//! closes it: points and centroids live on the unit sphere, assignment
//! maximizes the dot product, and the update renormalizes the member
//! sum. On L2-normalized inputs it *directly* maximizes the overall
//! similarity index (cluster cohesion = ‖mean of unit vectors‖², which
//! is exactly what the centroid-norm objective climbs).

use ada_vsm::dense::{dot, DenseMatrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use super::kernel;

/// Spherical K-means configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SphericalKMeans {
    /// Number of clusters.
    pub k: usize,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the objective improvement.
    pub tol: f64,
    /// Seed for centroid initialization.
    pub seed: u64,
    /// Worker threads for the assignment pass (0 = one per core);
    /// chunk-ordered reduction keeps every value byte-identical.
    pub threads: usize,
}

/// The output of a spherical K-means run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SphericalResult {
    /// Cluster index per row.
    pub assignments: Vec<usize>,
    /// Unit-norm centroids (k × dim); zero rows for clusters that ended
    /// empty of non-zero vectors.
    pub centroids: DenseMatrix,
    /// Final objective: mean cosine of each point to its centroid
    /// (zero vectors contribute 0).
    pub mean_cosine: f64,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the run converged before `max_iters`.
    pub converged: bool,
}

impl SphericalKMeans {
    /// A default configuration.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iters: 100,
            tol: 1e-7,
            seed: 0,
            threads: 1,
        }
    }

    /// Sets the seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread budget (builder style).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Clusters the rows of `matrix`. Rows are normalized internally;
    /// all-zero rows are assigned to cluster 0 and excluded from
    /// centroid updates.
    ///
    /// # Panics
    /// Panics when `k` is 0 or exceeds the number of rows.
    pub fn fit(&self, matrix: &DenseMatrix) -> SphericalResult {
        let n = matrix.num_rows();
        let dim = matrix.num_cols();
        assert!(self.k >= 1, "k must be positive");
        assert!(self.k <= n, "k exceeds point count");

        // Unit-normalized working copy.
        let mut unit = matrix.clone();
        unit.normalize_rows();
        let nonzero: Vec<bool> = (0..n)
            .map(|r| unit.row(r).iter().any(|&v| v != 0.0))
            .collect();

        // Init: k distinct non-zero rows (fall back to zeros when the
        // data is degenerate).
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut candidates: Vec<usize> = (0..n).filter(|&r| nonzero[r]).collect();
        candidates.shuffle(&mut rng);
        let mut centroids = DenseMatrix::zeros(self.k, dim);
        for c in 0..self.k {
            if let Some(&row) = candidates.get(c) {
                centroids.row_mut(c).copy_from_slice(unit.row(row));
            }
        }

        let mut assignments = vec![0usize; n];
        let mut last_objective = f64::NEG_INFINITY;
        let mut iterations = 0;
        let mut converged = false;
        let threads = kernel::effective_threads(self.threads, n);
        let k = self.k;
        while iterations < max(1, self.max_iters) {
            // Fused assignment + member-sum pass: each fixed row chunk
            // emits its objective and centroid-sum partials, reduced in
            // chunk order — byte-identical for every thread count.
            let tasks: Vec<(usize, &mut [usize])> = {
                let mut out = Vec::new();
                let mut start = 0;
                for chunk in assignments.chunks_mut(kernel::CHUNK_ROWS) {
                    let len = chunk.len();
                    out.push((start, chunk));
                    start += len;
                }
                out
            };
            let unit_ref = &unit;
            let nonzero_ref = &nonzero;
            let centroids_ref = &centroids;
            let partials = kernel::run_chunks(threads, tasks, |(start, assign)| {
                let mut objective = 0.0;
                let mut sums = vec![0.0; k * dim];
                for (i, slot) in assign.iter_mut().enumerate() {
                    let r = start + i;
                    if !nonzero_ref[r] {
                        *slot = 0;
                        continue;
                    }
                    let row = unit_ref.row(r);
                    let mut best = 0usize;
                    let mut best_dot = f64::NEG_INFINITY;
                    for c in 0..k {
                        let d = dot(row, centroids_ref.row(c));
                        if d > best_dot {
                            best_dot = d;
                            best = c;
                        }
                    }
                    *slot = best;
                    objective += best_dot;
                    let acc = &mut sums[best * dim..(best + 1) * dim];
                    for (a, v) in acc.iter_mut().zip(row) {
                        *a += v;
                    }
                }
                (objective, sums)
            });

            let mut objective = 0.0;
            let mut flat_sums = vec![0.0; k * dim];
            for (obj, sums) in partials {
                objective += obj;
                for (a, v) in flat_sums.iter_mut().zip(&sums) {
                    *a += v;
                }
            }
            objective /= n as f64;

            // Update: renormalized member sums.
            let mut sums = DenseMatrix::from_flat(self.k, dim, flat_sums);
            sums.normalize_rows();
            // Keep previous direction for clusters that lost all members.
            for c in 0..self.k {
                if sums.row(c).iter().all(|&v| v == 0.0) {
                    sums.row_mut(c).copy_from_slice(centroids.row(c));
                }
            }
            centroids = sums;

            iterations += 1;
            if objective - last_objective <= self.tol {
                converged = true;
                last_objective = objective;
                break;
            }
            last_objective = objective;
        }

        SphericalResult {
            assignments,
            centroids,
            mean_cosine: last_objective.max(0.0),
            iterations,
            converged,
        }
    }
}

fn max(a: usize, b: usize) -> usize {
    if a > b {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two directional bundles with different magnitudes.
    fn directional_data() -> DenseMatrix {
        let mut rows = Vec::new();
        for scale in [1.0f64, 5.0, 20.0] {
            rows.push(vec![scale, 0.1 * scale, 0.0]);
            rows.push(vec![0.9 * scale, 0.15 * scale, 0.0]);
            rows.push(vec![0.0, 0.1 * scale, scale]);
            rows.push(vec![0.0, 0.12 * scale, 0.95 * scale]);
        }
        DenseMatrix::from_rows(&rows)
    }

    #[test]
    fn clusters_by_direction_not_magnitude() {
        let m = directional_data();
        let result = SphericalKMeans::new(2).seed(3).fit(&m);
        assert!(result.converged);
        // Rows 0,1,4,5,8,9 point one way; 2,3,6,7,10,11 the other —
        // regardless of their magnitudes.
        let group_a = result.assignments[0];
        for i in [1usize, 4, 5, 8, 9] {
            assert_eq!(result.assignments[i], group_a, "row {i}");
        }
        let group_b = result.assignments[2];
        assert_ne!(group_a, group_b);
        for i in [3usize, 6, 7, 10, 11] {
            assert_eq!(result.assignments[i], group_b, "row {i}");
        }
        assert!(result.mean_cosine > 0.95, "cosine {}", result.mean_cosine);
    }

    #[test]
    fn centroids_are_unit_norm() {
        let m = directional_data();
        let result = SphericalKMeans::new(2).seed(1).fit(&m);
        for c in 0..2 {
            let norm = dot(result.centroids.row(c), result.centroids.row(c)).sqrt();
            assert!((norm - 1.0).abs() < 1e-9, "centroid {c} norm {norm}");
        }
    }

    #[test]
    fn zero_rows_handled() {
        let m = DenseMatrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.9, 0.1],
            vec![0.0, 0.0],
            vec![0.0, 1.0],
        ]);
        let result = SphericalKMeans::new(2).seed(2).fit(&m);
        assert_eq!(result.assignments.len(), 4);
        assert_eq!(result.assignments[2], 0, "zero rows park in cluster 0");
    }

    #[test]
    fn objective_maximizes_overall_similarity_on_unit_data() {
        use ada_metrics::cluster::overall_similarity;
        let mut m = directional_data();
        m.normalize_rows();
        let spherical = SphericalKMeans::new(2).seed(4).fit(&m);
        let sim_spherical = overall_similarity(&m, &spherical.assignments, 2);
        // A deliberately bad partition scores lower.
        let bad: Vec<usize> = (0..m.num_rows()).map(|i| i % 2).collect();
        let sim_bad = overall_similarity(&m, &bad, 2);
        assert!(
            sim_spherical > sim_bad,
            "spherical {sim_spherical} vs alternating {sim_bad}"
        );
    }

    #[test]
    fn deterministic() {
        let m = directional_data();
        let a = SphericalKMeans::new(2).seed(9).fit(&m);
        let b = SphericalKMeans::new(2).seed(9).fit(&m);
        assert_eq!(a, b);
    }

    #[test]
    fn thread_counts_are_byte_identical() {
        // Enough rows to span several reduction chunks.
        let rows: Vec<Vec<f64>> = (0..600)
            .map(|i| {
                let s = 1.0 + (i % 7) as f64;
                if i % 2 == 0 {
                    vec![s, 0.1 * s, 0.0]
                } else {
                    vec![0.0, 0.12 * s, s]
                }
            })
            .collect();
        let m = DenseMatrix::from_rows(&rows);
        let serial = SphericalKMeans::new(3).seed(5).fit(&m);
        for threads in [2, 4, 9] {
            let parallel = SphericalKMeans::new(3).seed(5).threads(threads).fit(&m);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "k exceeds")]
    fn rejects_k_over_n() {
        let m = DenseMatrix::from_rows(&[vec![1.0]]);
        let _ = SphericalKMeans::new(2).fit(&m);
    }
}
