//! Kanungo et al.'s *filtering* K-means (IEEE TPAMI 2002), the paper's
//! reference \[3\].
//!
//! Each iteration walks a kd-tree instead of the point list. A node
//! carries its cell's bounding box and aggregate statistics; the walk
//! maintains the set of *candidate* centroids for the cell and prunes a
//! candidate `z` whenever the cell lies entirely closer to the current
//! best candidate `z*` — the corner test: take the cell corner `v`
//! extremal in the direction `z − z*`; if `z` is no closer to `v` than
//! `z*`, no point of the cell can prefer `z`. When one candidate remains
//! the whole subtree is assigned wholesale and its SSE contribution is
//! computed from the node aggregates:
//!
//! ```text
//! Σᵢ‖xᵢ − z‖² = Σᵢ‖xᵢ‖² − 2·z·Σᵢxᵢ + count·‖z‖²
//! ```
//!
//! Centroid updates are shared with the Lloyd backend, so both walk the
//! same trajectory from the same start.

use ada_vsm::dense::{distance_sq, DenseMatrix};
use ada_vsm::kdtree::{KdTree, NodeId};

use super::kernel;
use super::{update_centroids, KMeansResult};

/// True when candidate `z` is provably no closer than `z_star` for every
/// point of the cell `[lo, hi]` (Kanungo's corner test).
fn is_farther(z: &[f64], z_star: &[f64], lo: &[f64], hi: &[f64]) -> bool {
    // Extreme corner of the cell in the direction z - z_star.
    let mut dz = 0.0; // ||z - v||²
    let mut ds = 0.0; // ||z_star - v||²
    for d in 0..z.len() {
        let v = if z[d] > z_star[d] { hi[d] } else { lo[d] };
        let a = z[d] - v;
        let b = z_star[d] - v;
        dz += a * a;
        ds += b * b;
    }
    dz >= ds
}

/// One filtering pass: fills `assignments` and returns the SSE under the
/// *current* centroids.
pub(crate) fn assign(tree: &KdTree, centroids: &DenseMatrix, assignments: &mut [usize]) -> f64 {
    let k = centroids.num_rows();
    let all: Vec<usize> = (0..k).collect();
    let mut sse = 0.0;
    filter_node(tree, tree.root(), centroids, &all, assignments, &mut sse);
    sse
}

fn filter_node(
    tree: &KdTree,
    node: NodeId,
    centroids: &DenseMatrix,
    candidates: &[usize],
    assignments: &mut [usize],
    sse: &mut f64,
) {
    let (lo, hi) = tree.bbox(node);
    let dim = tree.dim();

    // z*: candidate closest to the cell midpoint (ties → lowest index,
    // matching Lloyd's tie-break).
    let midpoint: Vec<f64> = (0..dim).map(|d| (lo[d] + hi[d]) / 2.0).collect();
    let mut z_star = candidates[0];
    let mut best_d = distance_sq(&midpoint, centroids.row(z_star));
    for &c in &candidates[1..] {
        let d = distance_sq(&midpoint, centroids.row(c));
        if d < best_d {
            best_d = d;
            z_star = c;
        }
    }

    // Prune candidates whose entire cell prefers z*.
    let survivors: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&c| c == z_star || !is_farther(centroids.row(c), centroids.row(z_star), lo, hi))
        .collect();

    if survivors.len() == 1 {
        // Wholesale assignment of the subtree to z*.
        let z = centroids.row(z_star);
        for &p in tree.points_in(node) {
            assignments[p] = z_star;
        }
        let sum = tree.sum(node);
        let mut cross = 0.0;
        let mut z_norm_sq = 0.0;
        for d in 0..dim {
            cross += z[d] * sum[d];
            z_norm_sq += z[d] * z[d];
        }
        *sse += tree.sum_sq(node) - 2.0 * cross + tree.count(node) as f64 * z_norm_sq;
        return;
    }

    match tree.children(node) {
        Some((l, r)) => {
            filter_node(tree, l, centroids, &survivors, assignments, sse);
            filter_node(tree, r, centroids, &survivors, assignments, sse);
        }
        None => {
            // Leaf with several surviving candidates: per-point scan,
            // identical to Lloyd over the survivor set.
            for &p in tree.points_in(node) {
                let point = tree.point(p);
                let mut best = survivors[0];
                let mut best_d = distance_sq(point, centroids.row(best));
                for &c in &survivors[1..] {
                    let d = distance_sq(point, centroids.row(c));
                    if d < best_d || (d == best_d && c < best) {
                        best_d = d;
                        best = c;
                    }
                }
                assignments[p] = best;
                *sse += best_d;
            }
        }
    }
}

/// Runs filtering K-means from the given initial centroids.
///
/// The tree walk itself is serial (its pruning is per-cell, not
/// per-row); `threads` drives the kernel's chunked final SSE pass.
/// When the loop settles with zero centroid movement the last in-loop
/// assignment is already the argmin of the final centroids and no
/// extra tree walk runs.
pub(crate) fn run(
    matrix: &DenseMatrix,
    mut centroids: DenseMatrix,
    max_iters: usize,
    tol: f64,
    threads: usize,
) -> KMeansResult {
    let tree = KdTree::build(matrix);
    let mut assignments = vec![0usize; matrix.num_rows()];
    let mut converged = false;
    let mut iterations = 0;
    let mut zero_movement = false;
    while iterations < max_iters {
        assign(&tree, &centroids, &mut assignments);
        let movement = update_centroids(matrix, &mut assignments, &mut centroids);
        iterations += 1;
        if movement <= tol {
            converged = true;
            zero_movement = movement == 0.0;
            break;
        }
    }
    if !(converged && zero_movement) {
        assign(&tree, &centroids, &mut assignments);
    }
    let threads = kernel::effective_threads(threads, matrix.num_rows());
    let sse = kernel::sse_pass(matrix, &centroids, &assignments, threads);
    KMeansResult {
        assignments,
        centroids,
        sse,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::testutil::gaussian_blobs;
    use crate::kmeans::{init, KMeansInit};

    #[test]
    fn corner_test_prunes_dominated_candidate() {
        // Cell [0,1]², z* at the origin-side, z far on the other side.
        let lo = [0.0, 0.0];
        let hi = [1.0, 1.0];
        let z_star = [0.5, 0.5];
        let z = [10.0, 10.0];
        assert!(is_farther(&z, &z_star, &lo, &hi));
        // A candidate inside the cell is never prunable.
        let close = [0.9, 0.9];
        assert!(!is_farther(&close, &z_star, &lo, &hi));
    }

    #[test]
    fn assign_matches_lloyd_exactly() {
        let m = gaussian_blobs(4, 50, 3, 21);
        let centroids = init::initial_centroids(&m, 4, KMeansInit::Forgy, 5);
        let tree = KdTree::build(&m);
        let mut a_filter = vec![0usize; m.num_rows()];
        let mut a_lloyd = vec![0usize; m.num_rows()];
        let sse_f = assign(&tree, &centroids, &mut a_filter);
        let sse_l = crate::kmeans::lloyd::assign(&m, &centroids, &mut a_lloyd);
        assert_eq!(a_filter, a_lloyd);
        assert!((sse_f - sse_l).abs() < 1e-6 * (1.0 + sse_l));
    }

    #[test]
    fn assign_matches_lloyd_on_adversarial_centroids() {
        // Centroids stacked closely so pruning is hard.
        let m = gaussian_blobs(2, 60, 2, 22);
        let centroids = DenseMatrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![10.0, 0.0],
        ]);
        let tree = KdTree::build_with_leaf_size(&m, 4);
        let mut a_filter = vec![0usize; m.num_rows()];
        let mut a_lloyd = vec![0usize; m.num_rows()];
        assign(&tree, &centroids, &mut a_filter);
        crate::kmeans::lloyd::assign(&m, &centroids, &mut a_lloyd);
        assert_eq!(a_filter, a_lloyd);
    }

    #[test]
    fn full_run_recovers_blobs() {
        let m = gaussian_blobs(3, 40, 4, 23);
        let start = init::initial_centroids(&m, 3, KMeansInit::KMeansPlusPlus, 1);
        let result = run(&m, start, 100, 1e-9, 1);
        assert!(result.converged);
        for b in 0..3 {
            let first = result.assignments[b * 40];
            assert!(result.assignments[b * 40..(b + 1) * 40]
                .iter()
                .all(|&a| a == first));
        }
    }
}
