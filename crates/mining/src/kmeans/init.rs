//! Centroid initialization strategies.

use ada_vsm::dense::{distance_sq, DenseMatrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How the initial centroids are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KMeansInit {
    /// Forgy: k distinct points picked uniformly at random.
    Forgy,
    /// Random partition: every point gets a random label; centroids are
    /// the partition means.
    RandomPartition,
    /// k-means++: points picked with probability proportional to squared
    /// distance from the nearest already-chosen centroid.
    KMeansPlusPlus,
}

/// Produces `k` initial centroids from the rows of `matrix`.
///
/// # Panics
/// Panics when `k == 0` or `k > matrix.num_rows()`.
pub fn initial_centroids(
    matrix: &DenseMatrix,
    k: usize,
    method: KMeansInit,
    seed: u64,
) -> DenseMatrix {
    assert!(k > 0 && k <= matrix.num_rows(), "invalid k");
    let mut rng = StdRng::seed_from_u64(seed);
    match method {
        KMeansInit::Forgy => forgy(matrix, k, &mut rng),
        KMeansInit::RandomPartition => random_partition(matrix, k, &mut rng),
        KMeansInit::KMeansPlusPlus => kmeans_plus_plus(matrix, k, &mut rng),
    }
}

fn forgy(matrix: &DenseMatrix, k: usize, rng: &mut StdRng) -> DenseMatrix {
    let mut indices: Vec<usize> = (0..matrix.num_rows()).collect();
    indices.shuffle(rng);
    indices.truncate(k);
    matrix.select_rows(&indices)
}

#[allow(clippy::needless_range_loop)] // lockstep multi-array indexing
fn random_partition(matrix: &DenseMatrix, k: usize, rng: &mut StdRng) -> DenseMatrix {
    let n = matrix.num_rows();
    let dim = matrix.num_cols();
    // Guarantee every cluster at least one member by dealing the first k
    // points to distinct clusters, then assigning the rest at random.
    let mut labels: Vec<usize> = (0..n)
        .map(|i| if i < k { i } else { rng.gen_range(0..k) })
        .collect();
    labels.shuffle(rng);
    let mut sums = DenseMatrix::zeros(k, dim);
    let mut counts = vec![0usize; k];
    for (i, &c) in labels.iter().enumerate() {
        counts[c] += 1;
        let row = matrix.row(i);
        let acc = sums.row_mut(c);
        for d in 0..dim {
            acc[d] += row[d];
        }
    }
    for c in 0..k {
        let inv = 1.0 / counts[c].max(1) as f64;
        for v in sums.row_mut(c) {
            *v *= inv;
        }
    }
    sums
}

#[allow(clippy::needless_range_loop)] // lockstep multi-array indexing
fn kmeans_plus_plus(matrix: &DenseMatrix, k: usize, rng: &mut StdRng) -> DenseMatrix {
    let n = matrix.num_rows();
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    chosen.push(rng.gen_range(0..n));
    let mut best_dist: Vec<f64> = (0..n)
        .map(|i| distance_sq(matrix.row(i), matrix.row(chosen[0])))
        .collect();
    while chosen.len() < k {
        let total: f64 = best_dist.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with a centroid: fall back to
            // an arbitrary unchosen index to keep centroids distinct rows.
            (0..n).find(|i| !chosen.contains(i)).unwrap_or(0)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut pick = n - 1;
            for (i, &d) in best_dist.iter().enumerate() {
                if target < d {
                    pick = i;
                    break;
                }
                target -= d;
            }
            pick
        };
        chosen.push(next);
        for i in 0..n {
            let d = distance_sq(matrix.row(i), matrix.row(next));
            if d < best_dist[i] {
                best_dist[i] = d;
            }
        }
    }
    matrix.select_rows(&chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::testutil::gaussian_blobs;

    #[test]
    fn forgy_picks_distinct_points() {
        let m = gaussian_blobs(3, 10, 2, 1);
        let c = initial_centroids(&m, 5, KMeansInit::Forgy, 2);
        assert_eq!(c.num_rows(), 5);
        // Each centroid must be an actual data row.
        for i in 0..5 {
            assert!(
                (0..m.num_rows()).any(|r| m.row(r) == c.row(i)),
                "centroid {i} is not a data point"
            );
        }
    }

    #[test]
    fn random_partition_centroids_near_global_mean() {
        let m = gaussian_blobs(2, 50, 2, 3);
        let c = initial_centroids(&m, 3, KMeansInit::RandomPartition, 4);
        let means = m.col_means();
        for i in 0..3 {
            // Random-partition centroids hug the global mean.
            let d = distance_sq(c.row(i), &means).sqrt();
            assert!(d < 10.0, "centroid {i} too far: {d}");
        }
    }

    #[test]
    fn plus_plus_spreads_centroids() {
        let m = gaussian_blobs(4, 25, 3, 5);
        let c = initial_centroids(&m, 4, KMeansInit::KMeansPlusPlus, 6);
        // With 4 well-separated blobs, k-means++ almost surely places the
        // 4 seeds in distinct blobs -> pairwise distances are large.
        for i in 0..4 {
            for j in (i + 1)..4 {
                let d = distance_sq(c.row(i), c.row(j));
                assert!(d > 1.0, "centroids {i},{j} too close: {d}");
            }
        }
    }

    #[test]
    fn plus_plus_handles_duplicate_points() {
        let m = DenseMatrix::from_rows(&vec![vec![1.0, 1.0]; 5]);
        let c = initial_centroids(&m, 3, KMeansInit::KMeansPlusPlus, 7);
        assert_eq!(c.num_rows(), 3);
        for i in 0..3 {
            assert_eq!(c.row(i), &[1.0, 1.0]);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let m = gaussian_blobs(3, 20, 2, 8);
        for method in [
            KMeansInit::Forgy,
            KMeansInit::RandomPartition,
            KMeansInit::KMeansPlusPlus,
        ] {
            let a = initial_centroids(&m, 3, method, 42);
            let b = initial_centroids(&m, 3, method, 42);
            assert_eq!(a, b, "{method:?}");
        }
    }
}
