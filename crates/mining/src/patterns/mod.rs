//! Frequent-pattern discovery: shared types and helpers.
//!
//! The paper's second exploratory family — "a frequent pattern
//! discovering approach can be exploited" for finding examinations
//! commonly prescribed together — is implemented here as two miners over
//! the same transaction model ([`apriori`] as the classical baseline,
//! [`fpgrowth`] as the efficient default; the test suite checks they
//! produce identical outputs), plus association-rule generation
//! ([`rules`]) and a MeTA-style multi-level miner over the exam taxonomy
//! ([`taxonomy_mine`]).

pub mod apriori;
pub mod condense;
pub mod fpgrowth;
pub mod rules;
pub mod taxonomy_mine;

use serde::{Deserialize, Serialize};

/// An item (exam-type id, or a generalized taxonomy node id in
/// multi-level mining).
pub type Item = u32;

/// A sorted, duplicate-free set of items.
pub type Itemset = Vec<Item>;

/// One transaction: the sorted, duplicate-free items of one basket (a
/// patient's distinct exams, or one visit's exams).
pub type Transaction = Vec<Item>;

/// A frequent itemset together with its absolute support count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrequentItemset {
    /// The sorted items.
    pub items: Itemset,
    /// Number of transactions containing all of `items`.
    pub support: usize,
}

impl FrequentItemset {
    /// Relative support given the transaction count.
    pub fn relative_support(&self, num_transactions: usize) -> f64 {
        if num_transactions == 0 {
            0.0
        } else {
            self.support as f64 / num_transactions as f64
        }
    }
}

/// Normalizes a basket into a [`Transaction`]: sorted and deduplicated.
pub fn normalize_transaction(items: impl IntoIterator<Item = Item>) -> Transaction {
    let mut t: Vec<Item> = items.into_iter().collect();
    t.sort_unstable();
    t.dedup();
    t
}

/// True when sorted `needle` is a subset of sorted `haystack`
/// (merge-join containment).
pub fn is_subset(needle: &[Item], haystack: &[Item]) -> bool {
    let mut h = haystack.iter();
    'outer: for n in needle {
        for x in h.by_ref() {
            match x.cmp(n) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Converts a relative minimum support in (0, 1] to an absolute count
/// (at least 1).
pub fn relative_min_support(num_transactions: usize, fraction: f64) -> usize {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "relative support must be in (0, 1]"
    );
    ((num_transactions as f64 * fraction).ceil() as usize).max(1)
}

/// Canonical ordering for miner outputs (by length, then lexicographic),
/// so different miners can be compared directly.
pub fn sort_itemsets(itemsets: &mut [FrequentItemset]) {
    itemsets.sort_by(|a, b| {
        a.items
            .len()
            .cmp(&b.items.len())
            .then_with(|| a.items.cmp(&b.items))
    });
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// The classic textbook transaction set used across miner tests.
    pub fn market_basket() -> Vec<Transaction> {
        vec![
            normalize_transaction([1, 2, 5]),
            normalize_transaction([2, 4]),
            normalize_transaction([2, 3]),
            normalize_transaction([1, 2, 4]),
            normalize_transaction([1, 3]),
            normalize_transaction([2, 3]),
            normalize_transaction([1, 3]),
            normalize_transaction([1, 2, 3, 5]),
            normalize_transaction([1, 2, 3]),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_sorts_and_dedupes() {
        assert_eq!(normalize_transaction([3, 1, 3, 2, 1]), vec![1, 2, 3]);
        assert_eq!(normalize_transaction([]), Vec::<Item>::new());
    }

    #[test]
    fn subset_checks() {
        assert!(is_subset(&[1, 3], &[1, 2, 3, 4]));
        assert!(is_subset(&[], &[1]));
        assert!(is_subset(&[], &[]));
        assert!(!is_subset(&[1, 5], &[1, 2, 3, 4]));
        assert!(!is_subset(&[0], &[1, 2]));
        assert!(!is_subset(&[1], &[]));
    }

    #[test]
    fn relative_support_conversion() {
        assert_eq!(relative_min_support(100, 0.05), 5);
        assert_eq!(relative_min_support(100, 0.041), 5);
        assert_eq!(relative_min_support(10, 0.001), 1);
        assert_eq!(relative_min_support(0, 0.5), 1);
    }

    #[test]
    #[should_panic(expected = "relative support")]
    fn relative_support_rejects_zero() {
        let _ = relative_min_support(10, 0.0);
    }

    #[test]
    fn itemset_ordering_is_canonical() {
        let mut sets = vec![
            FrequentItemset {
                items: vec![2, 3],
                support: 1,
            },
            FrequentItemset {
                items: vec![9],
                support: 2,
            },
            FrequentItemset {
                items: vec![1, 2],
                support: 3,
            },
        ];
        sort_itemsets(&mut sets);
        assert_eq!(sets[0].items, vec![9]);
        assert_eq!(sets[1].items, vec![1, 2]);
        assert_eq!(sets[2].items, vec![2, 3]);
    }

    #[test]
    fn relative_support_of_itemset() {
        let f = FrequentItemset {
            items: vec![1],
            support: 3,
        };
        assert!((f.relative_support(12) - 0.25).abs() < 1e-12);
        assert_eq!(f.relative_support(0), 0.0);
    }
}
