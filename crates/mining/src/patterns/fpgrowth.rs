//! FP-growth frequent-itemset mining (Han, Pei & Yin, SIGMOD 2000).
//!
//! The production miner: builds a compressed prefix tree (FP-tree) of the
//! transactions, then recursively mines conditional trees, never
//! generating candidates. Output is identical to [`super::apriori`]
//! (checked by tests and a cross-miner property test) but typically an
//! order of magnitude faster at low support thresholds — see the
//! `patterns` Criterion bench.

use std::collections::HashMap;

use super::{sort_itemsets, FrequentItemset, Item, Itemset, Transaction};

/// One FP-tree node.
#[derive(Debug, Clone)]
struct Node {
    item: Item,
    count: usize,
    parent: usize,
    /// Child nodes keyed by item. Transactions are short (tens of items),
    /// so a sorted Vec outperforms a HashMap here.
    children: Vec<(Item, usize)>,
}

/// An FP-tree with its header table (item → node list).
struct FpTree {
    nodes: Vec<Node>,
    header: HashMap<Item, Vec<usize>>,
}

const ROOT: usize = 0;

impl FpTree {
    fn new() -> Self {
        Self {
            nodes: vec![Node {
                item: Item::MAX,
                count: 0,
                parent: ROOT,
                children: Vec::new(),
            }],
            header: HashMap::new(),
        }
    }

    /// Inserts an ordered item path with the given count.
    fn insert(&mut self, path: &[Item], count: usize) {
        let mut cur = ROOT;
        for &item in path {
            let next = match self.nodes[cur]
                .children
                .binary_search_by_key(&item, |&(i, _)| i)
            {
                Ok(pos) => self.nodes[cur].children[pos].1,
                Err(pos) => {
                    let id = self.nodes.len();
                    self.nodes.push(Node {
                        item,
                        count: 0,
                        parent: cur,
                        children: Vec::new(),
                    });
                    self.nodes[cur].children.insert(pos, (item, id));
                    self.header.entry(item).or_default().push(id);
                    id
                }
            };
            self.nodes[next].count += count;
            cur = next;
        }
    }

    /// The (path-to-root items, count) pairs ending at each node of
    /// `item` — the conditional pattern base.
    fn conditional_base(&self, item: Item) -> Vec<(Vec<Item>, usize)> {
        let mut base = Vec::new();
        if let Some(nodes) = self.header.get(&item) {
            for &id in nodes {
                let count = self.nodes[id].count;
                let mut path = Vec::new();
                let mut cur = self.nodes[id].parent;
                while cur != ROOT {
                    path.push(self.nodes[cur].item);
                    cur = self.nodes[cur].parent;
                }
                path.reverse();
                if !path.is_empty() {
                    base.push((path, count));
                }
            }
        }
        base
    }

    /// Support of `item` in this (conditional) tree.
    fn item_support(&self, item: Item) -> usize {
        self.header
            .get(&item)
            .map(|nodes| nodes.iter().map(|&id| self.nodes[id].count).sum())
            .unwrap_or(0)
    }

    /// Items present in the tree, ordered ascending by support then item
    /// (the bottom-up mining order).
    fn items_bottom_up(&self) -> Vec<Item> {
        let mut items: Vec<Item> = self.header.keys().copied().collect();
        items.sort_unstable_by_key(|&i| (self.item_support(i), i));
        items
    }
}

/// Builds an FP-tree from weighted transactions, keeping only items with
/// support ≥ `min_support` and ordering each transaction by descending
/// global support (ties by item id, the canonical FP-growth ordering).
fn build_tree(weighted: &[(Vec<Item>, usize)], min_support: usize) -> FpTree {
    let mut counts: HashMap<Item, usize> = HashMap::new();
    for (t, w) in weighted {
        for &item in t {
            *counts.entry(item).or_insert(0) += w;
        }
    }
    let mut tree = FpTree::new();
    for (t, w) in weighted {
        let mut kept: Vec<Item> = t
            .iter()
            .copied()
            .filter(|i| counts[i] >= min_support)
            .collect();
        kept.sort_unstable_by(|a, b| counts[b].cmp(&counts[a]).then(a.cmp(b)));
        if !kept.is_empty() {
            tree.insert(&kept, *w);
        }
    }
    tree
}

fn mine_tree(tree: &FpTree, suffix: &Itemset, min_support: usize, out: &mut Vec<FrequentItemset>) {
    for item in tree.items_bottom_up() {
        let support = tree.item_support(item);
        if support < min_support {
            continue;
        }
        let mut items: Itemset = suffix.clone();
        items.push(item);
        items.sort_unstable();
        out.push(FrequentItemset {
            items: items.clone(),
            support,
        });

        let base = tree.conditional_base(item);
        if !base.is_empty() {
            let conditional = build_tree(&base, min_support);
            if !conditional.header.is_empty() {
                mine_tree(&conditional, &items, min_support, out);
            }
        }
    }
}

/// Mines all itemsets with absolute support ≥ `min_support`.
///
/// Output is in canonical order (length, then lexicographic) and is
/// byte-identical to [`super::apriori::mine`].
///
/// ```
/// use ada_mining::patterns::fpgrowth;
///
/// let visits = vec![vec![1, 2], vec![1, 2, 3], vec![1, 3]];
/// let frequent = fpgrowth::mine(&visits, 2);
/// assert!(frequent.iter().any(|f| f.items == vec![1, 2] && f.support == 2));
/// ```
///
/// # Panics
/// Panics when `min_support == 0`.
pub fn mine(transactions: &[Transaction], min_support: usize) -> Vec<FrequentItemset> {
    assert!(min_support >= 1, "min_support must be at least 1");
    let weighted: Vec<(Vec<Item>, usize)> = transactions.iter().map(|t| (t.clone(), 1)).collect();
    let tree = build_tree(&weighted, min_support);
    let mut out = Vec::new();
    mine_tree(&tree, &Vec::new(), min_support, &mut out);
    sort_itemsets(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::{apriori, testutil::market_basket};

    #[test]
    fn matches_apriori_on_textbook_example() {
        let t = market_basket();
        for min_support in 1..=5 {
            let a = apriori::mine(&t, min_support);
            let f = mine(&t, min_support);
            assert_eq!(a, f, "min_support = {min_support}");
        }
    }

    #[test]
    fn known_supports() {
        let t = market_basket();
        let result = mine(&t, 2);
        let find = |items: &[Item]| result.iter().find(|f| f.items == items).map(|f| f.support);
        assert_eq!(find(&[2]), Some(7));
        assert_eq!(find(&[1, 2, 5]), Some(2));
        assert_eq!(find(&[3, 5]), None);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert!(mine(&[], 1).is_empty());
        assert!(mine(&[vec![]], 1).is_empty());
        let single = vec![vec![7u32]];
        let result = mine(&single, 1);
        assert_eq!(result.len(), 1);
        assert_eq!(result[0].items, vec![7]);
        assert_eq!(result[0].support, 1);
    }

    #[test]
    fn identical_transactions_compress_into_one_path() {
        let t = vec![vec![1, 2, 3]; 50];
        let tree = build_tree(&t.iter().map(|x| (x.clone(), 1)).collect::<Vec<_>>(), 1);
        // Root + 3 nodes: the tree is a single path.
        assert_eq!(tree.nodes.len(), 4);
        let result = mine(&t, 25);
        // All 7 non-empty subsets of {1,2,3} have support 50.
        assert_eq!(result.len(), 7);
        assert!(result.iter().all(|f| f.support == 50));
    }

    #[test]
    fn respects_min_support() {
        let t = vec![vec![1, 2], vec![1, 2], vec![1, 3]];
        let result = mine(&t, 2);
        let sets: Vec<&[Item]> = result.iter().map(|f| f.items.as_slice()).collect();
        assert_eq!(sets, vec![&[1][..], &[2][..], &[1, 2][..]]);
    }

    #[test]
    #[should_panic(expected = "min_support")]
    fn rejects_zero_support() {
        let _ = mine(&[], 0);
    }
}
