//! Apriori frequent-itemset mining (Agrawal & Srikant, VLDB 1994).
//!
//! The level-wise baseline: generate candidate (k+1)-itemsets by joining
//! frequent k-itemsets, prune candidates with an infrequent subset, then
//! count supports with one pass over the transactions. Kept as the
//! reference implementation the FP-growth miner is validated against,
//! and as the slow side of the `patterns` benchmark.

use std::collections::HashMap;

use super::{is_subset, sort_itemsets, FrequentItemset, Item, Itemset, Transaction};

/// Mines all itemsets with absolute support ≥ `min_support`.
///
/// Output is in canonical order (length, then lexicographic).
///
/// # Panics
/// Panics when `min_support == 0` (every subset of every transaction
/// would qualify).
pub fn mine(transactions: &[Transaction], min_support: usize) -> Vec<FrequentItemset> {
    assert!(min_support >= 1, "min_support must be at least 1");

    // L1: frequent single items.
    let mut item_counts: HashMap<Item, usize> = HashMap::new();
    for t in transactions {
        for &item in t {
            *item_counts.entry(item).or_insert(0) += 1;
        }
    }
    let mut frequent: Vec<FrequentItemset> = item_counts
        .into_iter()
        .filter(|&(_, c)| c >= min_support)
        .map(|(item, support)| FrequentItemset {
            items: vec![item],
            support,
        })
        .collect();
    sort_itemsets(&mut frequent);

    let mut result = frequent.clone();
    let mut current: Vec<Itemset> = frequent.into_iter().map(|f| f.items).collect();

    while !current.is_empty() {
        let candidates = generate_candidates(&current);
        if candidates.is_empty() {
            break;
        }
        // Count supports in one transaction pass.
        let mut counts = vec![0usize; candidates.len()];
        for t in transactions {
            for (ci, c) in candidates.iter().enumerate() {
                if c.len() <= t.len() && is_subset(c, t) {
                    counts[ci] += 1;
                }
            }
        }
        let mut next_level: Vec<FrequentItemset> = candidates
            .into_iter()
            .zip(counts)
            .filter(|&(_, c)| c >= min_support)
            .map(|(items, support)| FrequentItemset { items, support })
            .collect();
        sort_itemsets(&mut next_level);
        current = next_level.iter().map(|f| f.items.clone()).collect();
        result.extend(next_level);
    }

    sort_itemsets(&mut result);
    result
}

/// Joins frequent k-itemsets sharing a (k−1)-prefix and prunes candidates
/// with an infrequent k-subset.
fn generate_candidates(frequent: &[Itemset]) -> Vec<Itemset> {
    use std::collections::HashSet;
    let lookup: HashSet<&Itemset> = frequent.iter().collect();
    let mut candidates = Vec::new();
    for i in 0..frequent.len() {
        for j in (i + 1)..frequent.len() {
            let a = &frequent[i];
            let b = &frequent[j];
            let k = a.len();
            // Join condition: identical prefix, differing last item.
            if a[..k - 1] != b[..k - 1] {
                continue;
            }
            let mut candidate = a.clone();
            candidate.push(b[k - 1]);
            candidate.sort_unstable();
            // Apriori prune: every k-subset must be frequent.
            let all_subsets_frequent = (0..candidate.len()).all(|skip| {
                let subset: Itemset = candidate
                    .iter()
                    .enumerate()
                    .filter(|&(idx, _)| idx != skip)
                    .map(|(_, &v)| v)
                    .collect();
                lookup.contains(&subset)
            });
            if all_subsets_frequent {
                candidates.push(candidate);
            }
        }
    }
    candidates.sort_unstable();
    candidates.dedup();
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::testutil::market_basket;

    #[test]
    fn textbook_example() {
        let t = market_basket();
        let result = mine(&t, 2);
        let find = |items: &[Item]| result.iter().find(|f| f.items == items).map(|f| f.support);
        // Hand-checked supports on the 9-transaction basket.
        assert_eq!(find(&[1]), Some(6));
        assert_eq!(find(&[2]), Some(7));
        assert_eq!(find(&[3]), Some(6));
        assert_eq!(find(&[4]), Some(2));
        assert_eq!(find(&[5]), Some(2));
        assert_eq!(find(&[1, 2]), Some(4));
        assert_eq!(find(&[1, 3]), Some(4));
        assert_eq!(find(&[2, 3]), Some(4));
        assert_eq!(find(&[1, 2, 3]), Some(2));
        assert_eq!(find(&[1, 2, 5]), Some(2));
        // Infrequent pairs absent.
        assert_eq!(find(&[3, 4]), None);
        assert_eq!(find(&[4, 5]), None);
    }

    #[test]
    fn min_support_one_enumerates_everything_in_small_case() {
        let t = vec![vec![1, 2], vec![1]];
        let result = mine(&t, 1);
        let sets: Vec<&[Item]> = result.iter().map(|f| f.items.as_slice()).collect();
        assert_eq!(sets, vec![&[1][..], &[2][..], &[1, 2][..]]);
    }

    #[test]
    fn high_support_returns_nothing() {
        let t = market_basket();
        assert!(mine(&t, 100).is_empty());
    }

    #[test]
    fn empty_transactions() {
        assert!(mine(&[], 1).is_empty());
        let t = vec![vec![], vec![]];
        assert!(mine(&t, 1).is_empty());
    }

    #[test]
    fn downward_closure_holds() {
        let t = market_basket();
        let result = mine(&t, 2);
        use std::collections::HashMap;
        let support: HashMap<&Itemset, usize> =
            result.iter().map(|f| (&f.items, f.support)).collect();
        for f in &result {
            if f.items.len() < 2 {
                continue;
            }
            for skip in 0..f.items.len() {
                let subset: Itemset = f
                    .items
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != skip)
                    .map(|(_, &v)| v)
                    .collect();
                let sub_support = *support.get(&subset).expect("subset must be frequent");
                assert!(sub_support >= f.support, "monotonicity violated");
            }
        }
    }

    #[test]
    #[should_panic(expected = "min_support")]
    fn rejects_zero_support() {
        let _ = mine(&[], 0);
    }
}
