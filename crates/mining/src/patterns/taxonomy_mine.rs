//! Multi-level (taxonomy-aware) frequent-pattern mining.
//!
//! The paper's pattern component builds on MeTA ("Characterization of
//! Medical Treatments at Different Abstraction Levels", ACM TIST 2015):
//! when leaf-level exams are too rare to clear the support threshold,
//! patterns should still surface at the condition-group or clinical-
//! domain level. Following Srikant & Agrawal's generalized-rule
//! technique, every transaction is *extended* with the ancestors of its
//! items and mined with FP-growth; itemsets that pair an item with its
//! own ancestor (trivially implied) are pruned.

use serde::{Deserialize, Serialize};

use super::{fpgrowth, normalize_transaction, FrequentItemset, Item, Transaction};

/// An item hierarchy: `parent[i]` is the parent of item `i`, or `None`
/// at a root. Item ids must cover leaves and internal nodes in one dense
/// space (e.g. exams `0..159`, condition groups `159..169`, domains
/// `169..173`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ItemHierarchy {
    parent: Vec<Option<Item>>,
}

impl ItemHierarchy {
    /// Creates a hierarchy from the parent map.
    ///
    /// # Panics
    /// Panics when a parent id is out of range or the map contains a
    /// cycle.
    pub fn new(parent: Vec<Option<Item>>) -> Self {
        let n = parent.len();
        for (i, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                assert!((*p as usize) < n, "parent {p} of {i} out of range");
            }
        }
        let h = Self { parent };
        // Cycle check: walking up from any node must terminate.
        for i in 0..n {
            let mut steps = 0;
            let mut cur = Some(i as Item);
            while let Some(c) = cur {
                cur = h.parent_of(c);
                steps += 1;
                assert!(steps <= n, "cycle detected at item {i}");
            }
        }
        h
    }

    /// Number of items (leaves + internal nodes).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the hierarchy is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The parent of `item`, or `None` at a root.
    pub fn parent_of(&self, item: Item) -> Option<Item> {
        self.parent.get(item as usize).copied().flatten()
    }

    /// All strict ancestors of `item`, nearest first.
    pub fn ancestors_of(&self, item: Item) -> Vec<Item> {
        let mut out = Vec::new();
        let mut cur = self.parent_of(item);
        while let Some(c) = cur {
            out.push(c);
            cur = self.parent_of(c);
        }
        out
    }

    /// True when `ancestor` is a strict ancestor of `item`.
    pub fn is_ancestor(&self, ancestor: Item, item: Item) -> bool {
        self.ancestors_of(item).contains(&ancestor)
    }

    /// Extends a transaction with the ancestors of every item.
    pub fn extend_transaction(&self, t: &Transaction) -> Transaction {
        let mut items: Vec<Item> = t.clone();
        for &item in t {
            items.extend(self.ancestors_of(item));
        }
        normalize_transaction(items)
    }
}

/// Mines multi-level frequent itemsets: transactions are extended with
/// ancestors, mined at `min_support`, and itemsets mixing an item with
/// its own ancestor are pruned.
///
/// The result therefore contains patterns at *every* abstraction level
/// (pure-leaf, pure-group, and mixed-level as long as no containment
/// relation links the members), in canonical order.
pub fn mine(
    transactions: &[Transaction],
    hierarchy: &ItemHierarchy,
    min_support: usize,
) -> Vec<FrequentItemset> {
    let extended: Vec<Transaction> = transactions
        .iter()
        .map(|t| hierarchy.extend_transaction(t))
        .collect();
    let mut frequent = fpgrowth::mine(&extended, min_support);
    frequent.retain(|f| {
        // Drop itemsets containing both an item and one of its ancestors:
        // their support equals the descendant-only itemset's support.
        !f.items.iter().any(|&a| {
            f.items
                .iter()
                .any(|&b| a != b && hierarchy.is_ancestor(a, b))
        })
    });
    frequent
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Leaves 0..4, groups 4..6, root 6:
    /// 0,1 -> 4; 2,3 -> 5; 4,5 -> 6.
    fn toy_hierarchy() -> ItemHierarchy {
        ItemHierarchy::new(vec![
            Some(4),
            Some(4),
            Some(5),
            Some(5),
            Some(6),
            Some(6),
            None,
        ])
    }

    #[test]
    fn ancestor_queries() {
        let h = toy_hierarchy();
        assert_eq!(h.ancestors_of(0), vec![4, 6]);
        assert_eq!(h.ancestors_of(6), Vec::<Item>::new());
        assert!(h.is_ancestor(6, 2));
        assert!(h.is_ancestor(4, 1));
        assert!(!h.is_ancestor(5, 0));
        assert!(!h.is_ancestor(0, 0));
        assert_eq!(h.len(), 7);
    }

    #[test]
    fn extend_adds_all_ancestors() {
        let h = toy_hierarchy();
        assert_eq!(h.extend_transaction(&vec![0, 2]), vec![0, 2, 4, 5, 6]);
        assert_eq!(h.extend_transaction(&vec![]), Vec::<Item>::new());
    }

    #[test]
    fn generalization_lifts_rare_leaves_above_threshold() {
        let h = toy_hierarchy();
        // Leaves 0 and 1 each appear twice — below min_support 3 — but
        // their group 4 appears in all four transactions.
        let t = vec![vec![0], vec![0], vec![1], vec![1]];
        let result = mine(&t, &h, 3);
        let sets: Vec<&[Item]> = result.iter().map(|f| f.items.as_slice()).collect();
        assert!(sets.contains(&&[4][..]), "group-level pattern missing");
        assert!(sets.contains(&&[6][..]));
        assert!(
            !sets.contains(&&[0][..]),
            "rare leaf must stay below threshold"
        );
        let group = result.iter().find(|f| f.items == vec![4]).unwrap();
        assert_eq!(group.support, 4);
    }

    #[test]
    fn prunes_item_with_own_ancestor() {
        let h = toy_hierarchy();
        let t = vec![vec![0, 1], vec![0, 1], vec![0, 1]];
        let result = mine(&t, &h, 2);
        for f in &result {
            for &a in &f.items {
                for &b in &f.items {
                    assert!(
                        a == b || !h.is_ancestor(a, b),
                        "redundant itemset {:?} survived",
                        f.items
                    );
                }
            }
        }
        // Cross-group leaf pattern {0,1} survives (siblings, not
        // ancestor-related) and the pure-group singleton {4} survives.
        assert!(result.iter().any(|f| f.items == vec![0, 1]));
        assert!(result.iter().any(|f| f.items == vec![4]));
        // But {0,4} (item + own group) must not.
        assert!(!result.iter().any(|f| f.items == vec![0, 4]));
    }

    #[test]
    fn mixed_level_patterns_survive_when_unrelated() {
        let h = toy_hierarchy();
        // Leaf 0 (group 4) co-occurs with group-5 leaves.
        let t = vec![vec![0, 2], vec![0, 3], vec![0, 2]];
        let result = mine(&t, &h, 3);
        // {0, 5}: leaf from group 4 with group node 5 — unrelated levels.
        assert!(
            result.iter().any(|f| f.items == vec![0, 5]),
            "mixed-level pattern missing: {result:?}"
        );
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn rejects_cyclic_hierarchy() {
        let _ = ItemHierarchy::new(vec![Some(1), Some(0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_dangling_parent() {
        let _ = ItemHierarchy::new(vec![Some(9)]);
    }
}
