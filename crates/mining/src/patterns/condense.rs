//! Condensed pattern representations: closed and maximal itemsets.
//!
//! "With increasing input data volumes, the amount of extracted
//! knowledge also potentially increases. Thus actionable knowledge may
//! still be hidden in a growing volume of extracted knowledge." Closed
//! itemsets (no superset with equal support) and maximal itemsets (no
//! frequent superset at all) are the standard condensations the
//! knowledge-navigation layer applies before presenting pattern items.

use super::{is_subset, FrequentItemset};

/// Filters a frequent-itemset collection down to the *closed* ones: an
/// itemset is closed iff no proper superset has the same support.
/// Closed itemsets preserve all support information (every frequent
/// itemset's support equals that of its smallest closed superset).
pub fn closed_itemsets(frequent: &[FrequentItemset]) -> Vec<FrequentItemset> {
    frequent
        .iter()
        .filter(|f| {
            !frequent.iter().any(|g| {
                g.items.len() > f.items.len()
                    && g.support == f.support
                    && is_subset(&f.items, &g.items)
            })
        })
        .cloned()
        .collect()
}

/// Filters a frequent-itemset collection down to the *maximal* ones: an
/// itemset is maximal iff no proper superset is frequent. Maximal
/// itemsets give the most compact frontier but lose exact sub-pattern
/// supports.
pub fn maximal_itemsets(frequent: &[FrequentItemset]) -> Vec<FrequentItemset> {
    frequent
        .iter()
        .filter(|f| {
            !frequent
                .iter()
                .any(|g| g.items.len() > f.items.len() && is_subset(&f.items, &g.items))
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::{fpgrowth, testutil::market_basket};

    #[test]
    fn closed_preserve_support_information() {
        let t = market_basket();
        let frequent = fpgrowth::mine(&t, 2);
        let closed = closed_itemsets(&frequent);
        // Every frequent itemset's support is recoverable as the max
        // support among closed supersets.
        for f in &frequent {
            let recovered = closed
                .iter()
                .filter(|c| is_subset(&f.items, &c.items))
                .map(|c| c.support)
                .max();
            assert_eq!(recovered, Some(f.support), "itemset {:?}", f.items);
        }
        assert!(closed.len() <= frequent.len());
    }

    #[test]
    fn maximal_are_subset_of_closed() {
        let t = market_basket();
        let frequent = fpgrowth::mine(&t, 2);
        let closed = closed_itemsets(&frequent);
        let maximal = maximal_itemsets(&frequent);
        for m in &maximal {
            assert!(
                closed.contains(m),
                "maximal itemset {:?} must be closed",
                m.items
            );
        }
        assert!(maximal.len() <= closed.len());
    }

    #[test]
    fn maximal_have_no_frequent_supersets() {
        let t = market_basket();
        let frequent = fpgrowth::mine(&t, 2);
        let maximal = maximal_itemsets(&frequent);
        for m in &maximal {
            for f in &frequent {
                if f.items.len() > m.items.len() {
                    assert!(!is_subset(&m.items, &f.items));
                }
            }
        }
    }

    #[test]
    fn known_closed_set_on_textbook_data() {
        // {2} has support 7; no superset of {2} reaches 7, so {2} is
        // closed. {1,2,5} and {1,2,3} (support 2) are maximal.
        let t = market_basket();
        let frequent = fpgrowth::mine(&t, 2);
        let closed = closed_itemsets(&frequent);
        assert!(closed.iter().any(|f| f.items == vec![2] && f.support == 7));
        let maximal = maximal_itemsets(&frequent);
        assert!(maximal.iter().any(|f| f.items == vec![1, 2, 5]));
        assert!(maximal.iter().any(|f| f.items == vec![1, 2, 3]));
        assert!(!maximal.iter().any(|f| f.items == vec![1, 2]));
    }

    #[test]
    fn empty_input() {
        assert!(closed_itemsets(&[]).is_empty());
        assert!(maximal_itemsets(&[]).is_empty());
    }
}
