//! Association-rule generation from frequent itemsets.
//!
//! Produces every rule `A → B` (A, B non-empty, disjoint, A∪B frequent)
//! whose confidence clears a threshold, with the full battery of
//! interestingness measures from `ada-metrics` attached — these scores
//! are what ADA-HEALTH's knowledge-ranking component orders pattern
//! knowledge items by.

use std::collections::HashMap;

use ada_metrics::interest::RuleCounts;
use serde::{Deserialize, Serialize};

use super::{FrequentItemset, Item, Itemset};

/// An association rule with its contingency counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Antecedent itemset (sorted, non-empty).
    pub antecedent: Itemset,
    /// Consequent itemset (sorted, non-empty, disjoint from antecedent).
    pub consequent: Itemset,
    /// The counts all interestingness measures derive from.
    pub counts: RuleCounts,
}

impl Rule {
    /// Rule confidence P(B|A).
    pub fn confidence(&self) -> f64 {
        self.counts.confidence()
    }

    /// Rule support P(A ∧ B).
    pub fn support(&self) -> f64 {
        self.counts.support()
    }

    /// Rule lift.
    pub fn lift(&self) -> f64 {
        self.counts.lift()
    }
}

/// Generates rules from a frequent-itemset collection.
///
/// `num_transactions` is the collection size the supports were counted
/// over. Rules are returned sorted by descending confidence, then
/// descending support, then antecedent for determinism.
///
/// # Panics
/// Panics when `min_confidence` is outside [0, 1].
pub fn generate(
    frequent: &[FrequentItemset],
    num_transactions: usize,
    min_confidence: f64,
) -> Vec<Rule> {
    assert!(
        (0.0..=1.0).contains(&min_confidence),
        "confidence must be in [0, 1]"
    );
    let support: HashMap<&Itemset, usize> =
        frequent.iter().map(|f| (&f.items, f.support)).collect();

    let mut rules = Vec::new();
    for f in frequent {
        if f.items.len() < 2 {
            continue;
        }
        // Every non-empty proper subset as antecedent.
        for mask in 1..(1u32 << f.items.len()) - 1 {
            let mut antecedent: Itemset = Vec::new();
            let mut consequent: Itemset = Vec::new();
            for (pos, &item) in f.items.iter().enumerate() {
                if mask & (1 << pos) != 0 {
                    antecedent.push(item);
                } else {
                    consequent.push(item);
                }
            }
            let count_a = *support
                .get(&antecedent)
                .expect("subsets of frequent itemsets are frequent (downward closure)");
            let count_b = *support
                .get(&consequent)
                .expect("subsets of frequent itemsets are frequent (downward closure)");
            // Zero-support marginals make every measure degenerate
            // (confidence and lift are *defined* as 0.0 then, never
            // NaN/Inf — see `RuleCounts` — but such a rule carries no
            // information, so it never enters the ranking).
            if count_a == 0 || count_b == 0 || f.support == 0 {
                continue;
            }
            let counts = RuleCounts::new(num_transactions, count_a, count_b, f.support);
            if counts.confidence() >= min_confidence {
                rules.push(Rule {
                    antecedent,
                    consequent,
                    counts,
                });
            }
        }
    }
    rules.sort_by(|a, b| {
        // total_cmp: the sort stays total even if a measure ever went
        // non-finite, instead of panicking mid-ranking.
        b.confidence()
            .total_cmp(&a.confidence())
            .then_with(|| b.counts.count_ab.cmp(&a.counts.count_ab))
            .then_with(|| a.antecedent.cmp(&b.antecedent))
            .then_with(|| a.consequent.cmp(&b.consequent))
    });
    rules
}

/// Formats a rule using an item-name lookup (for reports and examples).
pub fn format_rule(rule: &Rule, name_of: impl Fn(Item) -> String) -> String {
    let side = |items: &Itemset| {
        items
            .iter()
            .map(|&i| name_of(i))
            .collect::<Vec<_>>()
            .join(" + ")
    };
    format!(
        "{} => {}  (sup {:.3}, conf {:.3}, lift {:.2})",
        side(&rule.antecedent),
        side(&rule.consequent),
        rule.support(),
        rule.confidence(),
        rule.lift()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::{fpgrowth, testutil::market_basket};

    #[test]
    fn generates_expected_rules_from_textbook_basket() {
        let t = market_basket();
        let frequent = fpgrowth::mine(&t, 2);
        let rules = generate(&frequent, t.len(), 0.7);
        // {5} -> {1,2}: support({1,2,5}) = 2, support({5}) = 2 -> conf 1.0.
        let rule = rules
            .iter()
            .find(|r| r.antecedent == vec![5] && r.consequent == vec![1, 2])
            .expect("rule {5} -> {1,2} must exist");
        assert!((rule.confidence() - 1.0).abs() < 1e-12);
        assert!((rule.support() - 2.0 / 9.0).abs() < 1e-12);
        // lift = conf / P(B) = 1.0 / (4/9) = 2.25.
        assert!((rule.lift() - 2.25).abs() < 1e-12);
        // All returned rules respect the threshold.
        assert!(rules.iter().all(|r| r.confidence() >= 0.7));
    }

    #[test]
    fn rules_sorted_by_confidence() {
        let t = market_basket();
        let frequent = fpgrowth::mine(&t, 2);
        let rules = generate(&frequent, t.len(), 0.0);
        for w in rules.windows(2) {
            assert!(w[0].confidence() >= w[1].confidence() - 1e-12);
        }
        // Antecedent and consequent always disjoint and non-empty.
        for r in &rules {
            assert!(!r.antecedent.is_empty() && !r.consequent.is_empty());
            assert!(r.antecedent.iter().all(|i| !r.consequent.contains(i)));
        }
    }

    #[test]
    fn no_rules_from_singletons() {
        let frequent = vec![FrequentItemset {
            items: vec![1],
            support: 5,
        }];
        assert!(generate(&frequent, 10, 0.0).is_empty());
    }

    #[test]
    fn min_confidence_filters() {
        let t = market_basket();
        let frequent = fpgrowth::mine(&t, 2);
        let all = generate(&frequent, t.len(), 0.0);
        let strict = generate(&frequent, t.len(), 0.9);
        assert!(strict.len() < all.len());
        assert!(strict.iter().all(|r| r.confidence() >= 0.9));
    }

    #[test]
    fn format_is_readable() {
        let rule = Rule {
            antecedent: vec![0],
            consequent: vec![1],
            counts: RuleCounts::new(10, 4, 5, 4),
        };
        let s = format_rule(&rule, |i| format!("exam{i}"));
        assert!(s.contains("exam0 => exam1"));
        assert!(s.contains("conf 1.000"));
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn rejects_bad_confidence() {
        let _ = generate(&[], 10, 1.5);
    }

    /// Zero-support itemsets (possible with hand-built or filtered
    /// collections) must not produce rules — and no measure of any
    /// generated rule may go NaN/Inf into the ranking.
    #[test]
    fn zero_support_marginals_never_reach_the_ranking() {
        let frequent = vec![
            FrequentItemset {
                items: vec![1],
                support: 0,
            },
            FrequentItemset {
                items: vec![2],
                support: 4,
            },
            FrequentItemset {
                items: vec![1, 2],
                support: 0,
            },
        ];
        assert!(generate(&frequent, 10, 0.0).is_empty());

        let t = market_basket();
        let rules = generate(&fpgrowth::mine(&t, 1), t.len(), 0.0);
        assert!(!rules.is_empty());
        for r in &rules {
            for v in [r.support(), r.confidence(), r.lift()] {
                assert!(v.is_finite(), "non-finite measure in {r:?}");
            }
            assert!(r.counts.count_a > 0 && r.counts.count_b > 0);
        }
    }

    /// The defined-value contract for degenerate divisions: a
    /// zero-antecedent (or zero-consequent) rule has confidence 0 and
    /// lift 0 — not NaN, not Inf.
    #[test]
    fn degenerate_counts_have_defined_confidence_and_lift() {
        let zero_a = RuleCounts::new(10, 0, 5, 0);
        assert_eq!(zero_a.confidence(), 0.0);
        assert_eq!(zero_a.lift(), 0.0);
        let zero_b = RuleCounts::new(10, 5, 0, 0);
        assert_eq!(zero_b.confidence(), 0.0);
        assert_eq!(zero_b.lift(), 0.0);
        let empty = RuleCounts::new(0, 0, 0, 0);
        for v in [empty.support(), empty.confidence(), empty.lift()] {
            assert_eq!(v, 0.0);
        }
    }
}
