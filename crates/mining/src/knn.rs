//! k-nearest-neighbour classifier over a kd-tree.
//!
//! Third robustness-classifier option for the optimizer ablation: unlike
//! the decision tree and naive Bayes it is non-parametric and directly
//! reuses the clustering's own geometry, so its cross-validated accuracy
//! upper-bounds what any classifier can recover from the cluster labels.

use ada_vsm::dense::{distance_sq, DenseMatrix};
use ada_vsm::kdtree::{KdTree, NodeId};

/// A fitted k-NN classifier (stores the training set in a kd-tree).
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    tree: KdTree,
    labels: Vec<usize>,
    num_classes: usize,
    k: usize,
}

impl KnnClassifier {
    /// Fits (i.e. indexes) the training data.
    ///
    /// # Panics
    /// Panics on empty data, shape mismatch, `k == 0`, or labels
    /// ≥ `num_classes`.
    pub fn fit(matrix: &DenseMatrix, labels: &[usize], num_classes: usize, k: usize) -> Self {
        assert_eq!(matrix.num_rows(), labels.len(), "label count mismatch");
        assert!(!labels.is_empty(), "cannot fit on empty data");
        assert!(k >= 1, "k must be positive");
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        Self {
            tree: KdTree::build(matrix),
            labels: labels.to_vec(),
            num_classes,
            k: k.min(labels.len()),
        }
    }

    /// Predicts the majority label among the k nearest training points
    /// (ties break to the lower class index; distance ties are resolved
    /// by point index, so predictions are deterministic).
    pub fn predict_row(&self, row: &[f64]) -> usize {
        let neighbours = self.k_nearest(row);
        let mut votes = vec![0usize; self.num_classes];
        for &(idx, _) in &neighbours {
            votes[self.labels[idx]] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|&(i, &v)| (v, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .expect("at least one class")
    }

    /// Predicts every row of `matrix`.
    pub fn predict(&self, matrix: &DenseMatrix) -> Vec<usize> {
        (0..matrix.num_rows())
            .map(|i| self.predict_row(matrix.row(i)))
            .collect()
    }

    /// The k nearest training points as `(index, squared distance)`,
    /// nearest first.
    fn k_nearest(&self, query: &[f64]) -> Vec<(usize, f64)> {
        // Bounded best-list maintained through a branch-and-bound walk.
        let mut best: Vec<(usize, f64)> = Vec::with_capacity(self.k + 1);
        self.walk(self.tree.root(), query, &mut best);
        best
    }

    fn walk(&self, node: NodeId, query: &[f64], best: &mut Vec<(usize, f64)>) {
        let bound = if best.len() == self.k {
            best.last().expect("non-empty").1
        } else {
            f64::INFINITY
        };
        if self.tree.bbox_distance_sq(node, query) > bound {
            return;
        }
        match self.tree.children(node) {
            None => {
                for &p in self.tree.points_in(node) {
                    let d = distance_sq(query, self.tree.point(p));
                    let pos = best
                        .binary_search_by(|&(bi, bd)| {
                            bd.partial_cmp(&d)
                                .expect("finite distances")
                                .then(bi.cmp(&p))
                        })
                        .unwrap_or_else(|e| e);
                    best.insert(pos, (p, d));
                    if best.len() > self.k {
                        best.pop();
                    }
                }
            }
            Some((l, r)) => {
                let dl = self.tree.bbox_distance_sq(l, query);
                let dr = self.tree.bbox_distance_sq(r, query);
                let (first, second) = if dl <= dr { (l, r) } else { (r, l) };
                self.walk(first, query, best);
                self.walk(second, query, best);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (DenseMatrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3usize {
            let center = c as f64 * 10.0;
            for i in 0..20 {
                rows.push(vec![center + (i as f64) * 0.01, center]);
                labels.push(c);
            }
        }
        (DenseMatrix::from_rows(&rows), labels)
    }

    #[test]
    fn classifies_separated_blobs() {
        let (m, labels) = blobs();
        let knn = KnnClassifier::fit(&m, &labels, 3, 5);
        assert_eq!(knn.predict(&m), labels);
        assert_eq!(knn.predict_row(&[9.9, 10.1]), 1);
    }

    #[test]
    fn k_one_memorizes_training_data() {
        let (m, labels) = blobs();
        let knn = KnnClassifier::fit(&m, &labels, 3, 1);
        assert_eq!(knn.predict(&m), labels);
    }

    #[test]
    fn matches_brute_force_neighbours() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let rows: Vec<Vec<f64>> = (0..120)
            .map(|_| (0..4).map(|_| rng.gen_range(-5.0..5.0)).collect())
            .collect();
        let labels: Vec<usize> = (0..120).map(|i| i % 4).collect();
        let m = DenseMatrix::from_rows(&rows);
        let knn = KnnClassifier::fit(&m, &labels, 4, 7);
        for _ in 0..20 {
            let q: Vec<f64> = (0..4).map(|_| rng.gen_range(-6.0..6.0)).collect();
            let found = knn.k_nearest(&q);
            assert_eq!(found.len(), 7);
            let mut brute: Vec<(usize, f64)> =
                (0..120).map(|i| (i, distance_sq(&q, m.row(i)))).collect();
            brute.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
            let found_d: Vec<f64> = found.iter().map(|&(_, d)| d).collect();
            let brute_d: Vec<f64> = brute[..7].iter().map(|&(_, d)| d).collect();
            for (a, b) in found_d.iter().zip(&brute_d) {
                assert!((a - b).abs() < 1e-9, "{found_d:?} vs {brute_d:?}");
            }
        }
    }

    #[test]
    fn majority_vote_with_ties_prefers_lower_class() {
        // Two classes at equal distance; k = 2 -> tie -> class 0.
        let m = DenseMatrix::from_rows(&[vec![-1.0], vec![1.0]]);
        let knn = KnnClassifier::fit(&m, &[1, 0], 2, 2);
        assert_eq!(knn.predict_row(&[0.0]), 0);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let m = DenseMatrix::from_rows(&[vec![0.0], vec![1.0]]);
        let knn = KnnClassifier::fit(&m, &[0, 1], 2, 99);
        let _ = knn.predict_row(&[0.4]); // must not panic
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let m = DenseMatrix::from_rows(&[vec![0.0]]);
        let _ = KnnClassifier::fit(&m, &[3], 2, 1);
    }
}
