//! DBSCAN density clustering.
//!
//! An extension algorithm for ADA-HEALTH's algorithm-selection layer:
//! unlike K-means it needs no K, and its noise label doubles as the
//! outlier detector the paper mentions ("rarely prescribed \[exams\] …
//! could affect other types of analyses such as outlier detection").
//! Region queries run against the same kd-tree the filtering K-means
//! uses.

use ada_vsm::dense::DenseMatrix;
use ada_vsm::kdtree::{KdTree, NodeId};
use serde::{Deserialize, Serialize};

/// Label assigned to every point by DBSCAN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DbscanLabel {
    /// Not density-reachable from any core point.
    Noise,
    /// Member of the cluster with the given dense index.
    Cluster(usize),
}

/// DBSCAN configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dbscan {
    /// Neighbourhood radius (Euclidean).
    pub eps: f64,
    /// Minimum neighbourhood size (including the point itself) for a
    /// point to be a core point.
    pub min_points: usize,
}

/// DBSCAN output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DbscanResult {
    /// Per-point labels.
    pub labels: Vec<DbscanLabel>,
    /// Number of clusters discovered.
    pub num_clusters: usize,
}

impl DbscanResult {
    /// Indices of the noise points.
    pub fn noise_points(&self) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, l)| **l == DbscanLabel::Noise)
            .map(|(i, _)| i)
            .collect()
    }
}

impl Dbscan {
    /// Creates a configuration.
    ///
    /// # Panics
    /// Panics when `eps` is not positive/finite or `min_points == 0`.
    pub fn new(eps: f64, min_points: usize) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "eps must be positive");
        assert!(min_points >= 1, "min_points must be positive");
        Self { eps, min_points }
    }

    /// Clusters the rows of `matrix`.
    pub fn fit(&self, matrix: &DenseMatrix) -> DbscanResult {
        let n = matrix.num_rows();
        if n == 0 {
            return DbscanResult {
                labels: Vec::new(),
                num_clusters: 0,
            };
        }
        let tree = KdTree::build(matrix);
        let eps_sq = self.eps * self.eps;

        const UNVISITED: usize = usize::MAX;
        const NOISE: usize = usize::MAX - 1;
        let mut label = vec![UNVISITED; n];
        let mut cluster = 0usize;

        for p in 0..n {
            if label[p] != UNVISITED {
                continue;
            }
            let neighbours = region_query(&tree, matrix.row(p), eps_sq);
            if neighbours.len() < self.min_points {
                label[p] = NOISE;
                continue;
            }
            // Start a new cluster and expand it (classic seed-set loop).
            label[p] = cluster;
            let mut seeds = neighbours;
            let mut cursor = 0;
            while cursor < seeds.len() {
                let q = seeds[cursor];
                cursor += 1;
                if label[q] == NOISE {
                    label[q] = cluster; // border point
                }
                if label[q] != UNVISITED {
                    continue;
                }
                label[q] = cluster;
                let q_neigh = region_query(&tree, matrix.row(q), eps_sq);
                if q_neigh.len() >= self.min_points {
                    seeds.extend(q_neigh);
                }
            }
            cluster += 1;
        }

        DbscanResult {
            labels: label
                .into_iter()
                .map(|l| {
                    if l == NOISE {
                        DbscanLabel::Noise
                    } else {
                        DbscanLabel::Cluster(l)
                    }
                })
                .collect(),
            num_clusters: cluster,
        }
    }
}

/// All point indices within squared distance `eps_sq` of `q` (including
/// the query point itself when it is a data point).
fn region_query(tree: &KdTree, q: &[f64], eps_sq: f64) -> Vec<usize> {
    let mut out = Vec::new();
    rec(tree, tree.root(), q, eps_sq, &mut out);
    out
}

fn rec(tree: &KdTree, node: NodeId, q: &[f64], eps_sq: f64, out: &mut Vec<usize>) {
    if tree.bbox_distance_sq(node, q) > eps_sq {
        return;
    }
    match tree.children(node) {
        Some((l, r)) => {
            rec(tree, l, q, eps_sq, out);
            rec(tree, r, q, eps_sq, out);
        }
        None => {
            for &p in tree.points_in(node) {
                if ada_vsm::dense::distance_sq(q, tree.point(p)) <= eps_sq {
                    out.push(p);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::testutil::gaussian_blobs;

    #[test]
    fn separates_blobs_and_flags_outlier() {
        // Two tight blobs plus one far outlier.
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..20 {
            rows.push(vec![0.0 + (i as f64) * 0.01, 0.0]);
        }
        for i in 0..20 {
            rows.push(vec![50.0 + (i as f64) * 0.01, 0.0]);
        }
        rows.push(vec![500.0, 500.0]);
        let m = DenseMatrix::from_rows(&rows);
        let result = Dbscan::new(1.0, 3).fit(&m);
        assert_eq!(result.num_clusters, 2);
        assert_eq!(result.noise_points(), vec![40]);
        let first = result.labels[0];
        assert!(result.labels[..20].iter().all(|&l| l == first));
        assert_ne!(result.labels[20], first);
    }

    #[test]
    fn all_noise_when_eps_tiny() {
        let m = gaussian_blobs(2, 10, 2, 41);
        let result = Dbscan::new(1e-9, 3).fit(&m);
        assert_eq!(result.num_clusters, 0);
        assert_eq!(result.noise_points().len(), 20);
    }

    #[test]
    fn single_cluster_when_eps_huge() {
        let m = gaussian_blobs(3, 10, 2, 42);
        let result = Dbscan::new(1e6, 2).fit(&m);
        assert_eq!(result.num_clusters, 1);
        assert!(result.noise_points().is_empty());
    }

    #[test]
    fn empty_input() {
        let result = Dbscan::new(1.0, 2).fit(&DenseMatrix::zeros(0, 3));
        assert_eq!(result.num_clusters, 0);
        assert!(result.labels.is_empty());
    }

    #[test]
    fn labels_are_dense_cluster_ids() {
        let m = gaussian_blobs(3, 15, 3, 43);
        let result = Dbscan::new(2.0, 3).fit(&m);
        for l in &result.labels {
            if let DbscanLabel::Cluster(c) = l {
                assert!(*c < result.num_clusters);
            }
        }
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn rejects_bad_eps() {
        let _ = Dbscan::new(0.0, 3);
    }
}
