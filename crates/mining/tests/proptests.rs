//! Property tests: miner equivalences and validation invariants.

use ada_mining::kmeans::{init, KMeans, KMeansBackend, KMeansInit};
use ada_mining::patterns::{apriori, fpgrowth, rules, Transaction};
use ada_mining::validate::stratified_folds;
use ada_vsm::DenseMatrix;
use proptest::prelude::*;

fn transactions() -> impl Strategy<Value = Vec<Transaction>> {
    prop::collection::vec(
        prop::collection::btree_set(0u32..12, 0..6).prop_map(|s| s.into_iter().collect::<Vec<_>>()),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fpgrowth_equals_apriori(ts in transactions(), min_support in 1usize..6) {
        let a = apriori::mine(&ts, min_support);
        let f = fpgrowth::mine(&ts, min_support);
        prop_assert_eq!(a, f);
    }

    #[test]
    fn downward_closure(ts in transactions(), min_support in 1usize..5) {
        use std::collections::HashMap;
        let frequent = fpgrowth::mine(&ts, min_support);
        let support: HashMap<&Vec<u32>, usize> =
            frequent.iter().map(|f| (&f.items, f.support)).collect();
        for f in &frequent {
            prop_assert!(f.support >= min_support);
            if f.items.len() >= 2 {
                for skip in 0..f.items.len() {
                    let sub: Vec<u32> = f.items.iter().enumerate()
                        .filter(|&(i, _)| i != skip).map(|(_, &v)| v).collect();
                    let s = support.get(&sub);
                    prop_assert!(s.is_some(), "missing subset {:?}", sub);
                    prop_assert!(*s.unwrap() >= f.support);
                }
            }
        }
    }

    #[test]
    fn rules_respect_confidence_and_counts(
        ts in transactions(),
        conf in 0.0f64..1.0,
    ) {
        let frequent = fpgrowth::mine(&ts, 1);
        let generated = rules::generate(&frequent, ts.len(), conf);
        for r in &generated {
            prop_assert!(r.confidence() >= conf - 1e-12);
            // Recount the rule directly against the transactions.
            let contains = |t: &Transaction, items: &[u32]|
                items.iter().all(|i| t.binary_search(i).is_ok());
            let count_ab = ts.iter()
                .filter(|t| contains(t, &r.antecedent) && contains(t, &r.consequent))
                .count();
            prop_assert_eq!(count_ab, r.counts.count_ab);
        }
    }

    #[test]
    fn filtering_equals_lloyd(
        rows in prop::collection::vec(
            prop::collection::vec((-50i32..50).prop_map(|v| f64::from(v) / 5.0), 3),
            4..50,
        ),
        k in 1usize..4,
        seed in 0u64..100,
    ) {
        prop_assume!(k <= rows.len());
        let m = DenseMatrix::from_rows(&rows);
        let start = init::initial_centroids(&m, k, KMeansInit::Forgy, seed);
        let lloyd = KMeans::new(k).fit_from(&m, start.clone());
        let filtering = KMeans::new(k)
            .backend(KMeansBackend::Filtering)
            .fit_from(&m, start);
        prop_assert_eq!(&lloyd.assignments, &filtering.assignments);
        prop_assert!((lloyd.sse - filtering.sse).abs() < 1e-6 * (1.0 + lloyd.sse));
    }

    #[test]
    fn pruned_parallel_kernel_equals_plain_serial_lloyd(
        rows in prop::collection::vec(
            prop::collection::vec((-50i32..50).prop_map(|v| f64::from(v) / 5.0), 1..5),
            4..60,
        ),
        k in 1usize..6,
        seed in 0u64..100,
        threads in 1usize..6,
    ) {
        prop_assume!(k <= rows.len());
        let dim = rows[0].len();
        let rows: Vec<Vec<f64>> = rows.into_iter().map(|mut r| { r.resize(dim, 0.0); r }).collect();
        let m = DenseMatrix::from_rows(&rows);
        let start = init::initial_centroids(&m, k, KMeansInit::Forgy, seed);
        // Plain serial Lloyd: no pruning, one thread.
        let plain = KMeans::new(k)
            .prune(false)
            .fit_from(&m, start.clone());
        // Bound-pruned parallel kernel.
        let fast = KMeans::new(k)
            .prune(true)
            .threads(threads)
            .fit_from(&m, start.clone());
        // Assignments, centroids, SSE, and iteration count must be
        // bit-identical (KMeansResult's PartialEq compares exactly).
        // The seed reference loop is NOT part of this property: on
        // symmetric grid data a real-arithmetic distance tie can round
        // differently under the reference's `(x − c)²` form than under
        // the kernel's dot-product form, legitimately changing the
        // trajectory. Kernel-vs-reference faithfulness on continuous
        // data is covered by `lloyd::tests::kernel_matches_reference_trajectory`.
        prop_assert_eq!(&plain, &fast);
        // Every run still lands on a Lloyd fixed point of equal quality
        // class: a converged run's SSE is a local optimum, so recheck
        // the invariant that SSE never exceeds the 1-cluster bound.
        prop_assert!(plain.sse.is_finite());
    }

    #[test]
    fn kmeans_sse_never_worse_than_one_cluster(
        rows in prop::collection::vec(
            prop::collection::vec((-50i32..50).prop_map(|v| f64::from(v) / 5.0), 2),
            3..40,
        ),
        k in 2usize..4,
    ) {
        prop_assume!(k <= rows.len());
        let m = DenseMatrix::from_rows(&rows);
        let multi = KMeans::new(k).seed(1).fit(&m);
        let single = KMeans::new(1).seed(1).fit(&m);
        prop_assert!(multi.sse <= single.sse + 1e-9);
    }

    #[test]
    fn folds_partition_indices(
        labels in prop::collection::vec(0usize..4, 5..60),
        folds in 2usize..5,
        seed in 0u64..50,
    ) {
        prop_assume!(labels.len() >= folds);
        let partition = stratified_folds(&labels, folds, seed);
        prop_assert_eq!(partition.len(), folds);
        let mut all: Vec<usize> = partition.iter().flatten().copied().collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..labels.len()).collect();
        prop_assert_eq!(all, expected);
        // Stratification: fold class counts differ by at most... the
        // round-robin guarantees within-class fold sizes differ by <= 1.
        let num_classes = labels.iter().copied().max().unwrap_or(0) + 1;
        for class in 0..num_classes {
            let per_fold: Vec<usize> = partition.iter()
                .map(|f| f.iter().filter(|&&i| labels[i] == class).count())
                .collect();
            let (lo, hi) = (per_fold.iter().min().unwrap(), per_fold.iter().max().unwrap());
            prop_assert!(hi - lo <= 2, "class {} spread {:?}", class, per_fold);
        }
    }

    #[test]
    fn tree_is_perfect_on_training_data_without_limits(
        rows in prop::collection::vec(
            prop::collection::vec((-100i32..100).prop_map(f64::from), 2),
            2..40,
        ),
        labels in prop::collection::vec(0usize..3, 2..40),
    ) {
        use ada_mining::tree::{DecisionTree, TreeConfig};
        let n = rows.len().min(labels.len());
        let rows = &rows[..n];
        let labels = &labels[..n];
        // Deduplicate identical feature rows with conflicting labels:
        // keep the first occurrence.
        let mut seen: Vec<&Vec<f64>> = Vec::new();
        let mut keep_rows = Vec::new();
        let mut keep_labels = Vec::new();
        for (r, &l) in rows.iter().zip(labels) {
            if !seen.contains(&r) {
                seen.push(r);
                keep_rows.push(r.clone());
                keep_labels.push(l);
            }
        }
        let m = DenseMatrix::from_rows(&keep_rows);
        let cfg = TreeConfig {
            max_depth: usize::MAX,
            min_samples_leaf: 1,
            min_gain: 0.0,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&m, &keep_labels, 3, &cfg);
        prop_assert_eq!(tree.predict(&m), keep_labels);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn hierarchical_cut_yields_exactly_k_clusters(
        rows in prop::collection::vec(
            prop::collection::vec((-40i32..40).prop_map(|v| f64::from(v) / 4.0), 2),
            2..25,
        ),
        k in 1usize..6,
    ) {
        use ada_mining::hierarchical::{agglomerative, Linkage};
        prop_assume!(k <= rows.len());
        let m = DenseMatrix::from_rows(&rows);
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let labels = agglomerative(&m, linkage).cut(k);
            prop_assert_eq!(labels.len(), rows.len());
            let mut distinct = labels.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assert_eq!(distinct.len(), k, "{:?}", linkage);
            // Labels are dense 0..k.
            prop_assert_eq!(distinct, (0..k).collect::<Vec<_>>());
        }
    }

    #[test]
    fn sequence_mining_respects_support(
        timelines in prop::collection::vec(
            prop::collection::vec(
                prop::collection::btree_set(0u32..6, 0..3)
                    .prop_map(|s| s.into_iter().collect::<Vec<_>>()),
                0..5,
            ),
            1..20,
        ),
        min_support in 1usize..4,
    ) {
        use ada_mining::sequences::{contains_sequence, mine};
        let found = mine(&timelines, min_support, 3);
        for f in &found {
            // Recount directly.
            let support = timelines
                .iter()
                .filter(|t| contains_sequence(t, &f.sequence))
                .count();
            prop_assert_eq!(support, f.support);
            prop_assert!(f.support >= min_support);
        }
    }

    #[test]
    fn closed_and_maximal_are_consistent(ts in transactions(), min_support in 1usize..5) {
        use ada_mining::patterns::condense::{closed_itemsets, maximal_itemsets};
        use ada_mining::patterns::is_subset;
        let frequent = fpgrowth::mine(&ts, min_support);
        let closed = closed_itemsets(&frequent);
        let maximal = maximal_itemsets(&frequent);
        // Every maximal itemset is closed.
        for m in &maximal {
            prop_assert!(closed.contains(m));
        }
        // Support recovery: every frequent itemset's support equals the
        // max support of its closed supersets.
        for f in &frequent {
            let recovered = closed.iter()
                .filter(|c| is_subset(&f.items, &c.items))
                .map(|c| c.support)
                .max();
            prop_assert_eq!(recovered, Some(f.support));
        }
    }
}
