//! Fixed-bucket log2 latency histograms.
//!
//! A [`Log2Histogram`] is 64 atomic buckets, one per power of two of
//! nanoseconds: a recorded value `v` lands in bucket `floor(log2(v))`
//! (bucket 0 also absorbs 0 and 1). Recording is two relaxed atomic
//! adds plus a bit scan — no allocation, no locking, no floating
//! point — so the histogram can sit on hot paths and be shared across
//! threads behind a plain `&`. Quantiles (p50/p90/p99) come from a
//! cumulative walk over a snapshot of the buckets and report the
//! geometric midpoint of the bucket the target count falls in, so they
//! carry the bucket's ~2× resolution (exactly what a latency SLO
//! needs, and the price of never allocating).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per power of two of a `u64` value.
pub const NUM_BUCKETS: usize = 64;

/// A lock-free, allocation-free log2 latency histogram.
///
/// Values are nanoseconds by convention ([`Log2Histogram::record_duration`]),
/// but any `u64` works.
#[derive(Debug)]
pub struct Log2Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket index of a value: `floor(log2(v))`, with 0 and 1 both in
/// bucket 0.
#[inline]
fn bucket_of(value: u64) -> usize {
    (63 - value.max(1).leading_zeros()) as usize
}

/// The representative value reported for a bucket: the midpoint of
/// `[2^i, 2^(i+1))`.
#[inline]
fn bucket_mid(index: usize) -> u64 {
    let low = 1u64 << index;
    low + (low >> 1)
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value (two relaxed atomic adds, no allocation).
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, duration: std::time::Duration) {
        self.record(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (nanoseconds by convention).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy of the buckets for quantile walks.
    /// (Concurrent recorders may land between loads; metrics readers
    /// tolerate that, and a quiesced histogram snapshots exactly.)
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count(),
            sum: self.sum(),
        }
    }

    /// The value at quantile `q` in `[0, 1]` — see
    /// [`HistogramSnapshot::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

/// A point-in-time copy of a [`Log2Histogram`], for quantile math and
/// serialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (`buckets[i]` holds values in `[2^i, 2^(i+1))`).
    pub buckets: [u64; NUM_BUCKETS],
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// The representative value at quantile `q` in `[0, 1]`: the
    /// geometric midpoint of the bucket holding the `ceil(q·count)`-th
    /// smallest sample. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_mid(i);
            }
        }
        bucket_mid(NUM_BUCKETS - 1)
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn quantiles_of_uniform_values() {
        let h = Log2Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        // The 500th smallest of 1..=1000 is 500, bucket 8 ([256, 512)).
        assert_eq!(snap.p50(), bucket_mid(8));
        // The 900th is 900, bucket 9 ([512, 1024)).
        assert_eq!(snap.p90(), bucket_mid(9));
        assert_eq!(snap.p99(), bucket_mid(9));
        assert!(snap.p50() <= snap.p90() && snap.p90() <= snap.p99());
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Log2Histogram::new();
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.p99(), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn single_value_dominates_every_quantile() {
        let h = Log2Histogram::new();
        h.record(5_000);
        let snap = h.snapshot();
        let expected = bucket_mid(bucket_of(5_000));
        assert_eq!(snap.p50(), expected);
        assert_eq!(snap.p99(), expected);
        assert_eq!(snap.sum, 5_000);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Log2Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i + 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        assert_eq!(h.snapshot().buckets.iter().sum::<u64>(), 40_000);
    }

    #[test]
    fn quantile_midpoint_carries_bucket_resolution() {
        let h = Log2Histogram::new();
        h.record(700); // bucket 9: [512, 1024)
        let q = h.quantile(0.5);
        assert_eq!(q, 768);
        assert!((512..1024).contains(&q));
    }
}
