//! A lock-free span/event tracer.
//!
//! [`Tracer`] is the event transport of the observability layer: each
//! producing thread appends [`TraceEvent`]s to its own single-producer
//! ring buffer, a global atomic sequence number gives the events a
//! total order, and [`Tracer::drain`] merges every ring back into that
//! order on the consumer side. The emit path is wait-free after a
//! thread's first event (one TLS lookup, one `fetch_add` for the
//! sequence, one monotonic clock read, one ring write); only the first
//! event a thread ever emits for a given tracer takes a lock, to
//! register the new ring.
//!
//! Rings are bounded: when a producer outruns the consumer the ring
//! drops the *newest* event and counts it ([`Tracer::dropped`]) — the
//! oldest events keep the span-tree roots intact, and a dropped-count
//! of zero certifies a complete trace.
//!
//! Span identity: [`Tracer::next_span_id`] allocates process-unique
//! span ids (starting at 1; 0 is [`PARENT_NONE`]). Start/End events
//! carry the ids; parentage is the caller's contract (the flight
//! recorder tracks the open-stage stack per session).

use std::cell::{RefCell, UnsafeCell};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ada_core::control::PipelineStage;
use parking_lot::Mutex;

/// The parent id of a root span (span ids start at 1).
pub const PARENT_NONE: u64 = 0;

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span opened. `parent` is the span id of the enclosing span
    /// ([`PARENT_NONE`] for a root).
    Start {
        /// The opened span's id.
        span: u64,
        /// The enclosing span's id, or [`PARENT_NONE`].
        parent: u64,
    },
    /// A span closed after `dur_ns` nanoseconds.
    End {
        /// The closed span's id.
        span: u64,
        /// Wall-clock duration of the span in nanoseconds.
        dur_ns: u64,
    },
    /// A point event with an optional associated duration (queue wait,
    /// retry backoff, cancellation).
    Mark {
        /// Associated duration in nanoseconds (0 when inapplicable).
        dur_ns: u64,
    },
    /// Kernel instrumentation counters attributed to the innermost
    /// open span of the event's stage. Values accumulate.
    Counters {
        /// Stable `(name, value)` pairs.
        pairs: Vec<(&'static str, u64)>,
    },
    /// Attributes attached to one specific span (fsync-round batch
    /// size, leader/follower role, wait-vs-fsync split). Unlike
    /// [`EventKind::Counters`], values *replace* rather than
    /// accumulate, and they bind to a span id instead of "the
    /// innermost open span".
    Annotate {
        /// The annotated span's id.
        span: u64,
        /// Stable `(name, value)` pairs.
        pairs: Vec<(&'static str, u64)>,
    },
}

/// One traced event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Global sequence number — the authoritative total order.
    pub seq: u64,
    /// Nanoseconds since the tracer's epoch (monotonic clock).
    pub t_ns: u64,
    /// The session the event belongs to.
    pub session: Arc<str>,
    /// The pipeline stage the event is attributed to, if any.
    pub stage: Option<PipelineStage>,
    /// Event name (span name, mark name, or `"counters"`).
    pub name: Arc<str>,
    /// The payload.
    pub kind: EventKind,
}

/// A single-producer ring: the owning thread pushes, [`Tracer::drain`]
/// pops under the registry lock. Capacity is a power of two; a full
/// ring drops the incoming (newest) event and counts it.
struct Ring {
    slots: Box<[UnsafeCell<MaybeUninit<TraceEvent>>]>,
    mask: usize,
    /// Producer cursor (monotonically increasing slot count).
    head: AtomicUsize,
    /// Consumer cursor.
    tail: AtomicUsize,
    dropped: AtomicU64,
}

// SAFETY: slot `i` is written only by the producing thread while
// `tail <= i < head` excludes it from the consumer, and read only by
// the consumer once `head` (Release-published) covers it. The two
// cursors never address the same slot concurrently.
unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

impl Ring {
    fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            slots,
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Producer-side push (only the owning thread calls this).
    fn push(&self, event: TraceEvent) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head - tail > self.mask {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: slot is outside [tail, head), so the consumer cannot
        // be reading it; this thread is the only producer.
        unsafe {
            (*self.slots[head & self.mask].get()).write(event);
        }
        self.head.store(head + 1, Ordering::Release);
    }

    /// Consumer-side pop of everything currently visible (called under
    /// the tracer's registry lock — single consumer).
    fn pop_all(&self, out: &mut Vec<TraceEvent>) {
        let head = self.head.load(Ordering::Acquire);
        let mut tail = self.tail.load(Ordering::Relaxed);
        while tail < head {
            // SAFETY: the producer published the slot via the Release
            // store of `head`; it will not rewrite it until `tail`
            // advances past it.
            out.push(unsafe { (*self.slots[tail & self.mask].get()).assume_init_read() });
            tail += 1;
        }
        self.tail.store(tail, Ordering::Release);
    }
}

impl Drop for Ring {
    fn drop(&mut self) {
        // Drain any unconsumed events so their heap payloads free.
        let mut sink = Vec::new();
        self.pop_all(&mut sink);
    }
}

/// State shared between a [`Tracer`], its per-thread rings, and the
/// TLS registry entries that outlive it.
struct TracerShared {
    rings: Mutex<Vec<Arc<Ring>>>,
    closed: AtomicU64,
    ring_capacity: usize,
}

/// Process-unique tracer ids, so one thread can hold rings for several
/// tracers (tests, multiple services in one process).
static TRACER_IDS: AtomicU64 = AtomicU64::new(1);

/// One TLS registry entry: `(tracer id, tracer state, this thread's ring)`.
type LocalRing = (u64, Arc<TracerShared>, Arc<Ring>);

thread_local! {
    /// This thread's rings, keyed by tracer id. Entries for closed
    /// tracers are pruned on the next emit through this registry.
    static LOCAL_RINGS: RefCell<Vec<LocalRing>> =
        const { RefCell::new(Vec::new()) };
}

/// The lock-free span/event tracer (see the module docs).
pub struct Tracer {
    id: u64,
    shared: Arc<TracerShared>,
    seq: AtomicU64,
    span_ids: AtomicU64,
    epoch: Instant,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new(1024)
    }
}

impl Tracer {
    /// A tracer whose per-thread rings hold `ring_capacity` events
    /// (rounded up to a power of two, minimum 2).
    pub fn new(ring_capacity: usize) -> Self {
        Self {
            id: TRACER_IDS.fetch_add(1, Ordering::Relaxed),
            shared: Arc::new(TracerShared {
                rings: Mutex::new(Vec::new()),
                closed: AtomicU64::new(0),
                ring_capacity,
            }),
            seq: AtomicU64::new(0),
            span_ids: AtomicU64::new(1),
            epoch: Instant::now(),
        }
    }

    /// Allocates a process-unique span id (never [`PARENT_NONE`]).
    pub fn next_span_id(&self) -> u64 {
        self.span_ids.fetch_add(1, Ordering::Relaxed)
    }

    /// Nanoseconds since the tracer's epoch (monotonic).
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Emits one event from the calling thread (wait-free after the
    /// thread's first emit for this tracer).
    pub fn emit(
        &self,
        session: &Arc<str>,
        stage: Option<PipelineStage>,
        name: &Arc<str>,
        kind: EventKind,
    ) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let event = TraceEvent {
            seq,
            t_ns: self.now_ns(),
            session: Arc::clone(session),
            stage,
            name: Arc::clone(name),
            kind,
        };
        LOCAL_RINGS.with(|cell| {
            let mut local = cell.borrow_mut();
            // Prune rings of dropped tracers while we're here.
            local.retain(|(_, shared, _)| shared.closed.load(Ordering::Relaxed) == 0);
            if let Some((_, _, ring)) = local.iter().find(|(id, _, _)| *id == self.id) {
                ring.push(event);
                return;
            }
            let ring = Arc::new(Ring::new(self.shared.ring_capacity));
            self.shared.rings.lock().push(Arc::clone(&ring));
            ring.push(event);
            local.push((self.id, Arc::clone(&self.shared), ring));
        });
    }

    /// Removes every currently visible event from every thread's ring
    /// and returns them merged in sequence order.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let rings = self.shared.rings.lock();
        let mut out = Vec::new();
        for ring in rings.iter() {
            ring.pop_all(&mut out);
        }
        drop(rings);
        out.sort_unstable_by_key(|e| e.seq);
        out
    }

    /// Total events dropped because a ring was full.
    pub fn dropped(&self) -> u64 {
        self.shared
            .rings
            .lock()
            .iter()
            .map(|r| r.dropped.load(Ordering::Relaxed))
            .sum()
    }
}

impl Drop for Tracer {
    fn drop(&mut self) {
        self.shared.closed.store(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn events_drain_in_sequence_order() {
        let tracer = Tracer::new(64);
        let session = arc("s");
        for i in 0..10u64 {
            let span = tracer.next_span_id();
            tracer.emit(
                &session,
                None,
                &arc(&format!("e{i}")),
                EventKind::Start {
                    span,
                    parent: PARENT_NONE,
                },
            );
        }
        let events = tracer.drain();
        assert_eq!(events.len(), 10);
        for pair in events.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
            assert!(pair[0].t_ns <= pair[1].t_ns);
        }
        // Draining again yields nothing.
        assert!(tracer.drain().is_empty());
    }

    #[test]
    fn multi_thread_emits_merge_by_seq_without_loss() {
        let tracer = Arc::new(Tracer::new(4096));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let tracer = Arc::clone(&tracer);
                std::thread::spawn(move || {
                    let session = arc(&format!("s{t}"));
                    let name = arc("tick");
                    for _ in 0..1000 {
                        tracer.emit(&session, None, &name, EventKind::Mark { dur_ns: 0 });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let events = tracer.drain();
        assert_eq!(events.len(), 4000);
        assert_eq!(tracer.dropped(), 0);
        // Sequence numbers are a permutation of 0..4000.
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 4000);
        for pair in events.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
    }

    #[test]
    fn full_ring_drops_newest_and_counts() {
        let tracer = Tracer::new(8);
        let session = arc("s");
        let name = arc("m");
        for _ in 0..20 {
            tracer.emit(&session, None, &name, EventKind::Mark { dur_ns: 1 });
        }
        let events = tracer.drain();
        assert_eq!(events.len(), 8);
        assert_eq!(tracer.dropped(), 12);
        // The oldest events survived (drop-newest policy keeps roots).
        assert_eq!(events[0].seq, 0);
        assert_eq!(events.last().unwrap().seq, 7);
    }

    #[test]
    fn span_ids_are_unique_and_nonzero() {
        let tracer = Tracer::new(8);
        let a = tracer.next_span_id();
        let b = tracer.next_span_id();
        assert_ne!(a, PARENT_NONE);
        assert_ne!(a, b);
    }

    #[test]
    fn two_tracers_on_one_thread_stay_separate() {
        let t1 = Tracer::new(16);
        let t2 = Tracer::new(16);
        let session = arc("s");
        let name = arc("m");
        t1.emit(&session, None, &name, EventKind::Mark { dur_ns: 1 });
        t2.emit(&session, None, &name, EventKind::Mark { dur_ns: 2 });
        t2.emit(&session, None, &name, EventKind::Mark { dur_ns: 3 });
        assert_eq!(t1.drain().len(), 1);
        assert_eq!(t2.drain().len(), 2);
    }

    #[test]
    fn drain_interleaved_with_emission_loses_nothing() {
        let tracer = Arc::new(Tracer::new(1024));
        let total = Arc::new(AtomicU64::new(0));
        let producer = {
            let tracer = Arc::clone(&tracer);
            std::thread::spawn(move || {
                let session = arc("p");
                let name = arc("m");
                for _ in 0..5000 {
                    tracer.emit(&session, None, &name, EventKind::Mark { dur_ns: 0 });
                }
            })
        };
        while !producer.is_finished() {
            total.fetch_add(tracer.drain().len() as u64, Ordering::Relaxed);
        }
        producer.join().unwrap();
        total.fetch_add(tracer.drain().len() as u64, Ordering::Relaxed);
        assert_eq!(
            total.load(Ordering::Relaxed) + tracer.dropped(),
            5000,
            "every emitted event is either drained or counted dropped"
        );
    }
}
