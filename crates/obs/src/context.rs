//! Request-scoped trace identity and deterministic sampling.
//!
//! A [`TraceContext`] names one end-to-end request: a 128-bit trace id,
//! the id of the span that created it (the client's submit span, when
//! the context crossed the ADAN1 wire), and the sampling decision. The
//! context is minted exactly once — at `Client::submit` for remote
//! callers or at `JobSpec` creation for in-process ones — and then
//! carried unchanged through the net server, the job queue, the worker,
//! the pipeline observers, and the K-DB group committer.
//!
//! Sampling is *seeded-deterministic*: the decision is a pure function
//! of `(seed, session name, rate)` via a SplitMix64 finalizer, so the
//! same submission samples identically on every run, on the client and
//! on the server, with no shared RNG and no ambient entropy. Rate 0
//! never samples (and mints nothing at all — the byte-identity
//! invariant), rate ≥ 1 always samples.
//!
//! Worker threads publish the context of the session they are executing
//! through a thread-local [`TraceScope`], which is how layers below the
//! observer seam (the group committer's fsync rounds in `ada-kdb`)
//! attribute their spans to the right session without any signature
//! changes on the mutator path.

use std::cell::RefCell;
use std::sync::Arc;

use ada_kdb::{Document, Value};

/// SplitMix64 finalizer: a bijective avalanche mix.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over the session name — the stable identity sampling keys on.
fn session_hash(session: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in session.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The sampling draw for `(seed, session)`: a uniform value in `[0, 1)`
/// with 53 bits of precision.
fn draw(seed: u64, session: &str) -> f64 {
    let z = mix(seed ^ session_hash(session).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    (z >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
}

/// A request-scoped trace identity: 128-bit trace id, originating span
/// id, and the sampling decision. Copyable and wire-encodable; absent
/// on the wire ≡ unsampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// High 64 bits of the 128-bit trace id.
    pub trace_hi: u64,
    /// Low 64 bits of the 128-bit trace id.
    pub trace_lo: u64,
    /// Id of the span that minted or last extended the context (the
    /// client submit span when the context arrived over the wire).
    pub span_id: u64,
    /// Whether this request records spans. An unsampled context
    /// propagates its identity but produces no trace document.
    pub sampled: bool,
}

impl TraceContext {
    /// The deterministic sampling decision for `(seed, session)` at
    /// `rate`: same inputs, same answer, forever. Rate 0 (or anything
    /// non-positive) never samples; rate ≥ 1 always samples.
    pub fn decision(seed: u64, session: &str, rate: f64) -> bool {
        draw(seed, session) < rate
    }

    /// Mints the context for one submission, or `None` when the
    /// deterministic decision at `rate` is "don't sample". The trace id
    /// is itself derived from `(seed, session)`, so a re-run of the
    /// same submission carries the same id — reproducibility extends to
    /// the traces.
    pub fn mint(seed: u64, session: &str, rate: f64) -> Option<Self> {
        if !Self::decision(seed, session, rate) {
            return None;
        }
        Some(Self::forced(seed, session))
    }

    /// A sampled context for `(seed, session)` regardless of rate — the
    /// slow-session log uses this to force tracing retroactively.
    pub fn forced(seed: u64, session: &str) -> Self {
        let base = seed ^ session_hash(session);
        Self {
            trace_hi: mix(base ^ 0x9e37_79b9_7f4a_7c15),
            trace_lo: mix(base.wrapping_add(0x2545_f491_4f6c_dd1d)),
            span_id: 1,
            sampled: true,
        }
    }

    /// The 128-bit trace id as 32 lowercase hex digits.
    pub fn trace_id_hex(&self) -> String {
        format!("{:016x}{:016x}", self.trace_hi, self.trace_lo)
    }

    /// The same trace viewed from a new span (identity and sampling
    /// unchanged).
    #[must_use]
    pub fn child(mut self, span_id: u64) -> Self {
        self.span_id = span_id;
        self
    }

    /// Encodes the context as a K-DB sub-document (the ADAN1 envelope
    /// field). `u64` halves travel as bit-cast `i64`s.
    pub fn to_doc(&self) -> Document {
        Document::new()
            .with("hi", self.trace_hi as i64)
            .with("lo", self.trace_lo as i64)
            .with("sampled", self.sampled)
            .with("span", self.span_id as i64)
    }

    /// Decodes a context from its wire sub-document. Any missing or
    /// mistyped field yields `None` — a mangled context degrades to
    /// "unsampled", never to an altered-but-valid identity.
    pub fn from_doc(doc: &Document) -> Option<Self> {
        let hi = doc.get("hi")?.as_i64()? as u64;
        let lo = doc.get("lo")?.as_i64()? as u64;
        let span = doc.get("span")?.as_i64()? as u64;
        let sampled = match doc.get("sampled")? {
            Value::Bool(b) => *b,
            _ => return None,
        };
        Some(Self {
            trace_hi: hi,
            trace_lo: lo,
            span_id: span,
            sampled,
        })
    }
}

thread_local! {
    /// The trace context of the session this thread is currently
    /// executing, if any.
    static CURRENT_TRACE: RefCell<Option<(Arc<str>, TraceContext)>> =
        const { RefCell::new(None) };
}

/// The calling thread's current `(session, context)`, as published by
/// the innermost live [`TraceScope`]. This is how code below the
/// observer seam (the group committer) attributes its spans.
pub fn current_trace() -> Option<(Arc<str>, TraceContext)> {
    CURRENT_TRACE.with(|cell| cell.borrow().clone())
}

/// RAII guard publishing a session's [`TraceContext`] on the calling
/// thread for the guard's lifetime. Nests: dropping restores whatever
/// was published before (worker threads never nest today, but tests
/// do).
#[derive(Debug)]
pub struct TraceScope {
    prev: Option<(Arc<str>, TraceContext)>,
}

impl TraceScope {
    /// Publishes `(session, ctx)` until the returned guard drops.
    pub fn enter(session: Arc<str>, ctx: TraceContext) -> Self {
        let prev = CURRENT_TRACE.with(|cell| cell.borrow_mut().replace((session, ctx)));
        Self { prev }
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|cell| {
            *cell.borrow_mut() = self.prev.take();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_per_seed_and_session() {
        for session in ["cohort-a", "cohort-b", "x"] {
            for seed in [0u64, 1, 0xdead_beef] {
                let first = TraceContext::decision(seed, session, 0.5);
                for _ in 0..10 {
                    assert_eq!(first, TraceContext::decision(seed, session, 0.5));
                }
                assert_eq!(
                    TraceContext::mint(seed, session, 0.5).is_some(),
                    first,
                    "mint agrees with the bare decision"
                );
            }
        }
    }

    #[test]
    fn rate_zero_never_samples_rate_one_always_samples() {
        for i in 0..200u64 {
            let session = format!("s{i}");
            assert!(!TraceContext::decision(7, &session, 0.0));
            assert!(!TraceContext::decision(7, &session, -1.0));
            assert!(TraceContext::decision(7, &session, 1.0));
            assert!(TraceContext::decision(7, &session, 2.0));
        }
    }

    #[test]
    fn mid_rate_splits_sessions_both_ways() {
        let sampled = (0..500u64)
            .filter(|i| TraceContext::decision(11, &format!("s{i}"), 0.5))
            .count();
        assert!(
            (100..400).contains(&sampled),
            "rate 0.5 sampled {sampled}/500"
        );
    }

    #[test]
    fn trace_ids_are_stable_and_distinct() {
        let a = TraceContext::forced(3, "alpha");
        let b = TraceContext::forced(3, "alpha");
        let c = TraceContext::forced(3, "beta");
        assert_eq!(a, b);
        assert_ne!((a.trace_hi, a.trace_lo), (c.trace_hi, c.trace_lo));
        assert_eq!(a.trace_id_hex().len(), 32);
        assert!(a.sampled);
    }

    #[test]
    fn doc_round_trip_and_malformed_decode() {
        let ctx = TraceContext::forced(42, "s").child(9);
        assert_eq!(TraceContext::from_doc(&ctx.to_doc()), Some(ctx));
        // Missing or mistyped fields degrade to None, never to a
        // different-but-valid context.
        assert_eq!(TraceContext::from_doc(&Document::new()), None);
        let mut doc = ctx.to_doc();
        doc.set("sampled", 1i64);
        assert_eq!(TraceContext::from_doc(&doc), None);
        let mut doc = ctx.to_doc();
        doc.remove("lo");
        assert_eq!(TraceContext::from_doc(&doc), None);
    }

    #[test]
    fn scope_publishes_and_restores() {
        assert!(current_trace().is_none());
        let outer = TraceContext::forced(1, "outer");
        {
            let _g = TraceScope::enter(Arc::from("outer"), outer);
            assert_eq!(current_trace().unwrap().1, outer);
            {
                let inner = TraceContext::forced(1, "inner");
                let _g2 = TraceScope::enter(Arc::from("inner"), inner);
                assert_eq!(&*current_trace().unwrap().0, "inner");
            }
            assert_eq!(&*current_trace().unwrap().0, "outer");
        }
        assert!(current_trace().is_none());
    }
}
