//! # ada-obs
//!
//! Observability for ADA-HEALTH analysis sessions.
//!
//! The paper frames ADA-HEALTH as a *service*: analysts submit datasets
//! and the system runs the seven-stage pipeline on their behalf. A
//! service needs to be answerable for what it did — which stages ran,
//! how long each took, how hard the mining kernels worked, and what
//! happened to a session that finished yesterday. This crate is that
//! answerability layer, in three pieces:
//!
//! * [`trace`] — a lock-free span/event tracer: per-thread ring
//!   buffers, a global atomic sequence for total ordering, monotonic
//!   timestamps, and parent/child span ids. Cheap enough to stay on
//!   during mining.
//! * [`context`] — request-scoped [`TraceContext`] identity
//!   (128-bit trace id + seeded-deterministic sampling) that crosses
//!   the ADAN1 wire and is published per worker thread via
//!   [`TraceScope`] so even the K-DB group committer can attribute its
//!   fsync rounds to the right session.
//! * [`hist`] — fixed-bucket log2 latency histograms giving p50/p90/p99
//!   without allocation, replacing total/count pair metrics.
//! * [`recorder`] — a bounded flight recorder that folds traces into
//!   per-session span trees, histograms and kernel counters, and on
//!   terminal state persists one document to the K-DB `sessions`
//!   collection so a restarted service can answer queries about past
//!   runs.
//! * [`export`] — deterministic JSON rendering of K-DB documents for
//!   the service `snapshot()` endpoint and the CI smoke gate.
//! * [`repl`] — lock-free `ada_repl_*`/`ada_fleet_*` collectors for
//!   journal replication and fleet routing (`ada-fleet` populates
//!   them; the families are pinned with every other exposition).
//!
//! Determinism is non-negotiable: tracing observes the pipeline through
//! the [`ada_core::control::PipelineObserver`] seam and never feeds
//! back into it, so clustering output is byte-identical with the
//! recorder on or off (property-tested in `tests/determinism.rs`).

#![warn(missing_docs)]

pub mod context;
pub mod export;
pub mod hist;
pub mod recorder;
pub mod repl;
pub mod stream;
pub mod trace;

pub use context::{current_trace, TraceContext, TraceScope};
pub use export::{document_to_json, value_to_json};
pub use hist::{HistogramSnapshot, Log2Histogram, NUM_BUCKETS};
pub use recorder::{
    past_sessions, past_traces, FlightRecorder, MARK_CANCELLED, MARK_DEGRADED, MARK_PERSIST_FAIL,
    MARK_PROMOTED, MARK_QUEUE_WAIT, MARK_REPL_APPLY, MARK_REPL_RESET, MARK_RETRY,
    MARK_SLOW_SESSION,
};
pub use repl::{FleetMetrics, FleetMetricsSnapshot, ReplMetrics, ReplMetricsSnapshot};
pub use stream::{StreamMetrics, StreamMetricsSnapshot};
pub use trace::{EventKind, TraceEvent, Tracer, PARENT_NONE};
