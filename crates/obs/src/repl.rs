//! Replication and fleet metrics: `ada_repl_*` / `ada_fleet_*` series.
//!
//! `ada-fleet` ships journal frames from a primary to a warm-standby
//! follower and routes sessions across servers; these collectors are
//! the observability half of that subsystem, kept here (rather than in
//! `ada-fleet`) so the family names are pinned alongside every other
//! exposition the system emits — the net-layer exposition test asserts
//! the exact combined `# TYPE` line set.
//!
//! Recording follows the established discipline: relaxed atomics only,
//! nothing on the hot path blocks. The repl tap records from inside
//! the journal mutex, so this is not optional politeness.

use std::sync::atomic::{AtomicU64, Ordering};

use ada_kdb::Document;

/// Lock-free counters for one replication link (primary→follower).
///
/// Either side may own the instance: a primary records the shipping
/// half, a follower the applying half, and an in-process harness that
/// drives both records everything into one collector.
#[derive(Debug, Default)]
pub struct ReplMetrics {
    frames_shipped: AtomicU64,
    bytes_shipped: AtomicU64,
    snapshots: AtomicU64,
    frames_applied: AtomicU64,
    rejects_gap: AtomicU64,
    rejects_corrupt: AtomicU64,
    source_durable: AtomicU64,
    follower_acked: AtomicU64,
}

impl ReplMetrics {
    /// A fresh, zeroed collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A journal frame left the primary (`bytes` = frame length).
    pub fn frame_shipped(&self, bytes: usize) {
        self.frames_shipped.fetch_add(1, Ordering::Relaxed);
        self.bytes_shipped
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// A full journal image was transferred (bootstrap or
    /// post-compaction reset).
    pub fn snapshot_shipped(&self, bytes: usize) {
        self.snapshots.fetch_add(1, Ordering::Relaxed);
        self.bytes_shipped
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// The follower verified and applied one frame.
    pub fn frame_applied(&self) {
        self.frames_applied.fetch_add(1, Ordering::Relaxed);
    }

    /// The follower detected a sequence gap (dropped or reordered
    /// frame) and refused the stream.
    pub fn gap_rejected(&self) {
        self.rejects_gap.fetch_add(1, Ordering::Relaxed);
    }

    /// The follower detected a corrupt frame (CRC/length/payload) and
    /// refused the stream.
    pub fn corrupt_rejected(&self) {
        self.rejects_corrupt.fetch_add(1, Ordering::Relaxed);
    }

    /// The primary's fsync-durable op watermark.
    pub fn set_source_durable(&self, ops: u64) {
        self.source_durable.fetch_max(ops, Ordering::Relaxed);
    }

    /// The follower's own fsync-acknowledged op watermark (what it
    /// acks back to the primary).
    pub fn set_follower_acked(&self, ops: u64) {
        self.follower_acked.fetch_max(ops, Ordering::Relaxed);
    }

    /// A point-in-time snapshot.
    pub fn snapshot(&self) -> ReplMetricsSnapshot {
        let frames_shipped = self.frames_shipped.load(Ordering::Relaxed);
        let frames_applied = self.frames_applied.load(Ordering::Relaxed);
        ReplMetricsSnapshot {
            frames_shipped,
            bytes_shipped: self.bytes_shipped.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            frames_applied,
            rejects_gap: self.rejects_gap.load(Ordering::Relaxed),
            rejects_corrupt: self.rejects_corrupt.load(Ordering::Relaxed),
            source_durable: self.source_durable.load(Ordering::Relaxed),
            follower_acked: self.follower_acked.load(Ordering::Relaxed),
            lag: frames_shipped.saturating_sub(frames_applied),
        }
    }
}

/// A frozen snapshot of [`ReplMetrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplMetricsSnapshot {
    /// Frames shipped to the follower.
    pub frames_shipped: u64,
    /// Total replication payload bytes shipped (frames + snapshots).
    pub bytes_shipped: u64,
    /// Full-image transfers (bootstrap and post-compaction resets).
    pub snapshots: u64,
    /// Frames the follower verified and applied.
    pub frames_applied: u64,
    /// Streams refused for a sequence gap.
    pub rejects_gap: u64,
    /// Streams refused for frame corruption.
    pub rejects_corrupt: u64,
    /// The primary's durable op watermark.
    pub source_durable: u64,
    /// The follower's acked (locally fsynced) op watermark.
    pub follower_acked: u64,
    /// Frames shipped but not yet applied.
    pub lag: u64,
}

impl ReplMetricsSnapshot {
    /// Total refused streams across reject reasons.
    pub fn rejects_total(&self) -> u64 {
        self.rejects_gap + self.rejects_corrupt
    }

    /// The snapshot as one K-DB document.
    pub fn to_document(&self) -> Document {
        let count = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
        Document::new()
            .with("frames_shipped", count(self.frames_shipped))
            .with("bytes_shipped", count(self.bytes_shipped))
            .with("snapshots", count(self.snapshots))
            .with("frames_applied", count(self.frames_applied))
            .with("rejects_gap", count(self.rejects_gap))
            .with("rejects_corrupt", count(self.rejects_corrupt))
            .with("source_durable", count(self.source_durable))
            .with("follower_acked", count(self.follower_acked))
            .with("lag", count(self.lag))
    }

    /// The snapshot as Prometheus text exposition (`ada_repl_*`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("# TYPE ada_repl_frames_shipped_total counter\n");
        out.push_str(&format!(
            "ada_repl_frames_shipped_total {}\n",
            self.frames_shipped
        ));
        out.push_str("# TYPE ada_repl_bytes_shipped_total counter\n");
        out.push_str(&format!(
            "ada_repl_bytes_shipped_total {}\n",
            self.bytes_shipped
        ));
        out.push_str("# TYPE ada_repl_snapshots_total counter\n");
        out.push_str(&format!("ada_repl_snapshots_total {}\n", self.snapshots));
        out.push_str("# TYPE ada_repl_frames_applied_total counter\n");
        out.push_str(&format!(
            "ada_repl_frames_applied_total {}\n",
            self.frames_applied
        ));
        out.push_str("# TYPE ada_repl_rejects_total counter\n");
        out.push_str(&format!(
            "ada_repl_rejects_total{{reason=\"gap\"}} {}\n",
            self.rejects_gap
        ));
        out.push_str(&format!(
            "ada_repl_rejects_total{{reason=\"corrupt\"}} {}\n",
            self.rejects_corrupt
        ));
        out.push_str("# TYPE ada_repl_source_durable_ops gauge\n");
        out.push_str(&format!(
            "ada_repl_source_durable_ops {}\n",
            self.source_durable
        ));
        out.push_str("# TYPE ada_repl_follower_acked_ops gauge\n");
        out.push_str(&format!(
            "ada_repl_follower_acked_ops {}\n",
            self.follower_acked
        ));
        out.push_str("# TYPE ada_repl_lag_ops gauge\n");
        out.push_str(&format!("ada_repl_lag_ops {}\n", self.lag));
        out
    }
}

/// Lock-free counters for the fleet router (session placement, health,
/// failover).
#[derive(Debug, Default)]
pub struct FleetMetrics {
    members: AtomicU64,
    routed_primary: AtomicU64,
    routed_follower: AtomicU64,
    busy_deferrals: AtomicU64,
    health_checks: AtomicU64,
    health_failures: AtomicU64,
    promotions: AtomicU64,
}

impl FleetMetrics {
    /// A fresh, zeroed collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current member count.
    pub fn set_members(&self, n: usize) {
        self.members.store(n as u64, Ordering::Relaxed);
    }

    /// A request was routed to a writable (primary) member.
    pub fn routed_primary(&self) {
        self.routed_primary.fetch_add(1, Ordering::Relaxed);
    }

    /// A read was routed to a read-only (follower) member.
    pub fn routed_follower(&self) {
        self.routed_follower.fetch_add(1, Ordering::Relaxed);
    }

    /// A `Busy` response deferred placement (load feedback).
    pub fn busy_deferral(&self) {
        self.busy_deferrals.fetch_add(1, Ordering::Relaxed);
    }

    /// One member health probe ran.
    pub fn health_check(&self) {
        self.health_checks.fetch_add(1, Ordering::Relaxed);
    }

    /// A member health probe failed.
    pub fn health_failure(&self) {
        self.health_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// A follower was promoted to primary.
    pub fn promotion(&self) {
        self.promotions.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time snapshot.
    pub fn snapshot(&self) -> FleetMetricsSnapshot {
        FleetMetricsSnapshot {
            members: self.members.load(Ordering::Relaxed),
            routed_primary: self.routed_primary.load(Ordering::Relaxed),
            routed_follower: self.routed_follower.load(Ordering::Relaxed),
            busy_deferrals: self.busy_deferrals.load(Ordering::Relaxed),
            health_checks: self.health_checks.load(Ordering::Relaxed),
            health_failures: self.health_failures.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
        }
    }
}

/// A frozen snapshot of [`FleetMetrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetMetricsSnapshot {
    /// Fleet members known to the router.
    pub members: u64,
    /// Requests routed to writable members.
    pub routed_primary: u64,
    /// Reads routed to follower members.
    pub routed_follower: u64,
    /// Placements deferred by `Busy` load feedback.
    pub busy_deferrals: u64,
    /// Health probes run.
    pub health_checks: u64,
    /// Health probes failed.
    pub health_failures: u64,
    /// Follower promotions performed.
    pub promotions: u64,
}

impl FleetMetricsSnapshot {
    /// The snapshot as one K-DB document.
    pub fn to_document(&self) -> Document {
        let count = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
        Document::new()
            .with("members", count(self.members))
            .with("routed_primary", count(self.routed_primary))
            .with("routed_follower", count(self.routed_follower))
            .with("busy_deferrals", count(self.busy_deferrals))
            .with("health_checks", count(self.health_checks))
            .with("health_failures", count(self.health_failures))
            .with("promotions", count(self.promotions))
    }

    /// The snapshot as Prometheus text exposition (`ada_fleet_*`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("# TYPE ada_fleet_members gauge\n");
        out.push_str(&format!("ada_fleet_members {}\n", self.members));
        out.push_str("# TYPE ada_fleet_routed_total counter\n");
        out.push_str(&format!(
            "ada_fleet_routed_total{{role=\"primary\"}} {}\n",
            self.routed_primary
        ));
        out.push_str(&format!(
            "ada_fleet_routed_total{{role=\"follower\"}} {}\n",
            self.routed_follower
        ));
        out.push_str("# TYPE ada_fleet_busy_deferrals_total counter\n");
        out.push_str(&format!(
            "ada_fleet_busy_deferrals_total {}\n",
            self.busy_deferrals
        ));
        out.push_str("# TYPE ada_fleet_health_checks_total counter\n");
        out.push_str(&format!(
            "ada_fleet_health_checks_total {}\n",
            self.health_checks
        ));
        out.push_str("# TYPE ada_fleet_health_failures_total counter\n");
        out.push_str(&format!(
            "ada_fleet_health_failures_total {}\n",
            self.health_failures
        ));
        out.push_str("# TYPE ada_fleet_promotions_total counter\n");
        out.push_str(&format!("ada_fleet_promotions_total {}\n", self.promotions));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repl_counters_aggregate_and_render() {
        let m = ReplMetrics::new();
        m.frame_shipped(48);
        m.frame_shipped(52);
        m.snapshot_shipped(640);
        m.frame_applied();
        m.gap_rejected();
        m.corrupt_rejected();
        m.set_source_durable(7);
        m.set_follower_acked(5);
        // Watermarks are monotonic: a stale report cannot move them back.
        m.set_follower_acked(3);

        let snap = m.snapshot();
        assert_eq!(snap.frames_shipped, 2);
        assert_eq!(snap.bytes_shipped, 48 + 52 + 640);
        assert_eq!(snap.snapshots, 1);
        assert_eq!(snap.frames_applied, 1);
        assert_eq!(snap.lag, 1);
        assert_eq!(snap.rejects_total(), 2);
        assert_eq!(snap.follower_acked, 5);

        let prom = snap.to_prometheus();
        assert!(prom.contains("ada_repl_frames_shipped_total 2"));
        assert!(prom.contains("ada_repl_rejects_total{reason=\"gap\"} 1"));
        assert!(prom.contains("ada_repl_lag_ops 1"));
        assert_eq!(
            snap.to_document()
                .get("follower_acked")
                .and_then(|v| v.as_i64()),
            Some(5)
        );
    }

    #[test]
    fn fleet_counters_aggregate_and_render() {
        let m = FleetMetrics::new();
        m.set_members(2);
        m.routed_primary();
        m.routed_primary();
        m.routed_follower();
        m.busy_deferral();
        m.health_check();
        m.health_failure();
        m.promotion();

        let snap = m.snapshot();
        assert_eq!(snap.members, 2);
        assert_eq!(snap.routed_primary, 2);
        assert_eq!(snap.promotions, 1);

        let prom = snap.to_prometheus();
        assert!(prom.contains("ada_fleet_members 2"));
        assert!(prom.contains("ada_fleet_routed_total{role=\"primary\"} 2"));
        assert!(prom.contains("ada_fleet_promotions_total 1"));
        assert_eq!(
            snap.to_document()
                .get("health_checks")
                .and_then(|v| v.as_i64()),
            Some(1)
        );
    }
}
