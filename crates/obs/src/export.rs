//! Rendering K-DB documents to interchange formats.
//!
//! The session documents the flight recorder writes are ordinary K-DB
//! [`Document`]s; operators and the service `snapshot()` endpoint want
//! them as JSON. A [`Document`] is an ordered map with a deterministic
//! encoding, so the JSON here is byte-stable for a stable document —
//! the CI smoke gate diffs exports across runs.

use ada_kdb::{Document, Value};

/// Renders a document as a compact JSON object (RFC 8259).
///
/// Non-finite floats have no JSON representation and render as `null`;
/// integers outside the f64-safe range are still emitted exactly (K-DB
/// `I64` is a distinct type, so no precision is lost on our side).
pub fn document_to_json(doc: &Document) -> String {
    let mut out = String::with_capacity(256);
    write_doc(doc, &mut out);
    out
}

/// Renders a standalone value as JSON.
pub fn value_to_json(value: &Value) -> String {
    let mut out = String::with_capacity(64);
    write_value(value, &mut out);
    out
}

fn write_doc(doc: &Document, out: &mut String) {
    out.push('{');
    let mut first = true;
    for (key, value) in doc.iter() {
        if !first {
            out.push(',');
        }
        first = false;
        write_string(key, out);
        out.push(':');
        write_value(value, out);
    }
    out.push('}');
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{x:?}` keeps a trailing `.0` on integral floats, so
                // the value re-parses as a float.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            let mut first = true;
            for item in items {
                if !first {
                    out.push(',');
                }
                first = false;
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Doc(doc) => write_doc(doc, out),
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_every_value_type() {
        let doc = Document::new()
            .with("s", "he said \"hi\"\n")
            .with("i", -42i64)
            .with("f", 1.5f64)
            .with("whole", 2.0f64)
            .with("b", true)
            .with("n", Value::Null)
            .with(
                "a",
                Value::Array(vec![Value::I64(1), Value::Str("x".into())]),
            )
            .with("d", Value::Doc(Document::new().with("k", 7i64)));
        let json = document_to_json(&doc);
        // Documents iterate in sorted key order, so the JSON is too.
        assert_eq!(
            json,
            r#"{"a":[1,"x"],"b":true,"d":{"k":7},"f":1.5,"i":-42,"n":null,"s":"he said \"hi\"\n","whole":2.0}"#
        );
    }

    #[test]
    fn non_finite_floats_render_null() {
        let doc = Document::new()
            .with("nan", f64::NAN)
            .with("inf", f64::INFINITY);
        assert_eq!(document_to_json(&doc), r#"{"inf":null,"nan":null}"#);
    }

    #[test]
    fn control_characters_escape() {
        assert_eq!(value_to_json(&Value::Str("\u{1}".into())), "\"\\u0001\"");
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            Document::new()
                .with("z", 1i64)
                .with("a", 2i64)
                .with("m", Value::Array(vec![Value::Bool(false)]))
        };
        assert_eq!(document_to_json(&build()), document_to_json(&build()));
    }
}
