//! Streaming-ingestion metrics: the `ada_stream_*` series.
//!
//! `ada-stream` folds live exam feeds through an incremental VSM and a
//! mini-batch miner; this collector is the observability half of that
//! subsystem, kept here (rather than in `ada-stream`) so the family
//! names are pinned alongside every other exposition the system emits —
//! the net-layer exposition test asserts the exact combined `# TYPE`
//! line set.
//!
//! Recording follows the established discipline: relaxed atomics only,
//! nothing on the ingest hot path blocks. One collector typically
//! aggregates every stream a service hosts; the per-stream breakdown
//! lives in each stream's status document instead.

use std::sync::atomic::{AtomicU64, Ordering};

use ada_kdb::Document;

/// Lock-free counters for streaming ingestion and incremental mining.
#[derive(Debug, Default)]
pub struct StreamMetrics {
    ingested: AtomicU64,
    reordered: AtomicU64,
    dropped: AtomicU64,
    windows_closed: AtomicU64,
    refits: AtomicU64,
    /// f64 bits of the most recent drift score.
    drift_score: AtomicU64,
}

impl StreamMetrics {
    /// A fresh, zeroed collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// `n` records were accepted into the reorder buffer.
    pub fn ingested(&self, n: u64) {
        self.ingested.fetch_add(n, Ordering::Relaxed);
    }

    /// A record arrived with a timestamp behind the newest one seen
    /// (out-of-order delivery absorbed by the reorder buffer).
    pub fn reordered(&self) {
        self.reordered.fetch_add(1, Ordering::Relaxed);
    }

    /// A record arrived behind the closed-window bound and was refused
    /// (too late for the watermark).
    pub fn dropped(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// A window's watermark passed: its records were folded and
    /// checkpointed.
    pub fn window_closed(&self) {
        self.windows_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// The miner ran a full (cold) re-fit instead of a warm mini-batch
    /// update.
    pub fn refit(&self) {
        self.refits.fetch_add(1, Ordering::Relaxed);
    }

    /// The drift score of the most recent model update (warm SSE per
    /// row over the last full fit's baseline).
    pub fn set_drift_score(&self, score: f64) {
        self.drift_score.store(score.to_bits(), Ordering::Relaxed);
    }

    /// A point-in-time snapshot.
    pub fn snapshot(&self) -> StreamMetricsSnapshot {
        StreamMetricsSnapshot {
            ingested: self.ingested.load(Ordering::Relaxed),
            reordered: self.reordered.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            windows_closed: self.windows_closed.load(Ordering::Relaxed),
            refits: self.refits.load(Ordering::Relaxed),
            drift_score: f64::from_bits(self.drift_score.load(Ordering::Relaxed)),
        }
    }
}

/// A frozen snapshot of [`StreamMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamMetricsSnapshot {
    /// Records accepted into the reorder buffer.
    pub ingested: u64,
    /// Out-of-order arrivals absorbed within the lateness bound.
    pub reordered: u64,
    /// Arrivals refused as later than the closed-window bound.
    pub dropped: u64,
    /// Windows whose watermark passed (folded + checkpointed).
    pub windows_closed: u64,
    /// Full re-fits (first fits, drift escalations, forced re-fits).
    pub refits: u64,
    /// Most recent drift score (0 until a warm update has run).
    pub drift_score: f64,
}

impl StreamMetricsSnapshot {
    /// The snapshot as one K-DB document.
    pub fn to_document(&self) -> Document {
        let count = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
        Document::new()
            .with("ingested", count(self.ingested))
            .with("reordered", count(self.reordered))
            .with("dropped", count(self.dropped))
            .with("windows_closed", count(self.windows_closed))
            .with("refits", count(self.refits))
            .with("drift_score", self.drift_score)
    }

    /// The snapshot as Prometheus text exposition (`ada_stream_*`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(512);
        for (metric, value) in [
            ("ada_stream_ingested_total", self.ingested),
            ("ada_stream_reordered_total", self.reordered),
            ("ada_stream_dropped_total", self.dropped),
            ("ada_stream_windows_closed_total", self.windows_closed),
            ("ada_stream_refits_total", self.refits),
        ] {
            out.push_str(&format!("# TYPE {metric} counter\n{metric} {value}\n"));
        }
        out.push_str("# TYPE ada_stream_drift_score gauge\n");
        out.push_str(&format!("ada_stream_drift_score {}\n", self.drift_score));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = StreamMetrics::new();
        m.ingested(10);
        m.ingested(5);
        m.reordered();
        m.dropped();
        m.dropped();
        m.window_closed();
        m.refit();
        m.set_drift_score(1.25);
        let snap = m.snapshot();
        assert_eq!(snap.ingested, 15);
        assert_eq!(snap.reordered, 1);
        assert_eq!(snap.dropped, 2);
        assert_eq!(snap.windows_closed, 1);
        assert_eq!(snap.refits, 1);
        assert!((snap.drift_score - 1.25).abs() < 1e-12);
    }

    #[test]
    fn renders_document_and_pinned_families() {
        let m = StreamMetrics::new();
        m.ingested(3);
        m.set_drift_score(0.5);
        let snap = m.snapshot();
        let doc = snap.to_document();
        assert_eq!(doc.get("ingested").unwrap().as_i64(), Some(3));
        assert_eq!(doc.get("drift_score").unwrap().as_f64(), Some(0.5));
        let prom = snap.to_prometheus();
        for family in [
            "# TYPE ada_stream_ingested_total counter",
            "# TYPE ada_stream_reordered_total counter",
            "# TYPE ada_stream_dropped_total counter",
            "# TYPE ada_stream_windows_closed_total counter",
            "# TYPE ada_stream_refits_total counter",
            "# TYPE ada_stream_drift_score gauge",
        ] {
            assert!(prom.contains(family), "missing family: {family}");
        }
        assert!(prom.contains("ada_stream_ingested_total 3\n"));
        assert!(prom.contains("ada_stream_drift_score 0.5\n"));
    }
}
