//! The bounded flight recorder: session-scoped span trees, per-stage
//! latency histograms, kernel counters, and a capped recent-event log,
//! persisted to the K-DB `sessions` collection on terminal state.
//!
//! A [`FlightRecorder`] sits behind the [`PipelineObserver`] seam of
//! `ada-core`: stage events become children of a per-session root span,
//! sub-span events (partial-mining rungs, optimizer sweep points)
//! become children of the current stage span, and counter events
//! accumulate into a per-session counter table. Transport is the
//! lock-free [`Tracer`] — observer callbacks only take the recorder's
//! bookkeeping mutex at stage/rung granularity, never inside kernel
//! loops.
//!
//! On a session's terminal state, [`FlightRecorder::finalize`] folds
//! everything into one K-DB [`Document`] matching
//! [`ada_kdb::schema::validate_session_doc`]: a `spans` array in
//! deterministic pre-order (children sorted by `(name, seq)`, parents
//! always at earlier indexes), a `stages` array of histogram quantiles,
//! and a `counters` sub-document. The document is stable across runs
//! modulo timestamps, so a restarted service can diff past sessions.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use ada_core::control::{PipelineObserver, PipelineStage};
use ada_kdb::schema;
use ada_kdb::{DocId, Document, KdbError, KdbRead, KdbWrite, Value};
use parking_lot::Mutex;

use crate::context::TraceContext;
use crate::hist::Log2Histogram;
use crate::trace::{EventKind, TraceEvent, Tracer, PARENT_NONE};

/// Mark name for time a job spent queued before a worker picked it up.
pub const MARK_QUEUE_WAIT: &str = "queue_wait";
/// Mark name for a retry of a failed run.
pub const MARK_RETRY: &str = "retry";
/// Mark name for an observed cancellation request.
pub const MARK_CANCELLED: &str = "cancel_requested";
/// Mark name for a terminal session record that failed to persist to
/// the K-DB (best-effort write lost — the flight recorder is then the
/// only trace of the session).
pub const MARK_PERSIST_FAIL: &str = "persist_fail";
/// Mark name for the service entering degraded read-only mode after
/// repeated journal faults.
pub const MARK_DEGRADED: &str = "degraded";
/// Mark name for a session whose wall time crossed the slow-session
/// threshold (p99-derived); its trace is forced retroactively.
pub const MARK_SLOW_SESSION: &str = "slow_session";
/// Mark name for a batch of replicated journal frames applied by a
/// follower (the duration covers verify + apply + local journaling).
pub const MARK_REPL_APPLY: &str = "repl_apply";
/// Mark name for a replication stream reset (bootstrap or
/// post-compaction full-image transfer).
pub const MARK_REPL_RESET: &str = "repl_reset";
/// Mark name for a follower promoted to primary at its acked
/// watermark.
pub const MARK_PROMOTED: &str = "promoted";

/// Producer-side parentage bookkeeping for one in-flight session.
struct LiveSession {
    label: Arc<str>,
    root: u64,
    stage: Option<(PipelineStage, u64)>,
    open: Vec<(PipelineStage, Arc<str>, u64)>,
}

/// One span reconstructed from Start/End events.
struct SpanRec {
    name: Arc<str>,
    parent: u64,
    seq: u64,
    start_ns: u64,
    dur_ns: Option<u64>,
}

/// Everything folded so far for one session.
struct SessionRec {
    events: VecDeque<TraceEvent>,
    spans: BTreeMap<u64, SpanRec>,
    /// Per-span attributes from [`EventKind::Annotate`] events (fsync
    /// batch sizes, leader role, wire span ids). Replace semantics.
    span_attrs: BTreeMap<u64, BTreeMap<&'static str, u64>>,
    root: Option<u64>,
    stage_hist: [Log2Histogram; PipelineStage::ALL.len()],
    counters: BTreeMap<&'static str, u64>,
    queue_wait_ns: u64,
    retries: u64,
}

impl Default for SessionRec {
    fn default() -> Self {
        Self {
            events: VecDeque::new(),
            spans: BTreeMap::new(),
            span_attrs: BTreeMap::new(),
            root: None,
            stage_hist: std::array::from_fn(|_| Log2Histogram::new()),
            counters: BTreeMap::new(),
            queue_wait_ns: 0,
            retries: 0,
        }
    }
}

/// The session flight recorder (see the module docs).
pub struct FlightRecorder {
    tracer: Tracer,
    /// Last-N cap on the per-session recent-event log.
    capacity: usize,
    root_name: Arc<str>,
    counters_name: Arc<str>,
    live: Mutex<HashMap<String, LiveSession>>,
    folded: Mutex<HashMap<String, SessionRec>>,
    /// Registered trace contexts by session: `(context, forced)`.
    traces: Mutex<HashMap<String, (TraceContext, bool)>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(512)
    }
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events per session (the
    /// span tree, histograms, and counters are folded from *all*
    /// events; only the raw recent-event log is capped).
    pub fn new(capacity: usize) -> Self {
        Self {
            tracer: Tracer::new(8192),
            capacity: capacity.max(1),
            root_name: Arc::from("session"),
            counters_name: Arc::from("counters"),
            live: Mutex::new(HashMap::new()),
            folded: Mutex::new(HashMap::new()),
            traces: Mutex::new(HashMap::new()),
        }
    }

    /// The underlying tracer (tests and the service snapshot use it).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Total events lost to ring overflow so far.
    pub fn dropped(&self) -> u64 {
        self.tracer.dropped()
    }

    /// Records a service-level point event for `session` —
    /// [`MARK_QUEUE_WAIT`] (with the wait as the duration),
    /// [`MARK_RETRY`], [`MARK_CANCELLED`].
    pub fn mark(&self, session: &str, name: &str, duration: Duration) {
        let label: Arc<str> = Arc::from(session);
        let name: Arc<str> = Arc::from(name);
        self.tracer.emit(
            &label,
            None,
            &name,
            EventKind::Mark {
                dur_ns: u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX),
            },
        );
    }

    /// Registers the [`TraceContext`] under which `session` runs. A
    /// sampled, non-forced context (one that arrived with the
    /// submission) also records a root-parented `client_submit` span
    /// carrying the wire span id, so the persisted trace links back to
    /// the span that minted the context on the client. Re-registering
    /// an already-known session only updates the context.
    pub fn set_trace(&self, session: &str, ctx: TraceContext, forced: bool) {
        let fresh = self
            .traces
            .lock()
            .insert(session.to_string(), (ctx, forced))
            .is_none();
        if fresh && ctx.sampled && !forced {
            self.trace_annotation(
                session,
                "client_submit",
                Duration::ZERO,
                &[("wire_span_id", ctx.span_id)],
            );
        }
    }

    /// Whether a trace context is registered for `session`.
    pub fn has_trace(&self, session: &str) -> bool {
        self.traces.lock().contains_key(session)
    }

    /// The registered `(context, forced)` pair for `session`, if any.
    pub fn trace(&self, session: &str) -> Option<(TraceContext, bool)> {
        self.traces.lock().get(session).copied()
    }

    /// Records a root-parented span for `session` with attached
    /// attributes — the group committer's fsync rounds and the net
    /// server's decode step report through here. The span is stamped at
    /// report time with the measured `duration`; `attrs` are stable
    /// `(name, value)` pairs with replace semantics.
    pub fn trace_annotation(
        &self,
        session: &str,
        name: &str,
        duration: Duration,
        attrs: &[(&'static str, u64)],
    ) {
        let mut live = self.live.lock();
        let entry = self.live_entry(&mut live, session);
        let span = self.tracer.next_span_id();
        let root = entry.root;
        let label = Arc::clone(&entry.label);
        drop(live);
        let name: Arc<str> = Arc::from(name);
        self.tracer
            .emit(&label, None, &name, EventKind::Start { span, parent: root });
        if !attrs.is_empty() {
            self.tracer.emit(
                &label,
                None,
                &name,
                EventKind::Annotate {
                    span,
                    pairs: attrs.to_vec(),
                },
            );
        }
        self.tracer.emit(
            &label,
            None,
            &name,
            EventKind::End {
                span,
                dur_ns: u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX),
            },
        );
    }

    fn live_entry<'a>(
        &self,
        map: &'a mut HashMap<String, LiveSession>,
        session: &str,
    ) -> &'a mut LiveSession {
        if !map.contains_key(session) {
            let label: Arc<str> = Arc::from(session);
            let root = self.tracer.next_span_id();
            self.tracer.emit(
                &label,
                None,
                &self.root_name,
                EventKind::Start {
                    span: root,
                    parent: PARENT_NONE,
                },
            );
            map.insert(
                session.to_string(),
                LiveSession {
                    label,
                    root,
                    stage: None,
                    open: Vec::new(),
                },
            );
        }
        map.get_mut(session).expect("just inserted")
    }

    /// Drains the tracer and folds every drained event into the
    /// per-session records. Cheap when nothing is pending; called by
    /// the accessors and by [`FlightRecorder::finalize`].
    pub fn sync(&self) {
        let drained = self.tracer.drain();
        if drained.is_empty() {
            return;
        }
        let mut folded = self.folded.lock();
        for event in drained {
            let rec = folded.entry(event.session.to_string()).or_default();
            match &event.kind {
                EventKind::Start { span, parent } => {
                    if *parent == PARENT_NONE {
                        rec.root = Some(*span);
                    }
                    rec.spans.insert(
                        *span,
                        SpanRec {
                            name: Arc::clone(&event.name),
                            parent: *parent,
                            seq: event.seq,
                            start_ns: event.t_ns,
                            dur_ns: None,
                        },
                    );
                }
                EventKind::End { span, dur_ns } => {
                    if let Some(span) = rec.spans.get_mut(span) {
                        span.dur_ns = Some(*dur_ns);
                    }
                    if let Some(stage) = event.stage {
                        rec.stage_hist[stage.index()].record(*dur_ns);
                    }
                }
                EventKind::Mark { dur_ns } => match &*event.name {
                    MARK_QUEUE_WAIT => rec.queue_wait_ns += dur_ns,
                    MARK_RETRY => rec.retries += 1,
                    _ => {}
                },
                EventKind::Counters { pairs } => {
                    for (key, value) in pairs {
                        *rec.counters.entry(key).or_default() += value;
                    }
                }
                EventKind::Annotate { span, pairs } => {
                    let attrs = rec.span_attrs.entry(*span).or_default();
                    for (key, value) in pairs {
                        attrs.insert(key, *value);
                    }
                }
            }
            rec.events.push_back(event);
            while rec.events.len() > self.capacity {
                rec.events.pop_front();
            }
        }
    }

    /// The capped recent-event log for `session`, in sequence order.
    pub fn recent_events(&self, session: &str) -> Vec<TraceEvent> {
        self.sync();
        self.folded
            .lock()
            .get(session)
            .map(|rec| rec.events.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// The folded kernel counters for `session` so far.
    pub fn session_counters(&self, session: &str) -> BTreeMap<&'static str, u64> {
        self.sync();
        self.folded
            .lock()
            .get(session)
            .map(|rec| rec.counters.clone())
            .unwrap_or_default()
    }

    /// Folds everything recorded for `session` into its terminal K-DB
    /// document and forgets the session. `state` must be one of
    /// [`schema::SESSION_TERMINAL_STATES`] for the document to pass
    /// validation; `outcome` is a free-form detail string (empty to
    /// omit).
    pub fn finalize(&self, session: &str, state: &str, outcome: &str) -> Document {
        self.finalize_with_trace(session, state, outcome).0
    }

    /// [`FlightRecorder::finalize`], also yielding the terminal *trace*
    /// document when a sampled [`TraceContext`] was registered for
    /// `session` (matching [`ada_kdb::schema::validate_trace_doc`]).
    /// The session is forgotten either way.
    pub fn finalize_with_trace(
        &self,
        session: &str,
        state: &str,
        outcome: &str,
    ) -> (Document, Option<Document>) {
        self.sync();
        self.live.lock().remove(session);
        let rec = self.folded.lock().remove(session).unwrap_or_default();
        let trace = self.traces.lock().remove(session);
        let dropped = self.tracer.dropped();
        let session_doc = build_session_doc(session, state, outcome, &rec, dropped);
        let trace_doc = trace
            .filter(|(ctx, _)| ctx.sampled)
            .map(|(ctx, forced)| build_trace_doc(session, state, &ctx, forced, &rec, dropped));
        (session_doc, trace_doc)
    }

    /// [`FlightRecorder::finalize`] + validated insert into the
    /// `sessions` collection — and, when a sampled trace context was
    /// registered, into the `traces` collection too. Returns the
    /// session document id and the session document.
    ///
    /// # Errors
    /// Returns [`KdbError::Schema`] on a malformed record, otherwise
    /// store errors.
    pub fn persist<W: KdbWrite + ?Sized>(
        &self,
        db: &mut W,
        session: &str,
        state: &str,
        outcome: &str,
    ) -> Result<(DocId, Document), KdbError> {
        let (doc, trace_doc) = self.finalize_with_trace(session, state, outcome);
        let id = schema::insert_session_record(db, doc.clone())?;
        if let Some(trace) = trace_doc {
            schema::insert_trace_record(db, trace)?;
        }
        Ok((id, doc))
    }
}

/// All session records currently persisted in `db`, in insertion order.
/// This is how a restarted service answers queries about past runs.
pub fn past_sessions<R: KdbRead + ?Sized>(db: &R) -> Vec<(DocId, Document)> {
    let Some(coll) = db.collection(schema::names::SESSIONS) else {
        return Vec::new();
    };
    let mut rows: Vec<(DocId, Document)> = coll.iter().map(|(id, d)| (id, d.clone())).collect();
    rows.sort_by_key(|(id, _)| *id);
    rows
}

/// Trace records persisted in `db`, in insertion order, optionally
/// filtered to one session. Backs the `TraceQuery` wire message.
pub fn past_traces<R: KdbRead + ?Sized>(db: &R, session: Option<&str>) -> Vec<(DocId, Document)> {
    let Some(coll) = db.collection(schema::names::TRACES) else {
        return Vec::new();
    };
    let mut rows: Vec<(DocId, Document)> = coll
        .iter()
        .filter(|(_, d)| match session {
            Some(wanted) => d.get("session").and_then(|v| v.as_str()) == Some(wanted),
            None => true,
        })
        .map(|(id, d)| (id, d.clone()))
        .collect();
    rows.sort_by_key(|(id, _)| *id);
    rows
}

/// Folds a session's reconstructed spans into the deterministic
/// `spans` array shared by session and trace documents: pre-order DFS
/// from the root with children sorted by `(name, seq)`, so parent
/// indexes always point at earlier array positions. Spans that were
/// annotated carry an `attrs` sub-document.
fn build_span_array(rec: &SessionRec) -> Vec<Value> {
    let mut spans = Vec::new();
    let Some(root) = rec.root else {
        return spans;
    };
    let base = rec.spans.get(&root).map(|s| s.start_ns).unwrap_or(0);
    // The root closes at finalize: its duration is the extent of
    // its deepest-reaching descendant.
    let extent = rec
        .spans
        .values()
        .map(|s| (s.start_ns.saturating_sub(base)) + s.dur_ns.unwrap_or(0))
        .max()
        .unwrap_or(0);
    // Child spans grouped by parent id as `(name, seq, span id)`.
    type ChildIndex<'a> = BTreeMap<u64, Vec<(&'a Arc<str>, u64, u64)>>;
    let mut children: ChildIndex<'_> = BTreeMap::new();
    for (&id, span) in &rec.spans {
        if id != root {
            children
                .entry(span.parent)
                .or_default()
                .push((&span.name, span.seq, id));
        }
    }
    for list in children.values_mut() {
        list.sort_by(|a, b| a.0.cmp(b.0).then(a.1.cmp(&b.1)));
    }
    let mut stack: Vec<(u64, i64)> = vec![(root, -1)];
    while let Some((id, parent_idx)) = stack.pop() {
        let Some(span) = rec.spans.get(&id) else {
            continue;
        };
        let idx = spans.len() as i64;
        let dur = if id == root {
            span.dur_ns.unwrap_or(extent)
        } else {
            span.dur_ns.unwrap_or(0)
        };
        let mut span_doc = Document::new()
            .with("name", &*span.name)
            .with("parent", parent_idx)
            .with(
                "start_ns",
                i64::try_from(span.start_ns.saturating_sub(base)).unwrap_or(i64::MAX),
            )
            .with("dur_ns", i64::try_from(dur).unwrap_or(i64::MAX));
        if let Some(attrs) = rec.span_attrs.get(&id) {
            let mut attr_doc = Document::new();
            for (&key, &value) in attrs {
                attr_doc.set(key, i64::try_from(value).unwrap_or(i64::MAX));
            }
            span_doc = span_doc.with("attrs", Value::Doc(attr_doc));
        }
        spans.push(Value::Doc(span_doc));
        if let Some(kids) = children.get(&id) {
            // Reversed so the (name, seq)-smallest child pops first.
            for &(_, _, kid) in kids.iter().rev() {
                stack.push((kid, idx));
            }
        }
    }
    spans
}

/// Builds the terminal session document (see the module docs for the
/// shape).
fn build_session_doc(
    session: &str,
    state: &str,
    outcome: &str,
    rec: &SessionRec,
    dropped: u64,
) -> Document {
    let spans = build_span_array(rec);

    let mut stages = Vec::new();
    for stage in PipelineStage::ALL {
        let snap = rec.stage_hist[stage.index()].snapshot();
        if snap.count == 0 {
            continue;
        }
        let as_i64 = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
        stages.push(Value::Doc(
            Document::new()
                .with("stage", stage.name())
                .with("count", as_i64(snap.count))
                .with("sum_ns", as_i64(snap.sum))
                .with("p50_ns", as_i64(snap.p50()))
                .with("p90_ns", as_i64(snap.p90()))
                .with("p99_ns", as_i64(snap.p99())),
        ));
    }

    let mut counters = Document::new();
    for (&key, &value) in &rec.counters {
        counters.set(key, i64::try_from(value).unwrap_or(i64::MAX));
    }

    let as_i64 = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
    let mut doc = Document::new()
        .with("session", session)
        .with("state", state)
        .with("queue_wait_ns", as_i64(rec.queue_wait_ns))
        .with("retries", as_i64(rec.retries))
        .with("events_dropped", as_i64(dropped))
        .with("spans", Value::Array(spans))
        .with("stages", Value::Array(stages))
        .with("counters", Value::Doc(counters));
    if !outcome.is_empty() {
        doc = doc.with("outcome", outcome);
    }
    doc
}

/// Builds the terminal trace document for a sampled session (matching
/// [`ada_kdb::schema::validate_trace_doc`]): the same deterministic
/// span tree as the session document, keyed by the 128-bit trace id.
fn build_trace_doc(
    session: &str,
    state: &str,
    ctx: &TraceContext,
    forced: bool,
    rec: &SessionRec,
    dropped: u64,
) -> Document {
    Document::new()
        .with("session", session)
        .with("trace_id", ctx.trace_id_hex().as_str())
        .with("state", state)
        .with("forced", forced)
        .with("events_dropped", i64::try_from(dropped).unwrap_or(i64::MAX))
        .with("spans", Value::Array(build_span_array(rec)))
}

impl PipelineObserver for FlightRecorder {
    fn on_stage_start(&self, session: &str, stage: PipelineStage) {
        let mut live = self.live.lock();
        let entry = self.live_entry(&mut live, session);
        let span = self.tracer.next_span_id();
        let root = entry.root;
        let label = Arc::clone(&entry.label);
        entry.stage = Some((stage, span));
        drop(live);
        self.tracer.emit(
            &label,
            Some(stage),
            &Arc::from(stage.name()),
            EventKind::Start { span, parent: root },
        );
    }

    fn on_stage_end(&self, session: &str, stage: PipelineStage, elapsed: Duration) {
        let mut live = self.live.lock();
        let Some(entry) = live.get_mut(session) else {
            return;
        };
        if !matches!(entry.stage, Some((s, _)) if s == stage) {
            return;
        }
        let (_, span) = entry.stage.take().expect("matched above");
        let label = Arc::clone(&entry.label);
        drop(live);
        self.tracer.emit(
            &label,
            Some(stage),
            &Arc::from(stage.name()),
            EventKind::End {
                span,
                dur_ns: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
            },
        );
    }

    fn on_span_start(&self, session: &str, stage: PipelineStage, name: &str) {
        let mut live = self.live.lock();
        let entry = self.live_entry(&mut live, session);
        let parent = match entry.stage {
            Some((s, span)) if s == stage => span,
            _ => entry.root,
        };
        let span = self.tracer.next_span_id();
        let name: Arc<str> = Arc::from(name);
        entry.open.push((stage, Arc::clone(&name), span));
        let label = Arc::clone(&entry.label);
        drop(live);
        self.tracer.emit(
            &label,
            Some(stage),
            &name,
            EventKind::Start { span, parent },
        );
    }

    fn on_span_end(&self, session: &str, stage: PipelineStage, name: &str, elapsed: Duration) {
        let mut live = self.live.lock();
        let Some(entry) = live.get_mut(session) else {
            return;
        };
        // Open sub-span names of one session are distinct at any
        // instant (the observer contract), so last-match pairing is
        // exact.
        let Some(pos) = entry
            .open
            .iter()
            .rposition(|(s, n, _)| *s == stage && **n == *name)
        else {
            return;
        };
        let (_, name, span) = entry.open.remove(pos);
        let label = Arc::clone(&entry.label);
        drop(live);
        self.tracer.emit(
            &label,
            Some(stage),
            &name,
            EventKind::End {
                span,
                dur_ns: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
            },
        );
    }

    fn on_counters(&self, session: &str, stage: PipelineStage, counters: &[(&'static str, u64)]) {
        let label: Arc<str> = Arc::from(session);
        self.tracer.emit(
            &label,
            Some(stage),
            &self.counters_name,
            EventKind::Counters {
                pairs: counters.to_vec(),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_kdb::Kdb;

    fn drive_one_session(rec: &FlightRecorder, session: &str) {
        rec.mark(session, MARK_QUEUE_WAIT, Duration::from_micros(150));
        rec.on_stage_start(session, PipelineStage::Characterize);
        rec.on_stage_end(
            session,
            PipelineStage::Characterize,
            Duration::from_micros(40),
        );
        rec.on_stage_start(session, PipelineStage::Optimize);
        for k in [4, 8] {
            let name = format!("sweep:k={k}");
            rec.on_span_start(session, PipelineStage::Optimize, &name);
            rec.on_counters(
                session,
                PipelineStage::Optimize,
                &[("iterations", 3), ("distance_evals", 120)],
            );
            rec.on_span_end(
                session,
                PipelineStage::Optimize,
                &name,
                Duration::from_micros(90),
            );
        }
        rec.on_stage_end(session, PipelineStage::Optimize, Duration::from_micros(220));
    }

    #[test]
    fn session_folds_into_a_valid_document() {
        let rec = FlightRecorder::new(128);
        drive_one_session(&rec, "s1");
        let doc = rec.finalize("s1", "completed", "ok");
        schema::validate_session_doc(&doc).unwrap();

        let spans = doc.get("spans").unwrap().as_array().unwrap();
        // root + 2 stages + 2 sweep points.
        assert_eq!(spans.len(), 5);
        let names: Vec<&str> = spans
            .iter()
            .map(|s| s.as_doc().unwrap().get("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(names[0], "session");
        // Children of the root sort by name: characterize < optimize.
        assert_eq!(names[1], "characterize");
        assert_eq!(names[2], "optimize");
        assert_eq!(names[3], "sweep:k=4");
        assert_eq!(names[4], "sweep:k=8");
        // Sweep spans parent to the optimize stage span (index 2).
        for sweep in &spans[3..] {
            assert_eq!(
                sweep.as_doc().unwrap().get("parent").unwrap().as_i64(),
                Some(2)
            );
        }

        let counters = doc.get("counters").unwrap().as_doc().unwrap();
        assert_eq!(counters.get("iterations").unwrap().as_i64(), Some(6));
        assert_eq!(counters.get("distance_evals").unwrap().as_i64(), Some(240));

        assert_eq!(
            doc.get("queue_wait_ns").unwrap().as_i64(),
            Some(150_000),
            "queue-wait mark folds into the document"
        );

        let stages = doc.get("stages").unwrap().as_array().unwrap();
        let stage_names: Vec<&str> = stages
            .iter()
            .map(|s| s.as_doc().unwrap().get("stage").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(stage_names, vec!["characterize", "optimize"]);
        // Optimize closed 3 spans: the stage itself and two sweeps.
        assert_eq!(
            stages[1].as_doc().unwrap().get("count").unwrap().as_i64(),
            Some(3)
        );
    }

    #[test]
    fn document_is_stable_across_identical_runs_modulo_timestamps() {
        let strip_times = |doc: &Document| {
            let mut out = String::new();
            let spans = doc.get("spans").unwrap().as_array().unwrap();
            for span in spans {
                let span = span.as_doc().unwrap();
                out.push_str(span.get("name").unwrap().as_str().unwrap());
                out.push(':');
                out.push_str(&span.get("parent").unwrap().as_i64().unwrap().to_string());
                out.push(';');
            }
            out.push('|');
            out.push_str(
                doc.get("counters")
                    .unwrap()
                    .as_doc()
                    .unwrap()
                    .encode()
                    .as_str(),
            );
            out
        };
        let doc_a = {
            let rec = FlightRecorder::new(128);
            drive_one_session(&rec, "s");
            rec.finalize("s", "completed", "")
        };
        let doc_b = {
            let rec = FlightRecorder::new(128);
            drive_one_session(&rec, "s");
            rec.finalize("s", "completed", "")
        };
        assert_eq!(strip_times(&doc_a), strip_times(&doc_b));
    }

    #[test]
    fn persist_and_query_past_sessions() {
        let mut db = Kdb::in_memory();
        schema::init_schema(&mut db).unwrap();
        let rec = FlightRecorder::new(128);
        drive_one_session(&rec, "a");
        drive_one_session(&rec, "b");
        rec.persist(&mut db, "a", "completed", "").unwrap();
        rec.persist(&mut db, "b", "failed", "deadline").unwrap();

        let past = past_sessions(&db);
        assert_eq!(past.len(), 2);
        let states: Vec<&str> = past
            .iter()
            .map(|(_, d)| d.get("state").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(states, vec!["completed", "failed"]);
        assert_eq!(past[1].1.get("outcome").unwrap().as_str(), Some("deadline"));
    }

    #[test]
    fn event_log_is_capped_but_aggregates_are_not() {
        let rec = FlightRecorder::new(4);
        for i in 0..50 {
            rec.on_counters(
                "s",
                PipelineStage::PartialMining,
                &[("rows_scanned", i as u64)],
            );
        }
        assert_eq!(rec.recent_events("s").len(), 4, "log capped at capacity");
        let total: u64 = (0..50).sum();
        assert_eq!(rec.session_counters("s")["rows_scanned"], total);
    }

    #[test]
    fn empty_session_still_yields_a_valid_terminal_document() {
        let rec = FlightRecorder::new(8);
        let doc = rec.finalize("ghost", "cancelled", "cancelled before start");
        schema::validate_session_doc(&doc).unwrap();
        assert!(doc.get("spans").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn unmatched_stage_end_is_ignored() {
        let rec = FlightRecorder::new(8);
        rec.on_stage_end("s", PipelineStage::Navigation, Duration::from_nanos(5));
        assert!(rec.recent_events("s").is_empty());
    }

    #[test]
    fn sampled_trace_folds_into_a_valid_trace_document() {
        let rec = FlightRecorder::new(128);
        let ctx = TraceContext::forced(7, "t1").child(42);
        rec.set_trace("t1", ctx, false);
        drive_one_session(&rec, "t1");
        rec.trace_annotation(
            "t1",
            "fsync_round",
            Duration::from_micros(80),
            &[
                ("batch", 4),
                ("leader", 1),
                ("wait_ns", 20),
                ("fsync_ns", 60),
            ],
        );
        let (session_doc, trace_doc) = rec.finalize_with_trace("t1", "completed", "ok");
        schema::validate_session_doc(&session_doc).unwrap();
        let trace_doc = trace_doc.expect("sampled context yields a trace doc");
        schema::validate_trace_doc(&trace_doc).unwrap();

        assert_eq!(
            trace_doc.get("trace_id").unwrap().as_str(),
            Some(ctx.trace_id_hex().as_str())
        );
        assert_eq!(trace_doc.get("forced").unwrap(), &Value::Bool(false));
        let spans = trace_doc.get("spans").unwrap().as_array().unwrap();
        let mut by_name: HashMap<&str, &Document> = HashMap::new();
        for span in spans {
            let span = span.as_doc().unwrap();
            by_name.insert(span.get("name").unwrap().as_str().unwrap(), span);
        }
        // The client submit span carries the wire span id it arrived with.
        let submit = by_name["client_submit"];
        assert_eq!(submit.get("parent").unwrap().as_i64(), Some(0));
        let attrs = submit.get("attrs").unwrap().as_doc().unwrap();
        assert_eq!(attrs.get("wire_span_id").unwrap().as_i64(), Some(42));
        // The fsync round keeps its batch/leader/wait/fsync attributes.
        let fsync = by_name["fsync_round"];
        assert_eq!(fsync.get("parent").unwrap().as_i64(), Some(0));
        let attrs = fsync.get("attrs").unwrap().as_doc().unwrap();
        assert_eq!(attrs.get("batch").unwrap().as_i64(), Some(4));
        assert_eq!(attrs.get("leader").unwrap().as_i64(), Some(1));
        // Stage spans from the observer seam are in the same tree.
        assert!(by_name.contains_key("optimize"));
        // The session is forgotten after finalize.
        assert!(!rec.has_trace("t1"));
    }

    #[test]
    fn unregistered_or_forced_sessions_behave() {
        // No registered context: no trace document.
        let rec = FlightRecorder::new(64);
        drive_one_session(&rec, "plain");
        let (_, trace) = rec.finalize_with_trace("plain", "completed", "");
        assert!(trace.is_none());

        // Forced retroactively (slow-session log): the buffered spans
        // are all still there, and no client_submit span is invented.
        let rec = FlightRecorder::new(64);
        drive_one_session(&rec, "slow");
        rec.mark("slow", MARK_SLOW_SESSION, Duration::from_millis(900));
        rec.set_trace("slow", TraceContext::forced(5, "slow"), true);
        let (_, trace) = rec.finalize_with_trace("slow", "completed", "");
        let trace = trace.expect("forced context yields a trace doc");
        schema::validate_trace_doc(&trace).unwrap();
        assert_eq!(trace.get("forced").unwrap(), &Value::Bool(true));
        let names: Vec<&str> = trace
            .get("spans")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s.as_doc().unwrap().get("name").unwrap().as_str().unwrap())
            .collect();
        assert!(names.contains(&"optimize"), "buffered spans survive");
        assert!(!names.contains(&"client_submit"));
    }

    #[test]
    fn persist_writes_and_queries_trace_records() {
        let mut db = Kdb::in_memory();
        schema::init_schema(&mut db).unwrap();
        schema::init_trace_schema(&mut db).unwrap();
        let rec = FlightRecorder::new(128);
        drive_one_session(&rec, "a");
        rec.set_trace("a", TraceContext::forced(1, "a"), false);
        drive_one_session(&rec, "b");
        rec.persist(&mut db, "a", "completed", "").unwrap();
        rec.persist(&mut db, "b", "failed", "deadline").unwrap();

        let all = past_traces(&db, None);
        assert_eq!(all.len(), 1, "only the sampled session left a trace");
        assert_eq!(all[0].1.get("session").unwrap().as_str(), Some("a"));
        assert_eq!(past_traces(&db, Some("a")).len(), 1);
        assert!(past_traces(&db, Some("b")).is_empty());
    }
}
