//! The observability layer must never change results: clustering and
//! full-pipeline reports are byte-identical with the flight recorder
//! attached or absent. Property-tested across synthetic cohorts.

use std::sync::Arc;

use ada_core::{AdaHealth, AdaHealthConfig, RunControl};
use ada_dataset::synthetic::{generate, SyntheticConfig};
use ada_kdb::Kdb;
use ada_mining::kmeans::KMeans;
use ada_obs::FlightRecorder;
use ada_vsm::VsmBuilder;
use proptest::prelude::*;

fn cohort(patients: usize, exams: usize, records: usize, seed: u64) -> ada_dataset::ExamLog {
    generate(
        &SyntheticConfig {
            num_patients: patients,
            num_exam_types: exams,
            target_records: records,
            ..SyntheticConfig::small()
        },
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Kernel level: `fit_with_stats` (the instrumented path) and `fit`
    // assign every row identically — the counters are pure accounting.
    #[test]
    fn kernel_stats_never_change_assignments(
        seed in 0u64..500,
        k in 2usize..6,
        patients in 30usize..80,
    ) {
        let log = cohort(patients, 15, 600, seed);
        let matrix = VsmBuilder::new().build(&log).matrix;
        let kmeans = KMeans::new(k).seed(seed ^ 0xa5a5);
        let plain = kmeans.fit(&matrix);
        let (with_stats, stats) = kmeans.fit_with_stats(&matrix);
        prop_assert_eq!(&plain.assignments, &with_stats.assignments);
        prop_assert_eq!(plain.sse, with_stats.sse);
        prop_assert!(stats.iterations > 0);
        prop_assert!(stats.rows_scanned <= stats.iterations * matrix.num_rows() as u64);
    }

    // Pipeline level: a controlled run with the flight recorder
    // observing equals an unobserved run field-by-field.
    #[test]
    fn recorder_on_and_off_produce_identical_reports(seed in 0u64..100) {
        let log = cohort(60, 16, 800, seed);
        let config = AdaHealthConfig::quick(format!("det-{seed}"));

        let report_off = AdaHealth::with_kdb(config.clone(), Kdb::in_memory())
            .run_controlled(&log, &RunControl::new())
            .expect("unobserved run completes");

        let recorder = Arc::new(FlightRecorder::new(256));
        let control = RunControl::new().with_observer(recorder.clone());
        let report_on = AdaHealth::with_kdb(config, Kdb::in_memory())
            .run_controlled(&log, &control)
            .expect("observed run completes");

        prop_assert_eq!(&report_off, &report_on);
        // And the recorder actually saw the run.
        let events = recorder.recent_events(&format!("det-{seed}"));
        prop_assert!(!events.is_empty(), "recorder saw no events");
        prop_assert_eq!(recorder.dropped(), 0);
    }
}
