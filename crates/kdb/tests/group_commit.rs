//! `DurabilityPolicy::Batch` acked-non-durable semantics through the
//! sharded group committer: when an fsync fault lands mid-stream,
//! exactly the ops of the failed batch are counted non-durable, the
//! acked prefix is preserved, and a later successful round (which
//! fsyncs the whole file) re-covers them.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use ada_kdb::{
    Document, DurabilityPolicy, FaultKind, FaultyStorage, Kdb, MemStorage, SharedKdb, Storage,
    StoreOptions,
};

fn faulty_batch_store(max_ops: usize) -> (SharedKdb, MemStorage, ada_kdb::FaultHandle) {
    let mem = MemStorage::new();
    let (storage, handle) = FaultyStorage::wrap(Arc::new(mem.clone()) as Arc<dyn Storage>);
    let db = SharedKdb::open_with(
        Path::new("j"),
        StoreOptions::with_storage(storage).durability(DurabilityPolicy::Batch {
            max_ops,
            max_delay: Duration::from_secs(3600),
        }),
    )
    .unwrap();
    (db, mem, handle)
}

fn doc(tag: i64) -> Document {
    Document::new().with("tag", tag)
}

/// Serial shape first, so the per-batch accounting is deterministic:
/// batch 1 syncs clean, batch 2's fsync fails (exactly its 4 ops stay
/// non-durable), batch 3 syncs clean and re-covers everything.
#[test]
fn fsync_fault_mid_batch_leaves_exactly_that_batch_non_durable() {
    let (db, mem, handle) = faulty_batch_store(4);

    // Batch 1: create (op 1) + three inserts; op 4 fills the batch and
    // syncs inline — that op acks durable, the earlier ones do not.
    db.create_collection("items").unwrap();
    let (_, d2) = db.insert_committed("items", doc(2)).unwrap();
    let (_, d3) = db.insert_committed("items", doc(3)).unwrap();
    let (_, d4) = db.insert_committed("items", doc(4)).unwrap();
    assert!(!d2 && !d3, "mid-batch ops are acked non-durable");
    assert!(d4, "the filling op carries the successful fsync");
    assert_eq!(db.journal_acked_ops(), 4);
    assert_eq!(db.journal_durable_ops(), 4);
    assert_eq!(db.journal_fault_count(), 0);

    // Batch 2: the fsync fails. All four ops stay acked (the writes
    // landed), none is durable, and the round counts as ONE fault.
    handle.fail_persistently(FaultKind::SyncFail);
    let mut receipts = Vec::new();
    for tag in 5..=8 {
        let (_, durable) = db.insert_committed("items", doc(tag)).unwrap();
        receipts.push(durable);
    }
    assert_eq!(receipts, [false, false, false, false]);
    assert_eq!(db.journal_acked_ops(), 8, "acked prefix preserved");
    assert_eq!(
        db.journal_durable_ops(),
        4,
        "exactly the failed batch's ops are non-durable"
    );
    assert_eq!(db.journal_fault_count(), 1, "one fault per failed round");
    let stats = db.group_commit_stats();
    assert_eq!(stats.failures, 1);

    // Fault cleared. The failed batch's ops still count as pending
    // (durability owed), so the very next append re-triggers the sync —
    // and that fsync covers the whole file, re-covering batch 2.
    handle.clear();
    let (_, d9) = db.insert_committed("items", doc(9)).unwrap();
    assert!(d9, "first append after the failed round retries the fsync");
    assert_eq!(db.journal_durable_ops(), 9, "fsync re-covers batch 2");
    for tag in 10..=12 {
        let (_, durable) = db.insert_committed("items", doc(tag)).unwrap();
        assert!(!durable, "mid-batch ops are acked non-durable");
    }
    assert_eq!(db.journal_acked_ops(), 12);
    assert_eq!(db.journal_fault_count(), 1, "no new faults");
    db.sync().unwrap();
    assert_eq!(db.journal_durable_ops(), 12);

    // Replay: every acked op is in the image (the acked-prefix is the
    // whole journal — appends landed even when their fsync failed).
    let expected = db.read().fingerprint();
    drop(db);
    let reopened =
        Kdb::open_with(Path::new("j"), StoreOptions::with_storage(Arc::new(mem))).unwrap();
    assert_eq!(reopened.fingerprint(), expected);
    assert_eq!(reopened.collection("items").unwrap().len(), 11);
}

/// Concurrent appenders racing through the group committer while fsync
/// faults fire at scattered ticks: acks never lie (an op reported
/// durable is within the durable watermark), the acked prefix survives
/// replay, and a final clean sync converges durable == acked.
#[test]
fn concurrent_batch_appenders_survive_scattered_fsync_faults() {
    const WRITERS: usize = 4;
    const OPS: usize = 25;
    let (db, mem, handle) = faulty_batch_store(3);
    for w in 0..WRITERS {
        db.create_collection(&format!("w{w}")).unwrap();
    }
    // Scatter one-shot fsync faults across the run. Ticks count every
    // storage op, so some land on appends' flushes-free path and some
    // on group fsyncs — only the latter produce failed rounds.
    for tick in [30, 55, 80, 110, 140] {
        handle.fail_at(tick, FaultKind::SyncFail);
    }
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let db = db.clone();
            scope.spawn(move || {
                let coll = format!("w{w}");
                for i in 0..OPS {
                    let (_, durable) = db.insert_committed(&coll, doc(i as i64)).unwrap();
                    if durable {
                        // A durable ack must be backed by the fsync
                        // watermark having reached this op.
                        assert!(db.journal_durable_ops() > 0);
                    }
                }
            });
        }
    });
    let acked = db.journal_acked_ops();
    assert_eq!(acked, (WRITERS * (OPS + 1)) as u64, "no op lost");

    // Close the window: a clean explicit sync makes everything durable.
    handle.clear();
    db.sync().unwrap();
    assert_eq!(db.journal_durable_ops(), acked);

    // Replay reconstructs identical per-collection state.
    let expected = db.read().fingerprint();
    let stats = db.group_commit_stats();
    assert_eq!(db.journal_fault_count(), stats.failures);
    drop(db);
    let reopened =
        Kdb::open_with(Path::new("j"), StoreOptions::with_storage(Arc::new(mem))).unwrap();
    assert_eq!(reopened.fingerprint(), expected);
    for w in 0..WRITERS {
        assert_eq!(reopened.collection(&format!("w{w}")).unwrap().len(), OPS);
    }
}

/// The `max_delay` arm of the batch policy: once the window expires,
/// the next append (even a lone one) triggers the inline sync.
#[test]
fn batch_max_delay_triggers_sync_on_next_append() {
    let mem = MemStorage::new();
    let db = SharedKdb::open_with(
        Path::new("j"),
        StoreOptions::with_storage(Arc::new(mem)).durability(DurabilityPolicy::Batch {
            max_ops: 1_000_000,
            max_delay: Duration::from_millis(10),
        }),
    )
    .unwrap();
    db.create_collection("items").unwrap();
    let (_, d1) = db.insert_committed("items", doc(1)).unwrap();
    assert!(!d1, "window not yet expired");
    std::thread::sleep(Duration::from_millis(20));
    let (_, d2) = db.insert_committed("items", doc(2)).unwrap();
    assert!(d2, "append after the window expiry carries the sync");
    assert_eq!(db.journal_durable_ops(), db.journal_acked_ops());
}
