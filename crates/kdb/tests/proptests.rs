//! Property tests: canonical encoding, query/index agreement, journal
//! replay equivalence.

use std::path::Path;
use std::sync::Arc;

use ada_kdb::journal::{
    replay, replay_bytes, DurabilityPolicy, Journal, JournalVersion, Op, RecoveryMode, V2_MAGIC,
};
use ada_kdb::{Collection, Document, Filter, Kdb, KdbError, MemStorage, StoreOptions, Value};
use proptest::prelude::*;

/// Recursive strategy for arbitrary document values.
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::I64),
        // Finite floats only: NaN breaks PartialEq-based round-trip
        // checks (NaN round-trips structurally; covered by a unit test).
        (-1e15f64..1e15).prop_map(Value::F64),
        "[ -~:;]{0,12}".prop_map(Value::Str),
        "\\PC{0,6}".prop_map(Value::Str), // arbitrary printable unicode
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Array),
            prop::collection::btree_map("[a-z]{1,6}", inner, 0..4).prop_map(|m| {
                let mut d = Document::new();
                for (k, v) in m {
                    d.set(k, v);
                }
                Value::Doc(d)
            }),
        ]
    })
}

fn document_strategy() -> impl Strategy<Value = Document> {
    prop::collection::btree_map("[a-z_]{1,8}", value_strategy(), 0..5).prop_map(|m| {
        let mut d = Document::new();
        for (k, v) in m {
            d.set(k, v);
        }
        d
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn value_encoding_round_trips(v in value_strategy()) {
        let encoded = v.encode();
        let decoded = Value::decode(&encoded).unwrap();
        prop_assert_eq!(decoded, v);
    }

    #[test]
    fn document_encoding_round_trips(d in document_strategy()) {
        let decoded = Document::decode(&d.encode()).unwrap();
        prop_assert_eq!(decoded, d);
    }

    #[test]
    fn concatenated_values_stream_decode(vs in prop::collection::vec(value_strategy(), 1..5)) {
        // The journal relies on self-delimiting encodings.
        let mut buf = String::new();
        for v in &vs {
            v.encode_into(&mut buf);
        }
        let bytes = buf.as_bytes();
        let mut pos = 0;
        for expected in &vs {
            let got = Value::decode_prefix(bytes, &mut pos).unwrap();
            prop_assert_eq!(&got, expected);
        }
        prop_assert_eq!(pos, bytes.len());
    }

    #[test]
    fn indexed_find_matches_scan(
        scores in prop::collection::vec(-50i64..50, 1..60),
        threshold in -50i64..50,
    ) {
        let mut plain = Collection::new("plain");
        let mut indexed = Collection::new("indexed");
        indexed.create_index("score").unwrap();
        for &s in &scores {
            let doc = Document::new().with("score", s);
            plain.insert(doc.clone());
            indexed.insert(doc);
        }
        for filter in [
            Filter::eq("score", threshold),
            Filter::Gt("score".into(), Value::I64(threshold)),
            Filter::Lte("score".into(), Value::I64(threshold)),
        ] {
            let a: Vec<u64> = plain.find(&filter).iter().map(|(id, _)| *id).collect();
            let b: Vec<u64> = indexed.find(&filter).iter().map(|(id, _)| *id).collect();
            prop_assert_eq!(a, b, "filter {:?}", filter);
        }
    }

    #[test]
    fn journal_replay_reconstructs_state(docs in prop::collection::vec(document_strategy(), 1..12)) {
        let path = std::env::temp_dir().join(format!(
            "ada_kdb_prop_{}_{:x}.journal",
            std::process::id(),
            docs.len() * 31 + docs.first().map_or(0, |d| d.len())
        ));
        std::fs::remove_file(&path).ok();
        let mut live_docs: Vec<(u64, Document)> = Vec::new();
        {
            let mut db = Kdb::open(&path).unwrap();
            db.create_collection("c").unwrap();
            for (i, d) in docs.iter().enumerate() {
                let id = db.insert("c", d.clone()).unwrap();
                if i % 3 == 0 {
                    db.delete("c", id).unwrap();
                } else {
                    live_docs.push((id, db.collection("c").unwrap().get(id).unwrap().clone()));
                }
            }
        }
        let reopened = Kdb::open(&path).unwrap();
        let coll = reopened.collection("c").unwrap();
        prop_assert_eq!(coll.len(), live_docs.len());
        for (id, expected) in &live_docs {
            prop_assert_eq!(coll.get(*id), Some(expected));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn op_encoding_round_trips(name in "[a-z]{1,8}", id in 0u64..1_000_000, doc in document_strategy()) {
        for op in [
            Op::CreateCollection { name: name.clone() },
            Op::CreateIndex { name: name.clone(), path: "a.b".into() },
            Op::Insert { name: name.clone(), id, doc: doc.clone() },
            Op::Update { name: name.clone(), id, doc },
            Op::Delete { name, id },
        ] {
            let mut buf = String::new();
            op.encode_into(&mut buf);
            let mut pos = 0;
            let back = Op::decode_prefix(buf.as_bytes(), &mut pos).unwrap();
            prop_assert_eq!(back, op);
            prop_assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_journal_never_panics(
        docs in prop::collection::vec(document_strategy(), 1..6),
        cut in 1usize..200,
    ) {
        let path = std::env::temp_dir().join(format!(
            "ada_kdb_trunc_{}_{}.journal",
            std::process::id(),
            cut
        ));
        std::fs::remove_file(&path).ok();
        {
            let mut db = Kdb::open(&path).unwrap();
            db.create_collection("c").unwrap();
            for d in &docs {
                db.insert("c", d.clone()).unwrap();
            }
        }
        let bytes = std::fs::read(&path).unwrap();
        let keep = bytes.len().saturating_sub(cut % bytes.len().max(1));
        std::fs::write(&path, &bytes[..keep]).unwrap();
        // Replay and full open must both handle any torn tail.
        let _ = replay(&path).unwrap();
        let _ = Kdb::open(&path);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_rewrite_is_equivalent(docs in prop::collection::vec(document_strategy(), 1..8)) {
        let path = std::env::temp_dir().join(format!(
            "ada_kdb_rw_{}_{}.journal",
            std::process::id(),
            docs.len()
        ));
        std::fs::remove_file(&path).ok();
        let ops: Vec<Op> = std::iter::once(Op::CreateCollection { name: "c".into() })
            .chain(docs.iter().enumerate().map(|(i, d)| Op::Insert {
                name: "c".into(),
                id: i as u64 + 1,
                doc: d.clone(),
            }))
            .collect();
        {
            let mut j = Journal::open(&path, None).unwrap();
            j.rewrite(&ops).unwrap();
        }
        let replayed = replay(&path).unwrap();
        prop_assert!(!replayed.truncated);
        prop_assert_eq!(replayed.ops, ops);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn single_byte_mutation_is_caught_or_truncated(
        docs in prop::collection::vec(document_strategy(), 1..6),
        pos_seed in any::<u64>(),
        new_byte in any::<u8>(),
    ) {
        let mem = Arc::new(MemStorage::new());
        let path = Path::new("mutate.journal");
        let golden: Vec<Op> = std::iter::once(Op::CreateCollection { name: "c".into() })
            .chain(docs.iter().enumerate().map(|(i, d)| Op::Insert {
                name: "c".into(),
                id: i as u64 + 1,
                doc: d.clone(),
            }))
            .collect();
        {
            let mut j =
                Journal::open_with(mem.clone(), path, None, DurabilityPolicy::Always).unwrap();
            for op in &golden {
                j.append(op).unwrap();
            }
        }
        let clean = mem.bytes(path).unwrap();
        let pos = (pos_seed as usize) % clean.len();
        let mut mutated = clean.clone();
        mutated[pos] = new_byte;

        let strict = replay_bytes(&mutated, RecoveryMode::Strict);
        if pos >= V2_MAGIC.len() {
            // Inside the framed region a mutation must be rejected loudly
            // or leave a clean prefix of the golden ops — never silently
            // altered records.
            match strict {
                Err(KdbError::Corrupt { offset, .. }) => {
                    prop_assert!(offset <= mutated.len() as u64);
                }
                Err(e) => prop_assert!(false, "unexpected error kind: {e}"),
                Ok(r) => {
                    prop_assert!(r.ops.len() <= golden.len());
                    prop_assert_eq!(
                        &r.ops[..],
                        &golden[..r.ops.len()],
                        "mutation at byte {} silently altered ops",
                        pos
                    );
                }
            }
            let salvage = replay_bytes(&mutated, RecoveryMode::Salvage).unwrap();
            prop_assert!(salvage.ops.len() <= golden.len());
            prop_assert_eq!(&salvage.ops[..], &golden[..salvage.ops.len()]);
        } else {
            // Mutating the magic may downgrade the file to v1 parsing,
            // which has no checksums by design; no-panic is the contract.
            let _ = strict;
            let _ = replay_bytes(&mutated, RecoveryMode::Salvage);
        }
    }

    #[test]
    fn adversarial_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut pos = 0;
        let _ = Op::decode_prefix(&bytes, &mut pos);
        prop_assert!(pos <= bytes.len());
        let mut pos = 0;
        let _ = Value::decode_prefix(&bytes, &mut pos);
        prop_assert!(pos <= bytes.len());
        // Both as a bare op stream (v1 parse) and behind a v2 magic.
        let _ = replay_bytes(&bytes, RecoveryMode::Strict);
        let _ = replay_bytes(&bytes, RecoveryMode::Salvage);
        let mut framed = V2_MAGIC.to_vec();
        framed.extend_from_slice(&bytes);
        let _ = replay_bytes(&framed, RecoveryMode::Strict);
        let _ = replay_bytes(&framed, RecoveryMode::Salvage);
    }

    #[test]
    fn v1_journal_opens_and_upgrades_to_v2(
        docs in prop::collection::vec(document_strategy(), 1..6),
    ) {
        let mem = Arc::new(MemStorage::new());
        let path = Path::new("legacy.journal");
        let ops: Vec<Op> = std::iter::once(Op::CreateCollection { name: "c".into() })
            .chain(docs.iter().enumerate().map(|(i, d)| Op::Insert {
                name: "c".into(),
                id: i as u64 + 1,
                doc: d.clone(),
            }))
            .collect();
        let mut v1 = String::new();
        for op in &ops {
            op.encode_into(&mut v1);
        }
        mem.install(path, v1.into_bytes());

        let parsed = replay_bytes(&mem.bytes(path).unwrap(), RecoveryMode::Strict).unwrap();
        prop_assert_eq!(parsed.version, JournalVersion::V1);
        prop_assert_eq!(&parsed.ops[..], &ops[..]);

        let mut db =
            Kdb::open_with(path, StoreOptions::with_storage(mem.clone())).unwrap();
        let before = db.fingerprint();
        db.snapshot().unwrap();
        let upgraded = replay_bytes(&mem.bytes(path).unwrap(), RecoveryMode::Strict).unwrap();
        prop_assert_eq!(upgraded.version, JournalVersion::V2);
        prop_assert!(!upgraded.truncated);

        let reopened = Kdb::open_with(path, StoreOptions::with_storage(mem)).unwrap();
        prop_assert_eq!(reopened.fingerprint(), before);
    }
}
