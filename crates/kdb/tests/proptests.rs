//! Property tests: canonical encoding, query/index agreement, journal
//! replay equivalence.

use ada_kdb::journal::{replay, Journal, Op};
use ada_kdb::{Collection, Document, Filter, Kdb, Value};
use proptest::prelude::*;

/// Recursive strategy for arbitrary document values.
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::I64),
        // Finite floats only: NaN breaks PartialEq-based round-trip
        // checks (NaN round-trips structurally; covered by a unit test).
        (-1e15f64..1e15).prop_map(Value::F64),
        "[ -~:;]{0,12}".prop_map(Value::Str),
        "\\PC{0,6}".prop_map(Value::Str), // arbitrary printable unicode
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Array),
            prop::collection::btree_map("[a-z]{1,6}", inner, 0..4).prop_map(|m| {
                let mut d = Document::new();
                for (k, v) in m {
                    d.set(k, v);
                }
                Value::Doc(d)
            }),
        ]
    })
}

fn document_strategy() -> impl Strategy<Value = Document> {
    prop::collection::btree_map("[a-z_]{1,8}", value_strategy(), 0..5).prop_map(|m| {
        let mut d = Document::new();
        for (k, v) in m {
            d.set(k, v);
        }
        d
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn value_encoding_round_trips(v in value_strategy()) {
        let encoded = v.encode();
        let decoded = Value::decode(&encoded).unwrap();
        prop_assert_eq!(decoded, v);
    }

    #[test]
    fn document_encoding_round_trips(d in document_strategy()) {
        let decoded = Document::decode(&d.encode()).unwrap();
        prop_assert_eq!(decoded, d);
    }

    #[test]
    fn concatenated_values_stream_decode(vs in prop::collection::vec(value_strategy(), 1..5)) {
        // The journal relies on self-delimiting encodings.
        let mut buf = String::new();
        for v in &vs {
            v.encode_into(&mut buf);
        }
        let bytes = buf.as_bytes();
        let mut pos = 0;
        for expected in &vs {
            let got = Value::decode_prefix(bytes, &mut pos).unwrap();
            prop_assert_eq!(&got, expected);
        }
        prop_assert_eq!(pos, bytes.len());
    }

    #[test]
    fn indexed_find_matches_scan(
        scores in prop::collection::vec(-50i64..50, 1..60),
        threshold in -50i64..50,
    ) {
        let mut plain = Collection::new("plain");
        let mut indexed = Collection::new("indexed");
        indexed.create_index("score").unwrap();
        for &s in &scores {
            let doc = Document::new().with("score", s);
            plain.insert(doc.clone());
            indexed.insert(doc);
        }
        for filter in [
            Filter::eq("score", threshold),
            Filter::Gt("score".into(), Value::I64(threshold)),
            Filter::Lte("score".into(), Value::I64(threshold)),
        ] {
            let a: Vec<u64> = plain.find(&filter).iter().map(|(id, _)| *id).collect();
            let b: Vec<u64> = indexed.find(&filter).iter().map(|(id, _)| *id).collect();
            prop_assert_eq!(a, b, "filter {:?}", filter);
        }
    }

    #[test]
    fn journal_replay_reconstructs_state(docs in prop::collection::vec(document_strategy(), 1..12)) {
        let path = std::env::temp_dir().join(format!(
            "ada_kdb_prop_{}_{:x}.journal",
            std::process::id(),
            docs.len() * 31 + docs.first().map_or(0, |d| d.len())
        ));
        std::fs::remove_file(&path).ok();
        let mut live_docs: Vec<(u64, Document)> = Vec::new();
        {
            let mut db = Kdb::open(&path).unwrap();
            db.create_collection("c").unwrap();
            for (i, d) in docs.iter().enumerate() {
                let id = db.insert("c", d.clone()).unwrap();
                if i % 3 == 0 {
                    db.delete("c", id).unwrap();
                } else {
                    live_docs.push((id, db.collection("c").unwrap().get(id).unwrap().clone()));
                }
            }
        }
        let reopened = Kdb::open(&path).unwrap();
        let coll = reopened.collection("c").unwrap();
        prop_assert_eq!(coll.len(), live_docs.len());
        for (id, expected) in &live_docs {
            prop_assert_eq!(coll.get(*id), Some(expected));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn op_encoding_round_trips(name in "[a-z]{1,8}", id in 0u64..1_000_000, doc in document_strategy()) {
        for op in [
            Op::CreateCollection { name: name.clone() },
            Op::CreateIndex { name: name.clone(), path: "a.b".into() },
            Op::Insert { name: name.clone(), id, doc: doc.clone() },
            Op::Update { name: name.clone(), id, doc },
            Op::Delete { name, id },
        ] {
            let mut buf = String::new();
            op.encode_into(&mut buf);
            let mut pos = 0;
            let back = Op::decode_prefix(buf.as_bytes(), &mut pos).unwrap();
            prop_assert_eq!(back, op);
            prop_assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_journal_never_panics(
        docs in prop::collection::vec(document_strategy(), 1..6),
        cut in 1usize..200,
    ) {
        let path = std::env::temp_dir().join(format!(
            "ada_kdb_trunc_{}_{}.journal",
            std::process::id(),
            cut
        ));
        std::fs::remove_file(&path).ok();
        {
            let mut db = Kdb::open(&path).unwrap();
            db.create_collection("c").unwrap();
            for d in &docs {
                db.insert("c", d.clone()).unwrap();
            }
        }
        let bytes = std::fs::read(&path).unwrap();
        let keep = bytes.len().saturating_sub(cut % bytes.len().max(1));
        std::fs::write(&path, &bytes[..keep]).unwrap();
        // Replay and full open must both handle any torn tail.
        let _ = replay(&path).unwrap();
        let _ = Kdb::open(&path);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_rewrite_is_equivalent(docs in prop::collection::vec(document_strategy(), 1..8)) {
        let path = std::env::temp_dir().join(format!(
            "ada_kdb_rw_{}_{}.journal",
            std::process::id(),
            docs.len()
        ));
        std::fs::remove_file(&path).ok();
        let ops: Vec<Op> = std::iter::once(Op::CreateCollection { name: "c".into() })
            .chain(docs.iter().enumerate().map(|(i, d)| Op::Insert {
                name: "c".into(),
                id: i as u64 + 1,
                doc: d.clone(),
            }))
            .collect();
        {
            let mut j = Journal::open(&path, None).unwrap();
            j.rewrite(&ops).unwrap();
        }
        let replayed = replay(&path).unwrap();
        prop_assert!(!replayed.truncated);
        prop_assert_eq!(replayed.ops, ops);
        std::fs::remove_file(&path).ok();
    }
}
