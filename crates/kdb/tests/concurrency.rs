//! Concurrent access through [`SharedKdb`]: the optimizer's worker
//! threads read knowledge items while the pipeline thread keeps
//! inserting — the access pattern the `parking_lot` wrapper exists for.

use std::sync::Arc;

use ada_kdb::{Document, Filter, Kdb, SharedKdb};

fn shared() -> SharedKdb {
    let mut db = Kdb::in_memory();
    db.create_collection("items").unwrap();
    db.create_index("items", "score").unwrap();
    Arc::new(parking_lot::RwLock::new(db))
}

#[test]
fn concurrent_writers_and_readers_converge() {
    let db = shared();
    const WRITERS: usize = 4;
    const PER_WRITER: usize = 250;

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let db = Arc::clone(&db);
            scope.spawn(move || {
                for i in 0..PER_WRITER {
                    let doc = Document::new()
                        .with("writer", w as i64)
                        .with("score", (i % 100) as f64 / 100.0);
                    db.write().insert("items", doc).unwrap();
                }
            });
        }
        // Readers run concurrently; every observed snapshot must be
        // internally consistent (find never panics, counts only grow).
        for _ in 0..2 {
            let db = Arc::clone(&db);
            scope.spawn(move || {
                let mut last = 0usize;
                for _ in 0..50 {
                    let guard = db.read();
                    let coll = guard.collection("items").unwrap();
                    let n = coll.len();
                    assert!(n >= last, "collection shrank under readers");
                    last = n;
                    let hits = coll.find(&Filter::Gt("score".into(), ada_kdb::Value::F64(0.5)));
                    for (_, d) in hits {
                        assert!(d.get("score").unwrap().as_f64().unwrap() > 0.5);
                    }
                }
            });
        }
    });

    let guard = db.read();
    let coll = guard.collection("items").unwrap();
    assert_eq!(coll.len(), WRITERS * PER_WRITER);
    // Ids are unique and dense (1..=N) despite interleaved writers.
    let ids: Vec<u64> = coll.iter().map(|(id, _)| id).collect();
    assert_eq!(ids.len(), WRITERS * PER_WRITER);
    assert_eq!(ids[0], 1);
    assert_eq!(*ids.last().unwrap(), (WRITERS * PER_WRITER) as u64);
    // Per-writer counts all arrived.
    for w in 0..WRITERS {
        let n = coll.find(&Filter::eq("writer", w as i64)).len();
        assert_eq!(n, PER_WRITER, "writer {w}");
    }
}

#[test]
fn writers_interleave_on_a_persistent_store() {
    let path = std::env::temp_dir().join(format!("ada_kdb_conc_{}.journal", std::process::id()));
    std::fs::remove_file(&path).ok();
    {
        let mut db = Kdb::open(&path).unwrap();
        db.create_collection("items").unwrap();
        let db: SharedKdb = Arc::new(parking_lot::RwLock::new(db));
        std::thread::scope(|scope| {
            for w in 0..3 {
                let db = Arc::clone(&db);
                scope.spawn(move || {
                    for i in 0..100 {
                        db.write()
                            .insert(
                                "items",
                                Document::new().with("w", w as i64).with("i", i as i64),
                            )
                            .unwrap();
                    }
                });
            }
        });
    }
    // The journal serialized every interleaved write; replay recovers all.
    let reopened = Kdb::open(&path).unwrap();
    assert_eq!(reopened.collection("items").unwrap().len(), 300);
    std::fs::remove_file(&path).ok();
}
