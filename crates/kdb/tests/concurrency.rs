//! Concurrent access through [`SharedKdb`]: the optimizer's worker
//! threads read knowledge items while the pipeline thread keeps
//! inserting — the access pattern the sharded facade exists for.

use std::sync::Arc;

use ada_kdb::{Document, Filter, Kdb, SharedKdb};

fn shared() -> SharedKdb {
    let mut db = Kdb::in_memory();
    db.create_collection("items").unwrap();
    db.create_index("items", "score").unwrap();
    SharedKdb::new(db)
}

#[test]
fn concurrent_writers_and_readers_converge() {
    let db = shared();
    const WRITERS: usize = 4;
    const PER_WRITER: usize = 250;

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let db = db.clone();
            scope.spawn(move || {
                for i in 0..PER_WRITER {
                    let doc = Document::new()
                        .with("writer", w as i64)
                        .with("score", (i % 100) as f64 / 100.0);
                    db.insert("items", doc).unwrap();
                }
            });
        }
        // Readers run concurrently; every observed snapshot must be
        // internally consistent (find never panics, counts only grow).
        for _ in 0..2 {
            let db = db.clone();
            scope.spawn(move || {
                let mut last = 0usize;
                for _ in 0..50 {
                    let snap = db.read();
                    let coll = snap.collection("items").unwrap();
                    let n = coll.len();
                    assert!(n >= last, "collection shrank under readers");
                    last = n;
                    let hits = coll.find(&Filter::Gt("score".into(), ada_kdb::Value::F64(0.5)));
                    for (_, d) in hits {
                        assert!(d.get("score").unwrap().as_f64().unwrap() > 0.5);
                    }
                }
            });
        }
    });

    let snap = db.read();
    let coll = snap.collection("items").unwrap();
    assert_eq!(coll.len(), WRITERS * PER_WRITER);
    // Ids are unique and dense (1..=N) despite interleaved writers.
    let ids: Vec<u64> = coll.iter().map(|(id, _)| id).collect();
    assert_eq!(ids.len(), WRITERS * PER_WRITER);
    assert_eq!(ids[0], 1);
    assert_eq!(*ids.last().unwrap(), (WRITERS * PER_WRITER) as u64);
    // Per-writer counts all arrived.
    for w in 0..WRITERS {
        let n = coll.find(&Filter::eq("writer", w as i64)).len();
        assert_eq!(n, PER_WRITER, "writer {w}");
    }
}

#[test]
fn writers_interleave_on_a_persistent_store() {
    let path = std::env::temp_dir().join(format!("ada_kdb_conc_{}.journal", std::process::id()));
    std::fs::remove_file(&path).ok();
    {
        let mut db = Kdb::open(&path).unwrap();
        db.create_collection("items").unwrap();
        let db = SharedKdb::new(db);
        std::thread::scope(|scope| {
            for w in 0..3 {
                let db = db.clone();
                scope.spawn(move || {
                    for i in 0..100 {
                        db.insert(
                            "items",
                            Document::new().with("w", w as i64).with("i", i as i64),
                        )
                        .unwrap();
                    }
                });
            }
        });
    }
    // The journal serialized every interleaved write; replay recovers all.
    let reopened = Kdb::open(&path).unwrap();
    assert_eq!(reopened.collection("items").unwrap().len(), 300);
    std::fs::remove_file(&path).ok();
}

#[test]
fn journaled_multi_writer_stress_with_updates_deletes_and_compaction() {
    let path = std::env::temp_dir().join(format!("ada_kdb_stress_{}.journal", std::process::id()));
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(path.with_extension("snapshot")).ok();

    const WRITERS: usize = 4;
    const PER_WRITER: usize = 120;
    {
        let mut db = Kdb::open(&path).unwrap();
        db.create_collection("items").unwrap();
        db.create_index("items", "writer").unwrap();
        let db = SharedKdb::new(db);
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let db = db.clone();
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    for i in 0..PER_WRITER {
                        let id = db
                            .insert(
                                "items",
                                Document::new().with("writer", w as i64).with("i", i as i64),
                            )
                            .unwrap();
                        mine.push(id);
                        // Interleave mutations with inserts: rewrite an
                        // earlier doc every 3rd insert, drop one every 5th.
                        if i % 3 == 0 && mine.len() > 1 {
                            let victim = mine[mine.len() / 2];
                            let doc = Document::new()
                                .with("writer", w as i64)
                                .with("i", i as i64)
                                .with("updated", true);
                            db.update("items", victim, doc).unwrap();
                        }
                        if i % 5 == 0 && mine.len() > 2 {
                            let victim = mine.remove(0);
                            db.delete("items", victim).unwrap();
                        }
                    }
                    mine
                });
            }
        });
        // Compact mid-life: the snapshot plus tail journal must still
        // replay to the same state.
        db.snapshot().unwrap();
        let live = db.read().collection("items").unwrap().len();
        db.insert("items", Document::new().with("writer", -1i64))
            .unwrap();
        assert_eq!(db.read().collection("items").unwrap().len(), live + 1);
    }

    let reopened = Kdb::open(&path).unwrap();
    let coll = reopened.collection("items").unwrap();
    // Every writer deleted floor((PER_WRITER - 1) / 5) docs (i = 5, 10, …;
    // i = 0 is skipped by the mine.len() > 2 guard), plus the post-snapshot
    // marker doc survives.
    let deleted_per_writer = (PER_WRITER - 1) / 5;
    assert_eq!(coll.len(), WRITERS * (PER_WRITER - deleted_per_writer) + 1);
    for w in 0..WRITERS {
        let n = coll.find(&Filter::eq("writer", w as i64)).len();
        assert_eq!(n, PER_WRITER - deleted_per_writer, "writer {w}");
    }
    assert_eq!(coll.find(&Filter::eq("writer", -1i64)).len(), 1);
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(path.with_extension("snapshot")).ok();
}

/// Cancelling an analysis session mid-run must leave the shared store
/// consistent: the journal replays cleanly and concurrent surviving
/// sessions' artifacts are intact (the service-level counterpart lives in
/// `ada-service`'s own tests; this one watches the store).
#[test]
fn service_cancellation_mid_run_leaves_replayable_store() {
    use ada_core::{AdaHealthConfig, PipelineObserver, PipelineStage};
    use ada_dataset::synthetic::{generate, SyntheticConfig};
    use ada_service::{AnalysisService, CancelToken, JobSpec, ServiceConfig, SessionState};

    struct CancelOnFirstStage {
        target: &'static str,
        token: CancelToken,
    }
    impl PipelineObserver for CancelOnFirstStage {
        fn on_stage_start(&self, session: &str, _stage: PipelineStage) {
            if session == self.target {
                self.token.cancel();
            }
        }
    }

    let path = std::env::temp_dir().join(format!("ada_kdb_svc_{}.journal", std::process::id()));
    std::fs::remove_file(&path).ok();

    let token = CancelToken::new();
    let service = AnalysisService::with_kdb(
        ServiceConfig {
            workers: 2,
            observer: Some(Arc::new(CancelOnFirstStage {
                target: "doomed",
                token: token.clone(),
            })),
            ..ServiceConfig::default()
        },
        Kdb::open(&path).unwrap(),
    );
    let log = Arc::new(generate(
        &SyntheticConfig {
            num_patients: 80,
            target_records: 1_000,
            ..SyntheticConfig::small()
        },
        5,
    ));
    let doomed = service
        .submit(
            JobSpec::new(AdaHealthConfig::quick("doomed"), Arc::clone(&log)).cancel_token(token),
        )
        .unwrap();
    let survivor = service
        .submit(JobSpec::new(AdaHealthConfig::quick("survivor"), log))
        .unwrap();
    assert_eq!(service.wait(doomed).unwrap(), SessionState::Cancelled);
    assert!(matches!(
        service.wait(survivor).unwrap(),
        SessionState::Completed(_)
    ));
    service.shutdown();

    // Replay after an interleaved, partially-cancelled run: the store
    // opens, schema collections exist, and only the survivor produced
    // knowledge items.
    let reopened = Kdb::open(&path).unwrap();
    let clusters = reopened.collection("cluster_knowledge").unwrap();
    assert!(!clusters.find(&Filter::eq("session", "survivor")).is_empty());
    assert!(clusters.find(&Filter::eq("session", "doomed")).is_empty());
    std::fs::remove_file(&path).ok();
}
