//! Filter AST evaluated against documents.
//!
//! Filters address fields via dotted paths (see
//! [`Document::get_path`]). Comparison semantics follow the usual
//! document-store conventions: numbers compare across `I64`/`F64`,
//! strings compare lexicographically, and any type mismatch makes the
//! comparison false (not an error).

use serde::{Deserialize, Serialize};

use crate::document::{Document, Value};

/// A query filter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Filter {
    /// Matches every document.
    True,
    /// Field equals the value.
    Eq(String, Value),
    /// Field exists and differs from the value.
    Ne(String, Value),
    /// Field is strictly greater than the value.
    Gt(String, Value),
    /// Field is greater than or equal to the value.
    Gte(String, Value),
    /// Field is strictly less than the value.
    Lt(String, Value),
    /// Field is less than or equal to the value.
    Lte(String, Value),
    /// Field equals one of the values.
    In(String, Vec<Value>),
    /// Field is present (any value, including null).
    Exists(String),
    /// All sub-filters match.
    And(Vec<Filter>),
    /// At least one sub-filter matches.
    Or(Vec<Filter>),
    /// The sub-filter does not match.
    Not(Box<Filter>),
}

/// Three-way comparison between two values under document-store
/// semantics; `None` when the types are incomparable.
pub fn compare(a: &Value, b: &Value) -> Option<std::cmp::Ordering> {
    use Value::*;
    match (a, b) {
        (I64(x), I64(y)) => Some(x.cmp(y)),
        (F64(x), F64(y)) => x.partial_cmp(y),
        (I64(x), F64(y)) => (*x as f64).partial_cmp(y),
        (F64(x), I64(y)) => x.partial_cmp(&(*y as f64)),
        (Str(x), Str(y)) => Some(x.cmp(y)),
        (Bool(x), Bool(y)) => Some(x.cmp(y)),
        (Null, Null) => Some(std::cmp::Ordering::Equal),
        _ => None,
    }
}

/// Equality under the same semantics as [`compare`] (so `I64(2)` equals
/// `F64(2.0)`).
pub fn values_equal(a: &Value, b: &Value) -> bool {
    matches!(compare(a, b), Some(std::cmp::Ordering::Equal))
}

impl Filter {
    /// Evaluates the filter against a document.
    pub fn matches(&self, doc: &Document) -> bool {
        match self {
            Filter::True => true,
            Filter::Eq(path, v) => doc.get_path(path).is_some_and(|f| values_equal(f, v)),
            Filter::Ne(path, v) => doc.get_path(path).is_some_and(|f| !values_equal(f, v)),
            Filter::Gt(path, v) => doc
                .get_path(path)
                .and_then(|f| compare(f, v))
                .is_some_and(|o| o == std::cmp::Ordering::Greater),
            Filter::Gte(path, v) => doc
                .get_path(path)
                .and_then(|f| compare(f, v))
                .is_some_and(|o| o != std::cmp::Ordering::Less),
            Filter::Lt(path, v) => doc
                .get_path(path)
                .and_then(|f| compare(f, v))
                .is_some_and(|o| o == std::cmp::Ordering::Less),
            Filter::Lte(path, v) => doc
                .get_path(path)
                .and_then(|f| compare(f, v))
                .is_some_and(|o| o != std::cmp::Ordering::Greater),
            Filter::In(path, values) => doc
                .get_path(path)
                .is_some_and(|f| values.iter().any(|v| values_equal(f, v))),
            Filter::Exists(path) => doc.get_path(path).is_some(),
            Filter::And(filters) => filters.iter().all(|f| f.matches(doc)),
            Filter::Or(filters) => filters.iter().any(|f| f.matches(doc)),
            Filter::Not(inner) => !inner.matches(doc),
        }
    }

    /// Convenience constructor: `field == value`.
    pub fn eq(path: impl Into<String>, value: impl Into<Value>) -> Self {
        Filter::Eq(path.into(), value.into())
    }

    /// Convenience constructor: conjunction.
    pub fn and(filters: impl IntoIterator<Item = Filter>) -> Self {
        Filter::And(filters.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::new()
            .with("kind", "cluster")
            .with("score", 0.8f64)
            .with("k", 8i64)
            .with("flag", Value::Null)
            .with("meta", Document::new().with("depth", 3i64))
    }

    #[test]
    fn eq_and_type_coercion() {
        let d = doc();
        assert!(Filter::eq("kind", "cluster").matches(&d));
        assert!(!Filter::eq("kind", "pattern").matches(&d));
        // I64 vs F64 equality.
        assert!(Filter::eq("k", 8.0f64).matches(&d));
        assert!(Filter::eq("score", 0.8f64).matches(&d));
        // Missing field never equals.
        assert!(!Filter::eq("nope", 1i64).matches(&d));
    }

    #[test]
    fn range_comparisons() {
        let d = doc();
        assert!(Filter::Gt("k".into(), Value::I64(7)).matches(&d));
        assert!(!Filter::Gt("k".into(), Value::I64(8)).matches(&d));
        assert!(Filter::Gte("k".into(), Value::I64(8)).matches(&d));
        assert!(Filter::Lt("score".into(), Value::F64(0.9)).matches(&d));
        assert!(Filter::Lte("score".into(), Value::F64(0.8)).matches(&d));
        // Cross-type numeric range.
        assert!(Filter::Gt("k".into(), Value::F64(7.5)).matches(&d));
        // Type mismatch is false, not an error.
        assert!(!Filter::Gt("kind".into(), Value::I64(1)).matches(&d));
    }

    #[test]
    fn in_and_exists() {
        let d = doc();
        assert!(Filter::In(
            "kind".into(),
            vec![Value::Str("pattern".into()), Value::Str("cluster".into())]
        )
        .matches(&d));
        assert!(!Filter::In("kind".into(), vec![]).matches(&d));
        assert!(Filter::Exists("flag".into()).matches(&d)); // null still exists
        assert!(!Filter::Exists("missing".into()).matches(&d));
        assert!(Filter::Exists("meta.depth".into()).matches(&d));
    }

    #[test]
    fn boolean_combinators() {
        let d = doc();
        let f = Filter::and([
            Filter::eq("kind", "cluster"),
            Filter::Gt("score".into(), Value::F64(0.5)),
        ]);
        assert!(f.matches(&d));
        let g = Filter::Or(vec![Filter::eq("kind", "pattern"), Filter::eq("k", 8i64)]);
        assert!(g.matches(&d));
        assert!(!Filter::Not(Box::new(Filter::True)).matches(&d));
        // Empty AND is true; empty OR is false.
        assert!(Filter::And(vec![]).matches(&d));
        assert!(!Filter::Or(vec![]).matches(&d));
    }

    #[test]
    fn nested_path_filters() {
        let d = doc();
        assert!(Filter::eq("meta.depth", 3i64).matches(&d));
        assert!(!Filter::eq("meta.depth", 4i64).matches(&d));
    }

    #[test]
    fn ne_requires_presence() {
        let d = doc();
        assert!(Filter::Ne("k".into(), Value::I64(9)).matches(&d));
        assert!(!Filter::Ne("k".into(), Value::I64(8)).matches(&d));
        // Absent field: Ne is false (field must exist to differ).
        assert!(!Filter::Ne("missing".into(), Value::I64(1)).matches(&d));
    }

    #[test]
    fn compare_incomparable_types() {
        assert_eq!(compare(&Value::Str("a".into()), &Value::I64(1)), None);
        assert_eq!(compare(&Value::Null, &Value::Bool(false)), None);
        assert!(values_equal(&Value::Null, &Value::Null));
    }
}
