//! Pluggable storage backends for the journal, with deterministic fault
//! injection.
//!
//! The journal never touches `std::fs` directly: every byte flows
//! through the [`Storage`] / [`StorageFile`] traits, so crash and disk
//! failure behavior is testable in-process. Three backends:
//!
//! * [`FileStorage`] — the real filesystem (buffered appends, `fsync`,
//!   atomic rename, parent-directory sync);
//! * [`MemStorage`] — a shared in-memory file map. Fast enough that the
//!   torture harness can reopen the store once per *byte offset* of the
//!   journal, and inspectable so tests can cut or flip bytes directly;
//! * [`FaultyStorage`] — wraps any backend and injects faults at
//!   deterministic operation ticks via a [`FaultHandle`]: short writes,
//!   `ENOSPC`, `EIO`, failed fsyncs, and read-side bit corruption.
//!
//! Every fault is either scheduled at an exact tick (`fail_at`) or
//! persistent (`fail_persistently`), so a failing torture case replays
//! exactly from its printed seed and tick.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::KdbError;

/// A filesystem-shaped backend the journal writes through.
///
/// Implementations must be cheap to share (`Arc<dyn Storage>`); all
/// methods take `&self`.
pub trait Storage: fmt::Debug + Send + Sync {
    /// Whether a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;

    /// Reads the entire file.
    ///
    /// # Errors
    /// Returns [`KdbError::Io`] when the file is missing or unreadable.
    fn read(&self, path: &Path) -> Result<Vec<u8>, KdbError>;

    /// Opens (creating if needed) a file for appending. When
    /// `truncate_to` is given the file is first truncated to that
    /// length (torn-tail recovery).
    ///
    /// # Errors
    /// Returns [`KdbError::Io`] on filesystem failures.
    fn open_append(
        &self,
        path: &Path,
        truncate_to: Option<u64>,
    ) -> Result<Box<dyn StorageFile>, KdbError>;

    /// Creates (truncating) a file for writing — temp files for
    /// snapshot compaction.
    ///
    /// # Errors
    /// Returns [`KdbError::Io`] on filesystem failures.
    fn create(&self, path: &Path) -> Result<Box<dyn StorageFile>, KdbError>;

    /// Atomically renames `from` over `to`.
    ///
    /// # Errors
    /// Returns [`KdbError::Io`] on filesystem failures.
    fn rename(&self, from: &Path, to: &Path) -> Result<(), KdbError>;

    /// Fsyncs the directory containing `path`, making a preceding
    /// rename durable. Backends without directory semantics no-op.
    ///
    /// # Errors
    /// Returns [`KdbError::Io`] on filesystem failures.
    fn sync_dir(&self, path: &Path) -> Result<(), KdbError>;
}

/// An open append/write handle from a [`Storage`] backend.
pub trait StorageFile: fmt::Debug + Send + Sync {
    /// Appends all of `buf`. A failing implementation may have written
    /// any prefix of `buf` (a torn write).
    ///
    /// # Errors
    /// Returns [`KdbError::Io`] on write failures.
    fn append(&mut self, buf: &[u8]) -> Result<(), KdbError>;

    /// Pushes buffered bytes to the OS (no durability guarantee).
    ///
    /// # Errors
    /// Returns [`KdbError::Io`] on write failures.
    fn flush(&mut self) -> Result<(), KdbError>;

    /// Flushes and fsyncs: on success every appended byte survives
    /// power loss.
    ///
    /// # Errors
    /// Returns [`KdbError::Io`] when the flush or fsync fails.
    fn sync(&mut self) -> Result<(), KdbError>;
}

// ---------------------------------------------------------------------
// Real filesystem backend.
// ---------------------------------------------------------------------

/// The real filesystem backend (buffered writer per open file).
#[derive(Debug, Default, Clone, Copy)]
pub struct FileStorage;

#[derive(Debug)]
struct FileHandle {
    writer: BufWriter<File>,
}

impl StorageFile for FileHandle {
    fn append(&mut self, buf: &[u8]) -> Result<(), KdbError> {
        self.writer.write_all(buf)?;
        Ok(())
    }

    fn flush(&mut self) -> Result<(), KdbError> {
        self.writer.flush()?;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), KdbError> {
        self.writer.flush()?;
        self.writer.get_ref().sync_all()?;
        Ok(())
    }
}

impl Storage for FileStorage {
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, KdbError> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Ok(bytes)
    }

    fn open_append(
        &self,
        path: &Path,
        truncate_to: Option<u64>,
    ) -> Result<Box<dyn StorageFile>, KdbError> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(path)?;
        if let Some(len) = truncate_to {
            file.set_len(len)?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok(Box::new(FileHandle {
            writer: BufWriter::new(file),
        }))
    }

    fn create(&self, path: &Path) -> Result<Box<dyn StorageFile>, KdbError> {
        Ok(Box::new(FileHandle {
            writer: BufWriter::new(File::create(path)?),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), KdbError> {
        std::fs::rename(from, to)?;
        Ok(())
    }

    fn sync_dir(&self, path: &Path) -> Result<(), KdbError> {
        // A relative bare filename has parent "" — resolve to ".".
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        File::open(parent)?.sync_all()?;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// In-memory backend.
// ---------------------------------------------------------------------

/// A shared in-memory file map: cloning shares the same files, so a
/// harness can hold one handle while the store writes through another.
#[derive(Debug, Default, Clone)]
pub struct MemStorage {
    files: Arc<Mutex<HashMap<PathBuf, Vec<u8>>>>,
}

impl MemStorage {
    /// An empty in-memory filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of the file's current bytes, if it exists.
    pub fn bytes(&self, path: &Path) -> Option<Vec<u8>> {
        self.files.lock().get(path).cloned()
    }

    /// The file's current length in bytes, if it exists.
    pub fn len(&self, path: &Path) -> Option<usize> {
        self.files.lock().get(path).map(Vec::len)
    }

    /// Writes a file wholesale (the torture harness uses this to
    /// install cut or corrupted journal images).
    pub fn install(&self, path: &Path, bytes: Vec<u8>) {
        self.files.lock().insert(path.to_path_buf(), bytes);
    }

    /// Removes a file, returning whether it existed.
    pub fn remove(&self, path: &Path) -> bool {
        self.files.lock().remove(path).is_some()
    }
}

#[derive(Debug)]
struct MemHandle {
    files: Arc<Mutex<HashMap<PathBuf, Vec<u8>>>>,
    path: PathBuf,
}

impl StorageFile for MemHandle {
    fn append(&mut self, buf: &[u8]) -> Result<(), KdbError> {
        self.files
            .lock()
            .entry(self.path.clone())
            .or_default()
            .extend_from_slice(buf);
        Ok(())
    }

    fn flush(&mut self) -> Result<(), KdbError> {
        Ok(())
    }

    fn sync(&mut self) -> Result<(), KdbError> {
        Ok(())
    }
}

impl Storage for MemStorage {
    fn exists(&self, path: &Path) -> bool {
        self.files.lock().contains_key(path)
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, KdbError> {
        self.files
            .lock()
            .get(path)
            .cloned()
            .ok_or_else(|| KdbError::Io(format!("mem: no such file {}", path.display())))
    }

    fn open_append(
        &self,
        path: &Path,
        truncate_to: Option<u64>,
    ) -> Result<Box<dyn StorageFile>, KdbError> {
        let mut files = self.files.lock();
        let file = files.entry(path.to_path_buf()).or_default();
        if let Some(len) = truncate_to {
            file.truncate(usize::try_from(len).unwrap_or(usize::MAX));
        }
        drop(files);
        Ok(Box::new(MemHandle {
            files: Arc::clone(&self.files),
            path: path.to_path_buf(),
        }))
    }

    fn create(&self, path: &Path) -> Result<Box<dyn StorageFile>, KdbError> {
        self.files.lock().insert(path.to_path_buf(), Vec::new());
        Ok(Box::new(MemHandle {
            files: Arc::clone(&self.files),
            path: path.to_path_buf(),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), KdbError> {
        let mut files = self.files.lock();
        let bytes = files
            .remove(from)
            .ok_or_else(|| KdbError::Io(format!("mem: no such file {}", from.display())))?;
        files.insert(to.to_path_buf(), bytes);
        Ok(())
    }

    fn sync_dir(&self, _path: &Path) -> Result<(), KdbError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Fault injection.
// ---------------------------------------------------------------------

/// A fault the wrapper can inject at a storage-operation tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// An append writes only half its bytes, then fails with `ENOSPC` —
    /// the torn-write shape of a full disk.
    ShortWrite,
    /// An append (or create/rename) fails with `ENOSPC` before writing.
    NoSpace,
    /// Any operation fails with `EIO`.
    IoError,
    /// An fsync fails; the bytes reached the OS but durability is not
    /// acknowledged.
    SyncFail,
    /// A read returns the file with one deterministically chosen bit
    /// flipped — silent media corruption.
    BitFlip,
}

impl FaultKind {
    /// Every injectable fault, in a stable order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::ShortWrite,
        FaultKind::NoSpace,
        FaultKind::IoError,
        FaultKind::SyncFail,
        FaultKind::BitFlip,
    ];

    /// A stable diagnostic name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::ShortWrite => "short_write",
            FaultKind::NoSpace => "enospc",
            FaultKind::IoError => "eio",
            FaultKind::SyncFail => "fsync_fail",
            FaultKind::BitFlip => "bit_flip",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultKind::ShortWrite => 0,
            FaultKind::NoSpace => 1,
            FaultKind::IoError => 2,
            FaultKind::SyncFail => 3,
            FaultKind::BitFlip => 4,
        }
    }
}

#[derive(Debug, Default)]
struct FaultPlan {
    one_shot: BTreeMap<u64, FaultKind>,
    persistent: Option<FaultKind>,
}

#[derive(Debug, Default)]
struct FaultControl {
    tick: AtomicU64,
    plan: Mutex<FaultPlan>,
    injected: [AtomicU64; FaultKind::ALL.len()],
}

impl FaultControl {
    /// Advances the tick and returns the fault scheduled for it, if any.
    fn next_fault(&self) -> Option<FaultKind> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut plan = self.plan.lock();
        plan.one_shot.remove(&tick).or(plan.persistent)
    }

    fn inject(&self, kind: FaultKind) {
        self.injected[kind.index()].fetch_add(1, Ordering::Relaxed);
    }
}

/// Scheduling and inspection handle for a [`FaultyStorage`] — the
/// wrapper keeps working after the handle is dropped, fault-free.
#[derive(Debug, Clone)]
pub struct FaultHandle {
    ctl: Arc<FaultControl>,
}

impl FaultHandle {
    /// Schedules `kind` to fire at operation tick `tick` (one-shot).
    /// Ticks count every storage operation: appends, syncs, reads,
    /// creates, renames, and dir-syncs, in call order.
    pub fn fail_at(&self, tick: u64, kind: FaultKind) {
        self.ctl.plan.lock().one_shot.insert(tick, kind);
    }

    /// Makes every subsequent eligible operation fail with `kind` until
    /// [`FaultHandle::clear`] — a persistently broken disk.
    pub fn fail_persistently(&self, kind: FaultKind) {
        self.ctl.plan.lock().persistent = Some(kind);
    }

    /// Removes all scheduled and persistent faults.
    pub fn clear(&self) {
        let mut plan = self.ctl.plan.lock();
        plan.one_shot.clear();
        plan.persistent = None;
    }

    /// Operation ticks consumed so far (the fault-point space the
    /// torture harness enumerates).
    pub fn ticks(&self) -> u64 {
        self.ctl.tick.load(Ordering::Relaxed)
    }

    /// How many faults of `kind` actually fired.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.ctl.injected[kind.index()].load(Ordering::Relaxed)
    }

    /// Total faults fired across all kinds.
    pub fn injected_total(&self) -> u64 {
        FaultKind::ALL.iter().map(|&k| self.injected(k)).sum()
    }
}

/// Wraps a backend and injects scheduled faults (see [`FaultHandle`]).
#[derive(Debug)]
pub struct FaultyStorage {
    inner: Arc<dyn Storage>,
    ctl: Arc<FaultControl>,
}

impl FaultyStorage {
    /// Wraps `inner`, returning the storage and its scheduling handle.
    pub fn wrap(inner: Arc<dyn Storage>) -> (Arc<Self>, FaultHandle) {
        let ctl = Arc::new(FaultControl::default());
        (
            Arc::new(Self {
                inner,
                ctl: Arc::clone(&ctl),
            }),
            FaultHandle { ctl },
        )
    }

    fn fail_io(&self, kind: FaultKind, what: &str) -> KdbError {
        self.ctl.inject(kind);
        KdbError::Io(format!("injected {} during {what}", kind.name()))
    }
}

/// SplitMix64: deterministic bit selection for read corruption.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Storage for FaultyStorage {
    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, KdbError> {
        let fault = self.ctl.next_fault();
        let mut bytes = self.inner.read(path)?;
        match fault {
            Some(FaultKind::BitFlip) if !bytes.is_empty() => {
                self.ctl.inject(FaultKind::BitFlip);
                let r = mix64(self.ctl.tick.load(Ordering::Relaxed));
                let idx = (r % bytes.len() as u64) as usize;
                bytes[idx] ^= 1 << ((r >> 32) % 8);
                Ok(bytes)
            }
            Some(FaultKind::IoError) => Err(self.fail_io(FaultKind::IoError, "read")),
            _ => Ok(bytes),
        }
    }

    fn open_append(
        &self,
        path: &Path,
        truncate_to: Option<u64>,
    ) -> Result<Box<dyn StorageFile>, KdbError> {
        match self.ctl.next_fault() {
            Some(FaultKind::IoError) => Err(self.fail_io(FaultKind::IoError, "open")),
            _ => Ok(Box::new(FaultyFile {
                inner: self.inner.open_append(path, truncate_to)?,
                ctl: Arc::clone(&self.ctl),
            })),
        }
    }

    fn create(&self, path: &Path) -> Result<Box<dyn StorageFile>, KdbError> {
        match self.ctl.next_fault() {
            Some(kind @ (FaultKind::IoError | FaultKind::NoSpace)) => {
                Err(self.fail_io(kind, "create"))
            }
            _ => Ok(Box::new(FaultyFile {
                inner: self.inner.create(path)?,
                ctl: Arc::clone(&self.ctl),
            })),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), KdbError> {
        match self.ctl.next_fault() {
            Some(kind @ (FaultKind::IoError | FaultKind::NoSpace)) => {
                Err(self.fail_io(kind, "rename"))
            }
            _ => self.inner.rename(from, to),
        }
    }

    fn sync_dir(&self, path: &Path) -> Result<(), KdbError> {
        match self.ctl.next_fault() {
            Some(kind @ (FaultKind::IoError | FaultKind::SyncFail)) => {
                Err(self.fail_io(kind, "dir sync"))
            }
            _ => self.inner.sync_dir(path),
        }
    }
}

#[derive(Debug)]
struct FaultyFile {
    inner: Box<dyn StorageFile>,
    ctl: Arc<FaultControl>,
}

impl FaultyFile {
    fn fail_io(&self, kind: FaultKind, what: &str) -> KdbError {
        self.ctl.inject(kind);
        KdbError::Io(format!("injected {} during {what}", kind.name()))
    }
}

impl StorageFile for FaultyFile {
    fn append(&mut self, buf: &[u8]) -> Result<(), KdbError> {
        match self.ctl.next_fault() {
            Some(FaultKind::ShortWrite) => {
                // Half the record lands on disk, then the device fills.
                self.inner.append(&buf[..buf.len() / 2])?;
                Err(self.fail_io(FaultKind::ShortWrite, "append"))
            }
            Some(kind @ (FaultKind::NoSpace | FaultKind::IoError)) => {
                Err(self.fail_io(kind, "append"))
            }
            _ => self.inner.append(buf),
        }
    }

    fn flush(&mut self) -> Result<(), KdbError> {
        // Flush is paired with every append; faults tick on the append.
        self.inner.flush()
    }

    fn sync(&mut self) -> Result<(), KdbError> {
        match self.ctl.next_fault() {
            Some(kind @ (FaultKind::SyncFail | FaultKind::IoError)) => {
                Err(self.fail_io(kind, "fsync"))
            }
            _ => self.inner.sync(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_round_trips_and_shares() {
        let mem = MemStorage::new();
        let path = Path::new("j");
        assert!(!mem.exists(path));
        let mut f = mem.open_append(path, None).unwrap();
        f.append(b"hello ").unwrap();
        f.append(b"world").unwrap();
        f.sync().unwrap();
        // A clone sees the same file.
        let view = mem.clone();
        assert_eq!(view.read(path).unwrap(), b"hello world");
        assert_eq!(view.len(path), Some(11));
        // Truncating reopen drops the tail.
        let mut f = mem.open_append(path, Some(5)).unwrap();
        f.append(b"!").unwrap();
        assert_eq!(mem.bytes(path).unwrap(), b"hello!");
        mem.rename(path, Path::new("k")).unwrap();
        assert!(!mem.exists(path));
        assert_eq!(mem.read(Path::new("k")).unwrap(), b"hello!");
    }

    #[test]
    fn file_storage_appends_truncates_and_renames() {
        let dir = std::env::temp_dir();
        let a = dir.join(format!("ada_storage_a_{}", std::process::id()));
        let b = dir.join(format!("ada_storage_b_{}", std::process::id()));
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
        let fs = FileStorage;
        let mut f = fs.open_append(&a, None).unwrap();
        f.append(b"0123456789").unwrap();
        f.sync().unwrap();
        drop(f);
        let mut f = fs.open_append(&a, Some(4)).unwrap();
        f.append(b"X").unwrap();
        f.flush().unwrap();
        drop(f);
        assert_eq!(fs.read(&a).unwrap(), b"0123X");
        fs.rename(&a, &b).unwrap();
        fs.sync_dir(&b).unwrap();
        assert!(!fs.exists(&a) && fs.exists(&b));
        std::fs::remove_file(&b).ok();
    }

    #[test]
    fn one_shot_fault_fires_at_its_tick_only() {
        let (storage, handle) = FaultyStorage::wrap(Arc::new(MemStorage::new()));
        let path = Path::new("j");
        let mut f = storage.open_append(path, None).unwrap(); // tick 0
        handle.fail_at(2, FaultKind::NoSpace);
        f.append(b"a").unwrap(); // tick 1
        let err = f.append(b"b").unwrap_err(); // tick 2 — fault
        assert!(err.to_string().contains("enospc"), "{err}");
        f.append(b"c").unwrap(); // tick 3 — healthy again
        assert_eq!(handle.injected(FaultKind::NoSpace), 1);
        assert_eq!(handle.injected_total(), 1);
        assert!(handle.ticks() >= 4);
    }

    #[test]
    fn short_write_leaves_a_torn_prefix() {
        let mem = Arc::new(MemStorage::new());
        let (storage, handle) = FaultyStorage::wrap(mem.clone());
        let path = Path::new("j");
        let mut f = storage.open_append(path, None).unwrap();
        handle.fail_persistently(FaultKind::ShortWrite);
        assert!(f.append(b"0123456789").is_err());
        assert_eq!(mem.bytes(path).unwrap(), b"01234", "half the record");
        handle.clear();
        f.append(b"ok").unwrap();
        assert_eq!(mem.bytes(path).unwrap(), b"01234ok");
    }

    #[test]
    fn sync_fault_fails_fsync_but_not_appends() {
        let (storage, handle) = FaultyStorage::wrap(Arc::new(MemStorage::new()));
        let mut f = storage.open_append(Path::new("j"), None).unwrap();
        handle.fail_persistently(FaultKind::SyncFail);
        f.append(b"x").unwrap();
        assert!(f.sync().is_err());
        assert_eq!(handle.injected(FaultKind::SyncFail), 1);
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit_deterministically() {
        let mem = Arc::new(MemStorage::new());
        mem.install(Path::new("j"), vec![0u8; 64]);
        let (storage, handle) = FaultyStorage::wrap(mem);
        handle.fail_at(0, FaultKind::BitFlip);
        let corrupted = storage.read(Path::new("j")).unwrap();
        let flipped: u32 = corrupted.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flipped");
        // Subsequent reads are clean.
        let clean = storage.read(Path::new("j")).unwrap();
        assert!(clean.iter().all(|&b| b == 0));
        assert_eq!(handle.injected(FaultKind::BitFlip), 1);
    }
}
