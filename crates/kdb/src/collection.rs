//! A collection: documents with ids, filtered scans, and indexes.

use std::collections::BTreeMap;
use std::ops::Bound;

use serde::{Deserialize, Serialize};

use crate::document::{Document, Value};
use crate::error::KdbError;
use crate::index::Index;
use crate::query::Filter;

/// Document identifier within a collection.
pub type DocId = u64;

/// A named set of documents with optional secondary indexes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Collection {
    name: String,
    docs: BTreeMap<DocId, Document>,
    next_id: DocId,
    indexes: BTreeMap<String, Index>,
}

impl Collection {
    /// An empty collection.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            docs: BTreeMap::new(),
            next_id: 1,
            indexes: BTreeMap::new(),
        }
    }

    /// The collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when the collection holds no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Inserts a document, assigning the next id and materializing it
    /// into the document's `_id` field. Returns the id.
    pub fn insert(&mut self, mut doc: Document) -> DocId {
        let id = self.next_id;
        self.next_id += 1;
        doc.set("_id", id as i64);
        for index in self.indexes.values_mut() {
            index.add(id, &doc);
        }
        self.docs.insert(id, doc);
        id
    }

    /// Inserts a document under an explicit id (journal replay).
    ///
    /// # Errors
    /// Returns [`KdbError::UnknownDocument`] when the id is already
    /// taken (re-used ids would corrupt the journal semantics).
    pub fn insert_with_id(&mut self, id: DocId, mut doc: Document) -> Result<(), KdbError> {
        if self.docs.contains_key(&id) {
            return Err(KdbError::UnknownDocument(id));
        }
        doc.set("_id", id as i64);
        self.next_id = self.next_id.max(id + 1);
        for index in self.indexes.values_mut() {
            index.add(id, &doc);
        }
        self.docs.insert(id, doc);
        Ok(())
    }

    /// The document with the given id.
    pub fn get(&self, id: DocId) -> Option<&Document> {
        self.docs.get(&id)
    }

    /// Replaces the document with the given id (its `_id` field is
    /// restored), updating indexes.
    ///
    /// # Errors
    /// Returns [`KdbError::UnknownDocument`] when the id is absent.
    pub fn update(&mut self, id: DocId, mut doc: Document) -> Result<(), KdbError> {
        let old = self
            .docs
            .get(&id)
            .ok_or(KdbError::UnknownDocument(id))?
            .clone();
        doc.set("_id", id as i64);
        for index in self.indexes.values_mut() {
            index.remove(id, &old);
            index.add(id, &doc);
        }
        self.docs.insert(id, doc);
        Ok(())
    }

    /// Deletes the document with the given id, updating indexes.
    ///
    /// # Errors
    /// Returns [`KdbError::UnknownDocument`] when the id is absent.
    pub fn delete(&mut self, id: DocId) -> Result<(), KdbError> {
        let old = self.docs.remove(&id).ok_or(KdbError::UnknownDocument(id))?;
        for index in self.indexes.values_mut() {
            index.remove(id, &old);
        }
        Ok(())
    }

    /// Creates a secondary index on a dotted path, indexing existing
    /// documents.
    ///
    /// # Errors
    /// Returns [`KdbError::IndexExists`] when the path is already
    /// indexed.
    pub fn create_index(&mut self, path: impl Into<String>) -> Result<(), KdbError> {
        let path = path.into();
        if self.indexes.contains_key(&path) {
            return Err(KdbError::IndexExists(path));
        }
        let mut index = Index::new(path.clone());
        for (&id, doc) in &self.docs {
            index.add(id, doc);
        }
        self.indexes.insert(path, index);
        Ok(())
    }

    /// Removes a secondary index (used to roll back a `CreateIndex`
    /// whose journal append failed). Returns whether it existed.
    pub fn drop_index(&mut self, path: &str) -> bool {
        self.indexes.remove(path).is_some()
    }

    /// Undoes the most recent [`Collection::insert`]: removes the
    /// document and returns the id counter so the next insert re-uses
    /// the same id. Only valid for the id just handed out.
    pub(crate) fn uninsert(&mut self, id: DocId) {
        debug_assert_eq!(id + 1, self.next_id, "uninsert must undo the last insert");
        if let Some(old) = self.docs.remove(&id) {
            for index in self.indexes.values_mut() {
                index.remove(id, &old);
            }
        }
        self.next_id = id;
    }

    /// True when a dotted path is indexed.
    pub fn has_index(&self, path: &str) -> bool {
        self.indexes.contains_key(path)
    }

    /// Indexed paths.
    pub fn index_paths(&self) -> Vec<&str> {
        self.indexes.keys().map(String::as_str).collect()
    }

    /// All documents matching the filter, in id order. Uses an index to
    /// pre-select candidates when the filter (or one leg of a top-level
    /// `And`) is an `Eq`/range test on an indexed path; every candidate
    /// is still verified against the full filter.
    pub fn find(&self, filter: &Filter) -> Vec<(DocId, &Document)> {
        match self.index_candidates(filter) {
            Some(mut ids) => {
                ids.sort_unstable();
                ids.dedup();
                ids.into_iter()
                    .filter_map(|id| self.docs.get(&id).map(|d| (id, d)))
                    .filter(|(_, d)| filter.matches(d))
                    .collect()
            }
            None => self
                .docs
                .iter()
                .filter(|(_, d)| filter.matches(d))
                .map(|(&id, d)| (id, d))
                .collect(),
        }
    }

    /// Number of documents matching the filter.
    pub fn count(&self, filter: &Filter) -> usize {
        self.find(filter).len()
    }

    /// First document matching the filter (lowest id).
    pub fn find_one(&self, filter: &Filter) -> Option<(DocId, &Document)> {
        self.find(filter).into_iter().next()
    }

    /// Iterates over all (id, document) pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (DocId, &Document)> {
        self.docs.iter().map(|(&id, d)| (id, d))
    }

    /// Candidate ids from an index, or `None` when no index applies.
    fn index_candidates(&self, filter: &Filter) -> Option<Vec<DocId>> {
        match filter {
            Filter::Eq(path, v) => self.indexes.get(path).map(|i| i.lookup_eq(v)),
            Filter::Gt(path, v) => self
                .indexes
                .get(path)
                .map(|i| i.lookup_range(v, Bound::Excluded(()), Bound::Unbounded)),
            Filter::Gte(path, v) => self
                .indexes
                .get(path)
                .map(|i| i.lookup_range(v, Bound::Included(()), Bound::Unbounded)),
            Filter::Lt(path, v) => self
                .indexes
                .get(path)
                .map(|i| i.lookup_range(v, Bound::Unbounded, Bound::Excluded(()))),
            Filter::Lte(path, v) => self
                .indexes
                .get(path)
                .map(|i| i.lookup_range(v, Bound::Unbounded, Bound::Included(()))),
            Filter::In(path, values) => self.indexes.get(path).map(|i| {
                values
                    .iter()
                    .flat_map(|v| i.lookup_eq(v))
                    .collect::<Vec<_>>()
            }),
            Filter::And(filters) => filters.iter().find_map(|f| self.index_candidates(f)),
            _ => None,
        }
    }
}

/// Borrow-free equality helper re-exported for the store's tests.
#[allow(unused)]
pub(crate) fn value_i64(v: i64) -> Value {
    Value::I64(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(kind: &str, score: f64) -> Document {
        Document::new().with("kind", kind).with("score", score)
    }

    #[test]
    fn insert_assigns_sequential_ids_and_sets_id_field() {
        let mut c = Collection::new("items");
        let a = c.insert(item("cluster", 0.9));
        let b = c.insert(item("pattern", 0.5));
        assert_eq!((a, b), (1, 2));
        assert_eq!(c.get(1).unwrap().get("_id").unwrap().as_i64(), Some(1));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn update_and_delete() {
        let mut c = Collection::new("items");
        let id = c.insert(item("cluster", 0.9));
        c.update(id, item("cluster", 0.1)).unwrap();
        assert_eq!(c.get(id).unwrap().get("score").unwrap().as_f64(), Some(0.1));
        assert_eq!(
            c.get(id).unwrap().get("_id").unwrap().as_i64(),
            Some(id as i64)
        );
        c.delete(id).unwrap();
        assert!(c.get(id).is_none());
        assert_eq!(
            c.update(id, item("x", 0.0)),
            Err(KdbError::UnknownDocument(id))
        );
        assert_eq!(c.delete(id), Err(KdbError::UnknownDocument(id)));
    }

    #[test]
    fn find_without_index_scans() {
        let mut c = Collection::new("items");
        c.insert(item("cluster", 0.9));
        c.insert(item("pattern", 0.5));
        c.insert(item("cluster", 0.2));
        let found = c.find(&Filter::eq("kind", "cluster"));
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].0, 1);
        assert_eq!(found[1].0, 3);
        assert_eq!(c.count(&Filter::True), 3);
    }

    #[test]
    fn find_with_index_matches_scan() {
        let mut c = Collection::new("items");
        for i in 0..50 {
            c.insert(item(
                if i % 3 == 0 { "cluster" } else { "pattern" },
                i as f64 / 50.0,
            ));
        }
        let scan: Vec<DocId> = c
            .find(&Filter::eq("kind", "cluster"))
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        c.create_index("kind").unwrap();
        let indexed: Vec<DocId> = c
            .find(&Filter::eq("kind", "cluster"))
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        assert_eq!(scan, indexed);
        assert!(c.has_index("kind"));
        assert_eq!(
            c.create_index("kind"),
            Err(KdbError::IndexExists("kind".into()))
        );
    }

    #[test]
    fn indexed_range_queries() {
        let mut c = Collection::new("items");
        for i in 0..20 {
            c.insert(item("x", i as f64));
        }
        c.create_index("score").unwrap();
        let gt = c.find(&Filter::Gt("score".into(), Value::F64(16.5)));
        assert_eq!(gt.len(), 3);
        let lte = c.find(&Filter::Lte("score".into(), Value::I64(2)));
        assert_eq!(lte.len(), 3);
    }

    #[test]
    fn index_survives_updates_and_deletes() {
        let mut c = Collection::new("items");
        let id = c.insert(item("cluster", 1.0));
        c.create_index("kind").unwrap();
        c.update(id, item("pattern", 1.0)).unwrap();
        assert!(c.find(&Filter::eq("kind", "cluster")).is_empty());
        assert_eq!(c.find(&Filter::eq("kind", "pattern")).len(), 1);
        c.delete(id).unwrap();
        assert!(c.find(&Filter::eq("kind", "pattern")).is_empty());
    }

    #[test]
    fn and_filter_uses_index_leg() {
        let mut c = Collection::new("items");
        for i in 0..30 {
            c.insert(item(if i < 10 { "a" } else { "b" }, i as f64));
        }
        c.create_index("kind").unwrap();
        let f = Filter::and([
            Filter::eq("kind", "a"),
            Filter::Gt("score".into(), Value::F64(5.0)),
        ]);
        let found = c.find(&f);
        assert_eq!(found.len(), 4); // scores 6..=9
    }

    #[test]
    fn insert_with_id_respects_sequence() {
        let mut c = Collection::new("items");
        c.insert_with_id(10, item("a", 1.0)).unwrap();
        assert!(c.insert_with_id(10, item("b", 1.0)).is_err());
        let next = c.insert(item("c", 1.0));
        assert_eq!(next, 11);
    }

    #[test]
    fn find_one_returns_lowest_id() {
        let mut c = Collection::new("items");
        c.insert(item("a", 1.0));
        c.insert(item("a", 2.0));
        let (id, _) = c.find_one(&Filter::eq("kind", "a")).unwrap();
        assert_eq!(id, 1);
        assert!(c.find_one(&Filter::eq("kind", "zzz")).is_none());
    }
}
