//! The K-DB database object: named collections + optional journal.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::collection::{Collection, DocId};
use crate::document::Document;
use crate::error::KdbError;
use crate::journal::{replay_bytes, CorruptionReport, DurabilityPolicy, Journal, Op, RecoveryMode};
use crate::query::Filter;
use crate::storage::{FileStorage, Storage};

/// How a [`Kdb`] opens its journal: which storage backend, what
/// durability policy for appends, and how to react to corruption.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Storage backend (real filesystem by default; swap in
    /// [`crate::storage::MemStorage`] or [`crate::storage::FaultyStorage`]
    /// in tests).
    pub storage: Arc<dyn Storage>,
    /// When appended ops are fsynced.
    pub durability: DurabilityPolicy,
    /// Strict (fail loudly) or salvage (recover prefix + quarantine)
    /// on mid-file corruption.
    pub recovery: RecoveryMode,
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self {
            storage: Arc::new(FileStorage),
            durability: DurabilityPolicy::default(),
            recovery: RecoveryMode::default(),
        }
    }
}

impl StoreOptions {
    /// Options over a specific storage backend.
    pub fn with_storage(storage: Arc<dyn Storage>) -> Self {
        Self {
            storage,
            ..Self::default()
        }
    }

    /// Sets the durability policy.
    #[must_use]
    pub fn durability(mut self, durability: DurabilityPolicy) -> Self {
        self.durability = durability;
        self
    }

    /// Sets the corruption recovery mode.
    #[must_use]
    pub fn recovery(mut self, recovery: RecoveryMode) -> Self {
        self.recovery = recovery;
        self
    }
}

/// A document database of named collections.
///
/// All mutations go through [`Kdb`] methods so they can be journaled;
/// reads can also borrow a [`Collection`] directly via
/// [`Kdb::collection`].
///
/// ```
/// use ada_kdb::{Document, Filter, Kdb};
///
/// let mut db = Kdb::in_memory();
/// db.create_collection("items").unwrap();
/// db.insert("items", Document::new().with("kind", "cluster").with("score", 0.9))
///     .unwrap();
/// let found = db.find("items", &Filter::eq("kind", "cluster")).unwrap();
/// assert_eq!(found.len(), 1);
/// ```
#[derive(Debug)]
pub struct Kdb {
    collections: BTreeMap<String, Collection>,
    journal: Option<Journal>,
    /// Journal append failures rolled back by the mutators.
    log_failures: u64,
    /// Corruption salvaged at open (quarantined remainder), if any.
    salvaged: Option<CorruptionReport>,
}

impl Kdb {
    /// An in-memory store with no persistence.
    pub fn in_memory() -> Self {
        Self {
            collections: BTreeMap::new(),
            journal: None,
            log_failures: 0,
            salvaged: None,
        }
    }

    /// Opens (creating if needed) a journaled store at `path`, replaying
    /// the existing journal and truncating any torn tail left by a
    /// crash.
    ///
    /// # Errors
    /// Returns [`KdbError::Io`] on filesystem failures,
    /// [`KdbError::Corrupt`] on mid-file corruption of a v2 journal, or
    /// [`KdbError::Journal`] when a *replayed* operation is inconsistent
    /// (e.g. an insert into a collection that was never created).
    pub fn open(path: &Path) -> Result<Self, KdbError> {
        Self::open_with(path, StoreOptions::default())
    }

    /// [`Kdb::open`] with explicit storage backend, durability policy
    /// and recovery mode. Under [`RecoveryMode::Salvage`] a corrupt
    /// journal's valid prefix is recovered, the unreadable remainder is
    /// copied to `<path>.quarantine`, and the report is available via
    /// [`Kdb::salvaged`].
    ///
    /// # Errors
    /// As [`Kdb::open`]; strict mode surfaces [`KdbError::Corrupt`].
    pub fn open_with(path: &Path, options: StoreOptions) -> Result<Self, KdbError> {
        let StoreOptions {
            storage,
            durability,
            recovery,
        } = options;
        let mut store = Self::in_memory();
        let valid_len = if storage.exists(path) {
            let bytes = storage.read(path)?;
            let replayed = replay_bytes(&bytes, recovery)?;
            for (line, op) in replayed.ops.into_iter().enumerate() {
                store
                    .apply(&op)
                    .map_err(|e| KdbError::Journal(line + 1, e.to_string()))?;
            }
            if let Some(report) = replayed.corruption {
                // Salvage: preserve the unreadable remainder next to the
                // journal before it is truncated away, for forensics.
                let quarantine = quarantine_path(path);
                let mut file = storage.create(&quarantine)?;
                file.append(&bytes[usize::try_from(replayed.valid_len).unwrap_or(0)..])?;
                file.sync()?;
                store.salvaged = Some(report);
            }
            Some(replayed.valid_len)
        } else {
            None
        };
        store.journal = Some(Journal::open_with(storage, path, valid_len, durability)?);
        Ok(store)
    }

    /// The corruption report when this store was opened in salvage mode
    /// over a corrupt journal (the remainder sits in `<path>.quarantine`).
    pub fn salvaged(&self) -> Option<&CorruptionReport> {
        self.salvaged.as_ref()
    }

    /// Applies an op to in-memory state (no journaling).
    fn apply(&mut self, op: &Op) -> Result<(), KdbError> {
        match op {
            Op::CreateCollection { name } => {
                if self.collections.contains_key(name) {
                    return Err(KdbError::CollectionExists(name.clone()));
                }
                self.collections
                    .insert(name.clone(), Collection::new(name.clone()));
                Ok(())
            }
            Op::CreateIndex { name, path } => self.coll_mut(name)?.create_index(path.clone()),
            Op::Insert { name, id, doc } => self.coll_mut(name)?.insert_with_id(*id, doc.clone()),
            Op::Update { name, id, doc } => self.coll_mut(name)?.update(*id, doc.clone()),
            Op::Delete { name, id } => self.coll_mut(name)?.delete(*id),
        }
    }

    /// Appends an op to the journal. A failure here means the op was
    /// **not** persisted: the caller must undo its in-memory effect so
    /// memory never runs ahead of the journal. The failure is counted
    /// towards [`Kdb::journal_fault_count`].
    fn log(&mut self, op: &Op) -> Result<(), KdbError> {
        if let Some(journal) = &mut self.journal {
            if let Err(e) = journal.append(op) {
                self.log_failures += 1;
                return Err(e);
            }
        }
        Ok(())
    }

    fn coll_mut(&mut self, name: &str) -> Result<&mut Collection, KdbError> {
        self.collections
            .get_mut(name)
            .ok_or_else(|| KdbError::UnknownCollection(name.to_owned()))
    }

    /// Creates a collection.
    ///
    /// # Errors
    /// Returns [`KdbError::CollectionExists`] for duplicates, or an I/O
    /// error from the journal.
    pub fn create_collection(&mut self, name: impl Into<String>) -> Result<(), KdbError> {
        let name = name.into();
        let op = Op::CreateCollection { name: name.clone() };
        self.apply(&op)?;
        self.log(&op).inspect_err(|_| {
            self.collections.remove(&name);
        })
    }

    /// Creates a collection if it does not already exist.
    ///
    /// # Errors
    /// Returns journal I/O errors.
    pub fn ensure_collection(&mut self, name: impl Into<String>) -> Result<(), KdbError> {
        let name = name.into();
        if !self.collections.contains_key(&name) {
            self.create_collection(name)?;
        }
        Ok(())
    }

    /// Creates a secondary index if the path is not already indexed.
    ///
    /// # Errors
    /// Returns [`KdbError::UnknownCollection`] or a journal I/O error.
    pub fn ensure_index(&mut self, collection: &str, path: &str) -> Result<(), KdbError> {
        match self.create_index(collection, path) {
            Err(KdbError::IndexExists(_)) => Ok(()),
            other => other,
        }
    }

    /// Creates a secondary index.
    ///
    /// # Errors
    /// Returns [`KdbError::UnknownCollection`], [`KdbError::IndexExists`]
    /// or a journal I/O error.
    pub fn create_index(
        &mut self,
        collection: &str,
        path: impl Into<String>,
    ) -> Result<(), KdbError> {
        let path = path.into();
        let op = Op::CreateIndex {
            name: collection.to_owned(),
            path: path.clone(),
        };
        self.apply(&op)?;
        self.log(&op).inspect_err(|_| {
            if let Some(coll) = self.collections.get_mut(collection) {
                coll.drop_index(&path);
            }
        })
    }

    /// Inserts a document, returning its id.
    ///
    /// # Errors
    /// Returns [`KdbError::UnknownCollection`] or a journal I/O error.
    pub fn insert(&mut self, collection: &str, doc: Document) -> Result<DocId, KdbError> {
        let id = self.coll_mut(collection)?.insert(doc);
        // Journal the document as stored (with _id materialized).
        let stored = self.collections[collection]
            .get(id)
            .expect("just inserted")
            .clone();
        self.log(&Op::Insert {
            name: collection.to_owned(),
            id,
            doc: stored,
        })
        .inspect_err(|_| {
            if let Some(coll) = self.collections.get_mut(collection) {
                coll.uninsert(id);
            }
        })?;
        Ok(id)
    }

    /// Replaces a document.
    ///
    /// # Errors
    /// Returns [`KdbError::UnknownCollection`],
    /// [`KdbError::UnknownDocument`] or a journal I/O error.
    pub fn update(&mut self, collection: &str, id: DocId, doc: Document) -> Result<(), KdbError> {
        let prior = self.collection(collection).and_then(|c| c.get(id)).cloned();
        let op = Op::Update {
            name: collection.to_owned(),
            id,
            doc,
        };
        self.apply(&op)?;
        self.log(&op).inspect_err(|_| {
            if let (Some(coll), Some(old)) = (self.collections.get_mut(collection), prior) {
                coll.update(id, old).expect("rollback of an applied update");
            }
        })
    }

    /// Deletes a document.
    ///
    /// # Errors
    /// Returns [`KdbError::UnknownCollection`],
    /// [`KdbError::UnknownDocument`] or a journal I/O error.
    pub fn delete(&mut self, collection: &str, id: DocId) -> Result<(), KdbError> {
        let prior = self.collection(collection).and_then(|c| c.get(id)).cloned();
        let op = Op::Delete {
            name: collection.to_owned(),
            id,
        };
        self.apply(&op)?;
        self.log(&op).inspect_err(|_| {
            if let (Some(coll), Some(old)) = (self.collections.get_mut(collection), prior) {
                coll.insert_with_id(id, old)
                    .expect("rollback of an applied delete");
            }
        })
    }

    /// Borrows a collection for reads.
    pub fn collection(&self, name: &str) -> Option<&Collection> {
        self.collections.get(name)
    }

    /// Collection names, sorted.
    pub fn collection_names(&self) -> Vec<&str> {
        self.collections.keys().map(String::as_str).collect()
    }

    /// Finds documents in a collection (cloned out for ownership
    /// simplicity at call sites that hold the store mutably elsewhere).
    ///
    /// # Errors
    /// Returns [`KdbError::UnknownCollection`].
    pub fn find(
        &self,
        collection: &str,
        filter: &Filter,
    ) -> Result<Vec<(DocId, Document)>, KdbError> {
        let coll = self
            .collections
            .get(collection)
            .ok_or_else(|| KdbError::UnknownCollection(collection.to_owned()))?;
        Ok(coll
            .find(filter)
            .into_iter()
            .map(|(id, d)| (id, d.clone()))
            .collect())
    }

    /// The minimal op sequence that reconstructs the current state, in
    /// deterministic (collection name, doc id) order. This is both the
    /// snapshot-compaction content and the basis of [`Kdb::fingerprint`].
    pub fn state_ops(&self) -> Vec<Op> {
        let mut ops = Vec::new();
        for (name, coll) in &self.collections {
            ops.push(Op::CreateCollection { name: name.clone() });
            for path in coll.index_paths() {
                ops.push(Op::CreateIndex {
                    name: name.clone(),
                    path: path.to_owned(),
                });
            }
            for (id, doc) in coll.iter() {
                ops.push(Op::Insert {
                    name: name.clone(),
                    id,
                    doc: doc.clone(),
                });
            }
        }
        ops
    }

    /// A 64-bit FNV-1a digest of the canonical state encoding. Two
    /// stores holding the same collections/indexes/documents produce
    /// the same fingerprint regardless of the journal history that got
    /// them there — the equality check behind the torture harness's
    /// prefix-consistency invariant.
    pub fn fingerprint(&self) -> u64 {
        fingerprint_ops(&self.state_ops())
    }

    /// Decomposes the store into its raw parts for the sharded facade
    /// ([`crate::SharedKdb`]): collections, journal, accumulated append
    /// failures and any salvage report.
    pub(crate) fn into_parts(
        self,
    ) -> (
        BTreeMap<String, Collection>,
        Option<Journal>,
        u64,
        Option<CorruptionReport>,
    ) {
        (
            self.collections,
            self.journal,
            self.log_failures,
            self.salvaged,
        )
    }

    /// Compacts the journal to the minimal op sequence reconstructing
    /// the current state (upgrading v1 journals to v2). No-op for
    /// in-memory stores.
    ///
    /// # Errors
    /// Returns journal I/O errors.
    pub fn snapshot(&mut self) -> Result<(), KdbError> {
        let ops = self.state_ops();
        let Some(journal) = &mut self.journal else {
            return Ok(());
        };
        journal.rewrite(&ops)
    }

    /// Forces an fsync of the journal, making every acknowledged op
    /// durable. No-op for in-memory stores.
    ///
    /// # Errors
    /// Returns [`KdbError::Io`] when the fsync fails.
    pub fn sync(&mut self) -> Result<(), KdbError> {
        match &mut self.journal {
            Some(journal) => journal.sync(),
            None => Ok(()),
        }
    }

    /// Replaces the journal durability policy. No-op for in-memory
    /// stores.
    pub fn set_durability(&mut self, durability: DurabilityPolicy) {
        if let Some(journal) = &mut self.journal {
            journal.set_durability(durability);
        }
    }

    /// Journal faults observed since open: append failures that were
    /// rolled back plus fsync failures swallowed as non-durable acks.
    /// The service watches this to decide when to degrade.
    pub fn journal_fault_count(&self) -> u64 {
        self.log_failures + self.journal.as_ref().map_or(0, Journal::sync_faults)
    }

    /// Ops acknowledged by the journal since open (0 when in-memory).
    pub fn journal_acked_ops(&self) -> u64 {
        self.journal.as_ref().map_or(0, Journal::acked_ops)
    }

    /// Ops known fsync-durable since open (0 when in-memory).
    pub fn journal_durable_ops(&self) -> u64 {
        self.journal.as_ref().map_or(0, Journal::durable_ops)
    }
}

/// Where salvage mode preserves the unreadable remainder of a corrupt
/// journal.
pub fn quarantine_path(journal: &Path) -> PathBuf {
    journal.with_extension("quarantine")
}

/// A 64-bit FNV-1a digest over a canonical op sequence — the shared
/// fingerprint primitive behind [`Kdb::fingerprint`] and the per-shard
/// digests of the sharded facade. Ops are separated by an out-of-band
/// byte so concatenation ambiguity cannot collide.
pub fn fingerprint_ops(ops: &[Op]) -> u64 {
    let mut buf = String::new();
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for op in ops {
        buf.clear();
        op.encode_into(&mut buf);
        for b in buf.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash ^= 0xFF;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Value;

    fn item(kind: &str, score: f64) -> Document {
        Document::new().with("kind", kind).with("score", score)
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ada_kdb_store_{tag}_{}", std::process::id()))
    }

    #[test]
    fn in_memory_crud() {
        let mut db = Kdb::in_memory();
        db.create_collection("items").unwrap();
        let id = db.insert("items", item("cluster", 0.9)).unwrap();
        assert_eq!(db.collection("items").unwrap().len(), 1);
        db.update("items", id, item("cluster", 0.1)).unwrap();
        let found = db.find("items", &Filter::eq("kind", "cluster")).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].1.get("score").unwrap().as_f64(), Some(0.1));
        db.delete("items", id).unwrap();
        assert!(db.collection("items").unwrap().is_empty());
    }

    #[test]
    fn unknown_collection_errors() {
        let mut db = Kdb::in_memory();
        assert!(matches!(
            db.insert("nope", Document::new()),
            Err(KdbError::UnknownCollection(_))
        ));
        assert!(db.find("nope", &Filter::True).is_err());
        db.create_collection("a").unwrap();
        assert_eq!(
            db.create_collection("a"),
            Err(KdbError::CollectionExists("a".into()))
        );
        db.ensure_collection("a").unwrap(); // idempotent
    }

    #[test]
    fn persistence_round_trip() {
        let path = temp_path("rt");
        std::fs::remove_file(&path).ok();
        let id;
        {
            let mut db = Kdb::open(&path).unwrap();
            db.create_collection("items").unwrap();
            db.create_index("items", "kind").unwrap();
            id = db.insert("items", item("cluster", 0.9)).unwrap();
            db.insert("items", item("pattern", 0.4)).unwrap();
            db.update("items", id, item("cluster", 0.95)).unwrap();
        }
        {
            let db = Kdb::open(&path).unwrap();
            let coll = db.collection("items").unwrap();
            assert_eq!(coll.len(), 2);
            assert!(coll.has_index("kind"));
            assert_eq!(
                coll.get(id).unwrap().get("score").unwrap().as_f64(),
                Some(0.95)
            );
            // New inserts continue the id sequence.
        }
        {
            let mut db = Kdb::open(&path).unwrap();
            let next = db.insert("items", item("x", 0.0)).unwrap();
            assert_eq!(next, 3);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crash_recovery_truncates_torn_tail() {
        let path = temp_path("crash");
        std::fs::remove_file(&path).ok();
        {
            let mut db = Kdb::open(&path).unwrap();
            db.create_collection("items").unwrap();
            db.insert("items", item("a", 1.0)).unwrap();
            db.insert("items", item("b", 2.0)).unwrap();
        }
        // Tear the final record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        {
            let mut db = Kdb::open(&path).unwrap();
            // Second insert was torn away; first survives.
            assert_eq!(db.collection("items").unwrap().len(), 1);
            // The store keeps working after recovery.
            db.insert("items", item("c", 3.0)).unwrap();
        }
        let db = Kdb::open(&path).unwrap();
        assert_eq!(db.collection("items").unwrap().len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_compacts_but_preserves_state() {
        let path = temp_path("snap");
        std::fs::remove_file(&path).ok();
        {
            let mut db = Kdb::open(&path).unwrap();
            db.create_collection("items").unwrap();
            db.create_index("items", "score").unwrap();
            let mut ids = Vec::new();
            for i in 0..20 {
                ids.push(db.insert("items", item("k", i as f64)).unwrap());
            }
            for &id in &ids[..10] {
                db.delete("items", id).unwrap();
            }
            let before = std::fs::metadata(&path).unwrap().len();
            db.snapshot().unwrap();
            let after = std::fs::metadata(&path).unwrap().len();
            assert!(after < before, "snapshot must shrink ({before} -> {after})");
        }
        let db = Kdb::open(&path).unwrap();
        let coll = db.collection("items").unwrap();
        assert_eq!(coll.len(), 10);
        assert!(coll.has_index("score"));
        let found = coll.find(&Filter::Gte("score".into(), Value::F64(15.0)));
        assert_eq!(found.len(), 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn writes_after_snapshot_replay_correctly() {
        let path = temp_path("postsnap");
        std::fs::remove_file(&path).ok();
        {
            let mut db = Kdb::open(&path).unwrap();
            db.create_collection("items").unwrap();
            db.insert("items", item("a", 1.0)).unwrap();
            db.snapshot().unwrap();
            db.insert("items", item("b", 2.0)).unwrap();
        }
        let db = Kdb::open(&path).unwrap();
        assert_eq!(db.collection("items").unwrap().len(), 2);
        std::fs::remove_file(&path).ok();
    }
}
