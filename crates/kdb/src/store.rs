//! The K-DB database object: named collections + optional journal.

use std::collections::BTreeMap;
use std::path::Path;

use crate::collection::{Collection, DocId};
use crate::document::Document;
use crate::error::KdbError;
use crate::journal::{replay, Journal, Op};
use crate::query::Filter;

/// A document database of named collections.
///
/// All mutations go through [`Kdb`] methods so they can be journaled;
/// reads can also borrow a [`Collection`] directly via
/// [`Kdb::collection`].
///
/// ```
/// use ada_kdb::{Document, Filter, Kdb};
///
/// let mut db = Kdb::in_memory();
/// db.create_collection("items").unwrap();
/// db.insert("items", Document::new().with("kind", "cluster").with("score", 0.9))
///     .unwrap();
/// let found = db.find("items", &Filter::eq("kind", "cluster")).unwrap();
/// assert_eq!(found.len(), 1);
/// ```
#[derive(Debug)]
pub struct Kdb {
    collections: BTreeMap<String, Collection>,
    journal: Option<Journal>,
}

impl Kdb {
    /// An in-memory store with no persistence.
    pub fn in_memory() -> Self {
        Self {
            collections: BTreeMap::new(),
            journal: None,
        }
    }

    /// Opens (creating if needed) a journaled store at `path`, replaying
    /// the existing journal and truncating any torn tail left by a
    /// crash.
    ///
    /// # Errors
    /// Returns [`KdbError::Io`] on filesystem failures or
    /// [`KdbError::Journal`] when a *replayed* operation is inconsistent
    /// (e.g. an insert into a collection that was never created).
    pub fn open(path: &Path) -> Result<Self, KdbError> {
        let mut store = Self::in_memory();
        let valid_len = if path.exists() {
            let replayed = replay(path)?;
            for (line, op) in replayed.ops.into_iter().enumerate() {
                store
                    .apply(&op)
                    .map_err(|e| KdbError::Journal(line + 1, e.to_string()))?;
            }
            Some(replayed.valid_len)
        } else {
            None
        };
        store.journal = Some(Journal::open(path, valid_len)?);
        Ok(store)
    }

    /// Applies an op to in-memory state (no journaling).
    fn apply(&mut self, op: &Op) -> Result<(), KdbError> {
        match op {
            Op::CreateCollection { name } => {
                if self.collections.contains_key(name) {
                    return Err(KdbError::CollectionExists(name.clone()));
                }
                self.collections
                    .insert(name.clone(), Collection::new(name.clone()));
                Ok(())
            }
            Op::CreateIndex { name, path } => self.coll_mut(name)?.create_index(path.clone()),
            Op::Insert { name, id, doc } => self.coll_mut(name)?.insert_with_id(*id, doc.clone()),
            Op::Update { name, id, doc } => self.coll_mut(name)?.update(*id, doc.clone()),
            Op::Delete { name, id } => self.coll_mut(name)?.delete(*id),
        }
    }

    fn log(&mut self, op: &Op) -> Result<(), KdbError> {
        if let Some(journal) = &mut self.journal {
            journal.append(op)?;
        }
        Ok(())
    }

    fn coll_mut(&mut self, name: &str) -> Result<&mut Collection, KdbError> {
        self.collections
            .get_mut(name)
            .ok_or_else(|| KdbError::UnknownCollection(name.to_owned()))
    }

    /// Creates a collection.
    ///
    /// # Errors
    /// Returns [`KdbError::CollectionExists`] for duplicates, or an I/O
    /// error from the journal.
    pub fn create_collection(&mut self, name: impl Into<String>) -> Result<(), KdbError> {
        let name = name.into();
        let op = Op::CreateCollection { name };
        self.apply(&op)?;
        self.log(&op)
    }

    /// Creates a collection if it does not already exist.
    ///
    /// # Errors
    /// Returns journal I/O errors.
    pub fn ensure_collection(&mut self, name: impl Into<String>) -> Result<(), KdbError> {
        let name = name.into();
        if !self.collections.contains_key(&name) {
            self.create_collection(name)?;
        }
        Ok(())
    }

    /// Creates a secondary index.
    ///
    /// # Errors
    /// Returns [`KdbError::UnknownCollection`], [`KdbError::IndexExists`]
    /// or a journal I/O error.
    pub fn create_index(
        &mut self,
        collection: &str,
        path: impl Into<String>,
    ) -> Result<(), KdbError> {
        let op = Op::CreateIndex {
            name: collection.to_owned(),
            path: path.into(),
        };
        self.apply(&op)?;
        self.log(&op)
    }

    /// Inserts a document, returning its id.
    ///
    /// # Errors
    /// Returns [`KdbError::UnknownCollection`] or a journal I/O error.
    pub fn insert(&mut self, collection: &str, doc: Document) -> Result<DocId, KdbError> {
        let id = self.coll_mut(collection)?.insert(doc);
        // Journal the document as stored (with _id materialized).
        let stored = self.collections[collection]
            .get(id)
            .expect("just inserted")
            .clone();
        self.log(&Op::Insert {
            name: collection.to_owned(),
            id,
            doc: stored,
        })?;
        Ok(id)
    }

    /// Replaces a document.
    ///
    /// # Errors
    /// Returns [`KdbError::UnknownCollection`],
    /// [`KdbError::UnknownDocument`] or a journal I/O error.
    pub fn update(&mut self, collection: &str, id: DocId, doc: Document) -> Result<(), KdbError> {
        let op = Op::Update {
            name: collection.to_owned(),
            id,
            doc,
        };
        self.apply(&op)?;
        self.log(&op)
    }

    /// Deletes a document.
    ///
    /// # Errors
    /// Returns [`KdbError::UnknownCollection`],
    /// [`KdbError::UnknownDocument`] or a journal I/O error.
    pub fn delete(&mut self, collection: &str, id: DocId) -> Result<(), KdbError> {
        let op = Op::Delete {
            name: collection.to_owned(),
            id,
        };
        self.apply(&op)?;
        self.log(&op)
    }

    /// Borrows a collection for reads.
    pub fn collection(&self, name: &str) -> Option<&Collection> {
        self.collections.get(name)
    }

    /// Collection names, sorted.
    pub fn collection_names(&self) -> Vec<&str> {
        self.collections.keys().map(String::as_str).collect()
    }

    /// Finds documents in a collection (cloned out for ownership
    /// simplicity at call sites that hold the store mutably elsewhere).
    ///
    /// # Errors
    /// Returns [`KdbError::UnknownCollection`].
    pub fn find(
        &self,
        collection: &str,
        filter: &Filter,
    ) -> Result<Vec<(DocId, Document)>, KdbError> {
        let coll = self
            .collections
            .get(collection)
            .ok_or_else(|| KdbError::UnknownCollection(collection.to_owned()))?;
        Ok(coll
            .find(filter)
            .into_iter()
            .map(|(id, d)| (id, d.clone()))
            .collect())
    }

    /// Compacts the journal to the minimal op sequence reconstructing
    /// the current state. No-op for in-memory stores.
    ///
    /// # Errors
    /// Returns journal I/O errors.
    pub fn snapshot(&mut self) -> Result<(), KdbError> {
        let Some(journal) = &mut self.journal else {
            return Ok(());
        };
        let mut ops = Vec::new();
        for (name, coll) in &self.collections {
            ops.push(Op::CreateCollection { name: name.clone() });
            for path in coll.index_paths() {
                ops.push(Op::CreateIndex {
                    name: name.clone(),
                    path: path.to_owned(),
                });
            }
            for (id, doc) in coll.iter() {
                ops.push(Op::Insert {
                    name: name.clone(),
                    id,
                    doc: doc.clone(),
                });
            }
        }
        journal.rewrite(&ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Value;

    fn item(kind: &str, score: f64) -> Document {
        Document::new().with("kind", kind).with("score", score)
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ada_kdb_store_{tag}_{}", std::process::id()))
    }

    #[test]
    fn in_memory_crud() {
        let mut db = Kdb::in_memory();
        db.create_collection("items").unwrap();
        let id = db.insert("items", item("cluster", 0.9)).unwrap();
        assert_eq!(db.collection("items").unwrap().len(), 1);
        db.update("items", id, item("cluster", 0.1)).unwrap();
        let found = db.find("items", &Filter::eq("kind", "cluster")).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].1.get("score").unwrap().as_f64(), Some(0.1));
        db.delete("items", id).unwrap();
        assert!(db.collection("items").unwrap().is_empty());
    }

    #[test]
    fn unknown_collection_errors() {
        let mut db = Kdb::in_memory();
        assert!(matches!(
            db.insert("nope", Document::new()),
            Err(KdbError::UnknownCollection(_))
        ));
        assert!(db.find("nope", &Filter::True).is_err());
        db.create_collection("a").unwrap();
        assert_eq!(
            db.create_collection("a"),
            Err(KdbError::CollectionExists("a".into()))
        );
        db.ensure_collection("a").unwrap(); // idempotent
    }

    #[test]
    fn persistence_round_trip() {
        let path = temp_path("rt");
        std::fs::remove_file(&path).ok();
        let id;
        {
            let mut db = Kdb::open(&path).unwrap();
            db.create_collection("items").unwrap();
            db.create_index("items", "kind").unwrap();
            id = db.insert("items", item("cluster", 0.9)).unwrap();
            db.insert("items", item("pattern", 0.4)).unwrap();
            db.update("items", id, item("cluster", 0.95)).unwrap();
        }
        {
            let db = Kdb::open(&path).unwrap();
            let coll = db.collection("items").unwrap();
            assert_eq!(coll.len(), 2);
            assert!(coll.has_index("kind"));
            assert_eq!(
                coll.get(id).unwrap().get("score").unwrap().as_f64(),
                Some(0.95)
            );
            // New inserts continue the id sequence.
        }
        {
            let mut db = Kdb::open(&path).unwrap();
            let next = db.insert("items", item("x", 0.0)).unwrap();
            assert_eq!(next, 3);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crash_recovery_truncates_torn_tail() {
        let path = temp_path("crash");
        std::fs::remove_file(&path).ok();
        {
            let mut db = Kdb::open(&path).unwrap();
            db.create_collection("items").unwrap();
            db.insert("items", item("a", 1.0)).unwrap();
            db.insert("items", item("b", 2.0)).unwrap();
        }
        // Tear the final record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        {
            let mut db = Kdb::open(&path).unwrap();
            // Second insert was torn away; first survives.
            assert_eq!(db.collection("items").unwrap().len(), 1);
            // The store keeps working after recovery.
            db.insert("items", item("c", 3.0)).unwrap();
        }
        let db = Kdb::open(&path).unwrap();
        assert_eq!(db.collection("items").unwrap().len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_compacts_but_preserves_state() {
        let path = temp_path("snap");
        std::fs::remove_file(&path).ok();
        {
            let mut db = Kdb::open(&path).unwrap();
            db.create_collection("items").unwrap();
            db.create_index("items", "score").unwrap();
            let mut ids = Vec::new();
            for i in 0..20 {
                ids.push(db.insert("items", item("k", i as f64)).unwrap());
            }
            for &id in &ids[..10] {
                db.delete("items", id).unwrap();
            }
            let before = std::fs::metadata(&path).unwrap().len();
            db.snapshot().unwrap();
            let after = std::fs::metadata(&path).unwrap().len();
            assert!(after < before, "snapshot must shrink ({before} -> {after})");
        }
        let db = Kdb::open(&path).unwrap();
        let coll = db.collection("items").unwrap();
        assert_eq!(coll.len(), 10);
        assert!(coll.has_index("score"));
        let found = coll.find(&Filter::Gte("score".into(), Value::F64(15.0)));
        assert_eq!(found.len(), 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn writes_after_snapshot_replay_correctly() {
        let path = temp_path("postsnap");
        std::fs::remove_file(&path).ok();
        {
            let mut db = Kdb::open(&path).unwrap();
            db.create_collection("items").unwrap();
            db.insert("items", item("a", 1.0)).unwrap();
            db.snapshot().unwrap();
            db.insert("items", item("b", 2.0)).unwrap();
        }
        let db = Kdb::open(&path).unwrap();
        assert_eq!(db.collection("items").unwrap().len(), 2);
        std::fs::remove_file(&path).ok();
    }
}
