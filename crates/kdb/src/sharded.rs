//! The sharded, concurrently-writable face of the K-DB.
//!
//! [`SharedKdb`] replaces the old `Arc<RwLock<Kdb>>` sharing model with
//! per-collection shards so sessions touching different collections
//! commit in parallel:
//!
//! * **Per-collection shards.** Every collection lives behind its own
//!   `RwLock`; a writer locks exactly one shard (the shard *registry*
//!   is only write-locked to create a collection). Writers on distinct
//!   collections never contend.
//! * **Group-commit journaling.** All shards append to one journal
//!   (append order = the global op order) under a short mutex that
//!   covers only the buffered write — never the fsync. Durability is a
//!   separate rendezvous: under [`DurabilityPolicy::Always`] the first
//!   waiter becomes the *leader*, issues one fsync covering every op
//!   appended before it, and hands the result to all covered waiters
//!   (the commit-waiter protocol). N writers therefore share ~1 fsync
//!   per round instead of paying one each.
//! * **Epoch/COW snapshot reads.** [`SharedKdb::read`] returns a
//!   [`KdbSnapshot`] of `Arc`-shared collection images validated by a
//!   per-shard epoch counter: an unchanged shard re-serves its cached
//!   `Arc` without touching the shard lock, and a changed one is cloned
//!   under a read lock writers only hold for in-memory work (µs — the
//!   fsync happens outside every lock). Queries never block behind a
//!   committing writer.
//!
//! Lock order (deadlock freedom): shard registry → shard(s, in name
//! order when several) → journal mutex → commit state. The commit
//! leader drops the commit lock *before* taking the journal mutex, so
//! the journal → commit edge is the only one that exists while both are
//! held.
//!
//! Consistency: a shard write lock spans apply + append, so the journal
//! order of any single collection equals its apply order, and any
//! journal prefix replays to a per-collection prefix of acknowledged
//! ops — the invariant the multi-producer torture harness checks.
//! Cross-collection snapshot reads are *per-collection* consistent (the
//! shards are sampled without a global barrier).

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use crate::collection::{Collection, DocId};
use crate::document::Document;
use crate::error::KdbError;
use crate::journal::{CorruptionReport, DurabilityPolicy, Journal, JournalTap, Op};
use crate::query::Filter;
use crate::store::{fingerprint_ops, Kdb, StoreOptions};

// ---------------------------------------------------------------------
// Read / write access traits.
// ---------------------------------------------------------------------

/// Write access to a K-DB: implemented by the plain [`Kdb`] (exclusive
/// `&mut` access) and by [`KdbWriter`] (the sharded facade's per-op
/// locking). Schema helpers and persistence sinks are generic over this
/// trait so one code path serves both sharing models.
pub trait KdbWrite {
    /// Creates a collection.
    ///
    /// # Errors
    /// Returns [`KdbError::CollectionExists`] or a journal I/O error.
    fn create_collection(&mut self, name: &str) -> Result<(), KdbError>;

    /// Creates a collection if it does not already exist (race-safe on
    /// the sharded facade: a concurrent creator winning is success).
    ///
    /// # Errors
    /// Returns journal I/O errors.
    fn ensure_collection(&mut self, name: &str) -> Result<(), KdbError>;

    /// Creates a secondary index.
    ///
    /// # Errors
    /// Returns [`KdbError::UnknownCollection`], [`KdbError::IndexExists`]
    /// or a journal I/O error.
    fn create_index(&mut self, collection: &str, path: &str) -> Result<(), KdbError>;

    /// Creates a secondary index if the path is not already indexed.
    ///
    /// # Errors
    /// Returns [`KdbError::UnknownCollection`] or a journal I/O error.
    fn ensure_index(&mut self, collection: &str, path: &str) -> Result<(), KdbError>;

    /// Inserts a document, returning its id.
    ///
    /// # Errors
    /// Returns [`KdbError::UnknownCollection`] or a journal I/O error.
    fn insert(&mut self, collection: &str, doc: Document) -> Result<DocId, KdbError>;

    /// Replaces a document.
    ///
    /// # Errors
    /// Returns [`KdbError::UnknownCollection`],
    /// [`KdbError::UnknownDocument`] or a journal I/O error.
    fn update(&mut self, collection: &str, id: DocId, doc: Document) -> Result<(), KdbError>;

    /// Deletes a document.
    ///
    /// # Errors
    /// Returns [`KdbError::UnknownCollection`],
    /// [`KdbError::UnknownDocument`] or a journal I/O error.
    fn delete(&mut self, collection: &str, id: DocId) -> Result<(), KdbError>;
}

impl KdbWrite for Kdb {
    fn create_collection(&mut self, name: &str) -> Result<(), KdbError> {
        Kdb::create_collection(self, name)
    }

    fn ensure_collection(&mut self, name: &str) -> Result<(), KdbError> {
        Kdb::ensure_collection(self, name)
    }

    fn create_index(&mut self, collection: &str, path: &str) -> Result<(), KdbError> {
        Kdb::create_index(self, collection, path)
    }

    fn ensure_index(&mut self, collection: &str, path: &str) -> Result<(), KdbError> {
        Kdb::ensure_index(self, collection, path)
    }

    fn insert(&mut self, collection: &str, doc: Document) -> Result<DocId, KdbError> {
        Kdb::insert(self, collection, doc)
    }

    fn update(&mut self, collection: &str, id: DocId, doc: Document) -> Result<(), KdbError> {
        Kdb::update(self, collection, id, doc)
    }

    fn delete(&mut self, collection: &str, id: DocId) -> Result<(), KdbError> {
        Kdb::delete(self, collection, id)
    }
}

/// Read access to a K-DB state image: implemented by the plain [`Kdb`]
/// and by [`KdbSnapshot`]. Query helpers are generic over this trait.
pub trait KdbRead {
    /// Borrows a collection for reads.
    fn collection(&self, name: &str) -> Option<&Collection>;

    /// Collection names, sorted.
    fn collection_names(&self) -> Vec<&str>;

    /// Finds documents in a collection (cloned out).
    ///
    /// # Errors
    /// Returns [`KdbError::UnknownCollection`].
    fn find(&self, collection: &str, filter: &Filter) -> Result<Vec<(DocId, Document)>, KdbError> {
        let coll = self
            .collection(collection)
            .ok_or_else(|| KdbError::UnknownCollection(collection.to_owned()))?;
        Ok(coll
            .find(filter)
            .into_iter()
            .map(|(id, d)| (id, d.clone()))
            .collect())
    }

    /// The minimal op sequence reconstructing the current state, in
    /// deterministic (collection name, doc id) order.
    fn state_ops(&self) -> Vec<Op> {
        let mut ops = Vec::new();
        for name in self.collection_names() {
            let coll = self.collection(name).expect("listed collection");
            collection_state_ops(name, coll, &mut ops);
        }
        ops
    }

    /// FNV-1a digest of the canonical state encoding (see
    /// [`Kdb::fingerprint`]).
    fn fingerprint(&self) -> u64 {
        fingerprint_ops(&self.state_ops())
    }
}

impl KdbRead for Kdb {
    fn collection(&self, name: &str) -> Option<&Collection> {
        Kdb::collection(self, name)
    }

    fn collection_names(&self) -> Vec<&str> {
        Kdb::collection_names(self)
    }
}

/// Appends the canonical state ops of one collection to `ops`.
fn collection_state_ops(name: &str, coll: &Collection, ops: &mut Vec<Op>) {
    ops.push(Op::CreateCollection {
        name: name.to_owned(),
    });
    for path in coll.index_paths() {
        ops.push(Op::CreateIndex {
            name: name.to_owned(),
            path: path.to_owned(),
        });
    }
    for (id, doc) in coll.iter() {
        ops.push(Op::Insert {
            name: name.to_owned(),
            id,
            doc: doc.clone(),
        });
    }
}

// ---------------------------------------------------------------------
// Group-commit instrumentation.
// ---------------------------------------------------------------------

/// Buckets of the group-commit batch-size histogram (log2: bucket `i`
/// counts batches of `2^i ..= 2^(i+1)-1` ops).
pub const BATCH_BUCKETS: usize = 16;
/// Buckets of the flush-latency histogram (log2 nanoseconds).
pub const FLUSH_BUCKETS: usize = 40;

/// Lock-free counters of the group committer (owned by the facade —
/// the service exports them as the pinned `ada_kdb_*` Prometheus
/// families).
#[derive(Debug)]
struct GroupCommitStats {
    /// Completed fsync rounds (successful or failed).
    commits: AtomicU64,
    /// Rounds whose fsync failed (every covered op acked non-durable).
    failures: AtomicU64,
    /// Ops covered by completed rounds (sum of batch sizes).
    ops: AtomicU64,
    /// Log2 batch-size histogram.
    batch_hist: [AtomicU64; BATCH_BUCKETS],
    /// Log2 flush-latency histogram (ns).
    flush_hist: [AtomicU64; FLUSH_BUCKETS],
    /// Total flush nanoseconds across rounds.
    flush_ns: AtomicU64,
}

impl Default for GroupCommitStats {
    fn default() -> Self {
        Self {
            commits: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            ops: AtomicU64::new(0),
            batch_hist: std::array::from_fn(|_| AtomicU64::new(0)),
            flush_hist: std::array::from_fn(|_| AtomicU64::new(0)),
            flush_ns: AtomicU64::new(0),
        }
    }
}

fn log2_bucket(value: u64, buckets: usize) -> usize {
    (63 - value.max(1).leading_zeros() as usize).min(buckets - 1)
}

impl GroupCommitStats {
    fn record(&self, batch: u64, flush: Duration, ok: bool) {
        self.commits.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.failures.fetch_add(1, Ordering::Relaxed);
        }
        self.ops.fetch_add(batch, Ordering::Relaxed);
        self.batch_hist[log2_bucket(batch, BATCH_BUCKETS)].fetch_add(1, Ordering::Relaxed);
        let ns = u64::try_from(flush.as_nanos()).unwrap_or(u64::MAX);
        self.flush_hist[log2_bucket(ns, FLUSH_BUCKETS)].fetch_add(1, Ordering::Relaxed);
        self.flush_ns.fetch_add(ns, Ordering::Relaxed);
    }

    fn snapshot(&self) -> GroupCommitSnapshot {
        GroupCommitSnapshot {
            commits: self.commits.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            ops: self.ops.load(Ordering::Relaxed),
            batch_hist: std::array::from_fn(|i| self.batch_hist[i].load(Ordering::Relaxed)),
            flush_hist: std::array::from_fn(|i| self.flush_hist[i].load(Ordering::Relaxed)),
            flush_ns: self.flush_ns.load(Ordering::Relaxed),
            acked_ops: 0,
            durable_ops: 0,
        }
    }
}

/// A point-in-time view of the group committer's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitSnapshot {
    /// Completed fsync rounds.
    pub commits: u64,
    /// Rounds whose fsync failed.
    pub failures: u64,
    /// Ops covered by completed rounds.
    pub ops: u64,
    /// Log2 batch-size histogram (bucket `i` = batches of `2^i..2^(i+1)`
    /// ops).
    pub batch_hist: [u64; BATCH_BUCKETS],
    /// Log2 flush-latency histogram in nanoseconds.
    pub flush_hist: [u64; FLUSH_BUCKETS],
    /// Total flush nanoseconds.
    pub flush_ns: u64,
    /// Journal ops acknowledged since open.
    pub acked_ops: u64,
    /// Journal ops known fsync-durable since open.
    pub durable_ops: u64,
}

impl Default for GroupCommitSnapshot {
    fn default() -> Self {
        Self {
            commits: 0,
            failures: 0,
            ops: 0,
            batch_hist: [0; BATCH_BUCKETS],
            flush_hist: [0; FLUSH_BUCKETS],
            flush_ns: 0,
            acked_ops: 0,
            durable_ops: 0,
        }
    }
}

/// The part a committing thread played in one group-commit fsync round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitRole {
    /// This thread held the fsync baton: it waited the accumulation
    /// window, took the journal mutex, and issued the round's fsync.
    Leader,
    /// This thread parked on the commit condvar and was covered by a
    /// leader's round.
    Follower,
}

impl CommitRole {
    /// Canonical lowercase label (`"leader"` / `"follower"`).
    pub fn name(self) -> &'static str {
        match self {
            CommitRole::Leader => "leader",
            CommitRole::Follower => "follower",
        }
    }
}

/// Observer of group-commit fsync rounds, registered on a [`SharedKdb`]
/// by the layer that owns request attribution (the analysis service
/// wires it to the flight recorder, keyed by the worker thread's
/// current trace context).
///
/// Called once per *waiting thread* per round it took part in, after
/// every K-DB lock the round held has been released — implementations
/// may take their own locks but must never call back into the store.
/// `wait` is the time this thread spent blocked on the round
/// (accumulation window + journal mutex for the leader, condvar parking
/// for a follower) excluding the fsync itself; `fsync` is the round's
/// fsync duration (zero for followers — they never touched the device).
pub trait CommitObserver: Send + Sync + std::fmt::Debug {
    /// One thread's view of one finished commit round.
    fn on_commit_round(
        &self,
        role: CommitRole,
        batch: u64,
        wait: Duration,
        fsync: Duration,
        durable: bool,
    );
}

/// What one fsync round did: ops covered, fsync duration, and the I/O
/// outcome (stats and watermarks are already published either way).
struct RoundOutcome {
    batch: u64,
    flush: Duration,
    result: Result<(), KdbError>,
}

impl GroupCommitSnapshot {
    /// Mean ops per completed fsync round (1.0 when no round ran).
    pub fn mean_batch(&self) -> f64 {
        if self.commits == 0 {
            1.0
        } else {
            self.ops as f64 / self.commits as f64
        }
    }

    /// Approximate quantile of a log2 histogram: the representative
    /// value (geometric bucket midpoint) of the bucket holding quantile
    /// `q` of the observations.
    pub fn quantile(hist: &[u64], q: f64) -> f64 {
        let total: u64 = hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &count) in hist.iter().enumerate() {
            seen += count;
            if seen >= target {
                // Geometric midpoint of [2^i, 2^(i+1)).
                return (1u64 << i) as f64 * std::f64::consts::SQRT_2;
            }
        }
        (1u64 << (hist.len() - 1)) as f64
    }
}

// ---------------------------------------------------------------------
// Shards.
// ---------------------------------------------------------------------

/// One collection shard: the live collection, its write epoch, and the
/// cached copy-on-write snapshot image.
#[derive(Debug)]
struct Shard {
    coll: RwLock<Collection>,
    /// Bumped under the shard write lock after every applied mutation;
    /// snapshot reads use it to validate the cached image.
    epoch: AtomicU64,
    /// `(epoch, image)` of the last snapshot clone; re-served without
    /// touching `coll` while the epoch still matches.
    cache: parking_lot::Mutex<Option<(u64, Arc<Collection>)>>,
}

impl Shard {
    fn new(coll: Collection) -> Self {
        Self {
            coll: RwLock::new(coll),
            epoch: AtomicU64::new(0),
            cache: parking_lot::Mutex::new(None),
        }
    }

    /// The shard's current image, served from the epoch-validated cache
    /// when possible (no shard lock), cloned under a read lock when the
    /// shard changed since the last snapshot.
    fn image(&self) -> Arc<Collection> {
        let epoch = self.epoch.load(Ordering::Acquire);
        if let Some((cached_epoch, image)) = self.cache.lock().as_ref() {
            if *cached_epoch == epoch {
                return Arc::clone(image);
            }
        }
        let guard = self.coll.read();
        // The epoch is stable while the read lock is held (writers bump
        // it under the write lock), so image and epoch pair correctly.
        let epoch = self.epoch.load(Ordering::Acquire);
        let image = Arc::new(guard.clone());
        drop(guard);
        *self.cache.lock() = Some((epoch, Arc::clone(&image)));
        image
    }
}

// ---------------------------------------------------------------------
// The facade.
// ---------------------------------------------------------------------

/// Commit-waiter rendezvous of the group committer.
#[derive(Debug)]
struct CommitState {
    /// Highest acked-op count covered by a *finished* fsync round
    /// (successful or not).
    attempted: u64,
    /// Highest acked-op count covered by a successful fsync.
    durable: u64,
    /// A leader currently holds the fsync baton.
    syncing: bool,
    /// When the last fsync round finished (Batch `max_delay` clock).
    last_sync: Instant,
    /// Ops covered by the previous round — evidence of concurrent
    /// appenders, used to size the leader's accumulation window.
    last_batch: u64,
}

/// Outcome of journaling one op, settled after the shard lock drops.
enum Ticket {
    /// In-memory store: nothing to wait for.
    None,
    /// Durability already decided (Batch / SnapshotOnly policies).
    Done(bool),
    /// Wait for a group-commit round covering this acked-op count.
    Wait(u64),
}

#[derive(Debug)]
struct SharedInner {
    /// Shard registry: write-locked only to create a collection.
    shards: RwLock<BTreeMap<String, Arc<Shard>>>,
    /// The single journal appender. Its own policy is pinned to
    /// `SnapshotOnly` so `append` never fsyncs inline — the facade's
    /// `policy` decides durability via the group committer.
    journal: Option<parking_lot::Mutex<Journal>>,
    /// Facade-level durability policy.
    policy: parking_lot::Mutex<DurabilityPolicy>,
    commit: Mutex<CommitState>,
    commit_cv: Condvar,
    /// Append failures rolled back by the mutators (seeded with any
    /// carried over from the decomposed [`Kdb`]).
    log_failures: AtomicU64,
    /// Fsync failures observed by the group committer.
    sync_failures: AtomicU64,
    stats: GroupCommitStats,
    salvaged: Option<CorruptionReport>,
    /// Per-round observer hook (trace attribution). `None` — the
    /// default — keeps the commit path exactly as it was.
    commit_observer: RwLock<Option<Arc<dyn CommitObserver>>>,
}

/// A concurrently shareable K-DB: per-collection shard locks, one
/// group-committed journal, and epoch-cached snapshot reads. Cloning is
/// cheap (an `Arc` bump) and every clone addresses the same store.
///
/// ```
/// use ada_kdb::{Document, Filter, Kdb, SharedKdb};
///
/// let db = SharedKdb::new(Kdb::in_memory());
/// db.create_collection("items").unwrap();
/// db.insert("items", Document::new().with("kind", "cluster")).unwrap();
/// let snap = db.read();
/// assert_eq!(snap.find("items", &Filter::True).unwrap().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SharedKdb {
    inner: Arc<SharedInner>,
}

impl SharedKdb {
    /// Wraps a [`Kdb`] (journaled or in-memory), decomposing it into
    /// per-collection shards. The store's durability policy becomes the
    /// facade's group-commit policy.
    pub fn new(kdb: Kdb) -> Self {
        let (collections, mut journal, log_failures, salvaged) = kdb.into_parts();
        let policy = journal
            .as_ref()
            .map(Journal::durability)
            .unwrap_or_default();
        if let Some(j) = &mut journal {
            // The facade owns durability; inline fsyncs would serialize
            // every appender behind the journal mutex.
            j.set_durability(DurabilityPolicy::SnapshotOnly);
        }
        let shards = collections
            .into_iter()
            .map(|(name, coll)| (name, Arc::new(Shard::new(coll))))
            .collect();
        Self {
            inner: Arc::new(SharedInner {
                shards: RwLock::new(shards),
                journal: journal.map(parking_lot::Mutex::new),
                policy: parking_lot::Mutex::new(policy),
                commit: Mutex::new(CommitState {
                    attempted: 0,
                    durable: 0,
                    syncing: false,
                    last_sync: Instant::now(),
                    last_batch: 1,
                }),
                commit_cv: Condvar::new(),
                log_failures: AtomicU64::new(log_failures),
                sync_failures: AtomicU64::new(0),
                stats: GroupCommitStats::default(),
                salvaged,
                commit_observer: RwLock::new(None),
            }),
        }
    }

    /// A sharded in-memory store.
    pub fn in_memory() -> Self {
        Self::new(Kdb::in_memory())
    }

    /// Opens (creating if needed) a journaled store, replaying the
    /// journal, and wraps it in the sharded facade.
    ///
    /// # Errors
    /// As [`Kdb::open_with`].
    pub fn open_with(path: &Path, options: StoreOptions) -> Result<Self, KdbError> {
        Ok(Self::new(Kdb::open_with(path, options)?))
    }

    // -- write path ----------------------------------------------------

    fn shard(&self, name: &str) -> Result<Arc<Shard>, KdbError> {
        self.inner
            .shards
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| KdbError::UnknownCollection(name.to_owned()))
    }

    /// Appends one op under the journal mutex (buffered write + flush
    /// only — no fsync) and decides how durability will be settled.
    /// Called with the target shard write-locked, so per-collection
    /// journal order equals apply order. A failure means the op is not
    /// persisted: the caller must roll back its in-memory effect.
    fn log(&self, op: &Op) -> Result<Ticket, KdbError> {
        let Some(journal_mx) = &self.inner.journal else {
            return Ok(Ticket::None);
        };
        let mut journal = journal_mx.lock();
        if let Err(e) = journal.append(op) {
            self.inner.log_failures.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        let seq = journal.acked_ops();
        let policy = *self.inner.policy.lock();
        match policy {
            DurabilityPolicy::SnapshotOnly => Ok(Ticket::Done(false)),
            DurabilityPolicy::Always => Ok(Ticket::Wait(seq)),
            DurabilityPolicy::Batch { max_ops, max_delay } => {
                let pending = seq.saturating_sub(journal.durable_ops());
                let overdue = {
                    let state = lock(&self.inner.commit);
                    state.last_sync.elapsed() >= max_delay
                };
                if pending >= max_ops.max(1) as u64 || overdue {
                    // The appender that fills the batch performs the
                    // sync inline (same ack shape as `Journal::append`
                    // under `Batch`: the triggering op reports durable).
                    Ok(Ticket::Done(self.sync_round(&mut journal).result.is_ok()))
                } else {
                    Ok(Ticket::Done(false))
                }
            }
        }
    }

    /// One fsync round over the locked journal: syncs, records stats,
    /// publishes the new attempted/durable watermarks and wakes every
    /// covered commit waiter. Returns the round's batch size, fsync
    /// duration, and I/O outcome so callers (the commit-waiter leader
    /// path) can report it to the [`CommitObserver`] hook.
    fn sync_round(&self, journal: &mut Journal) -> RoundOutcome {
        let end = journal.acked_ops();
        let started = Instant::now();
        let result = journal.sync();
        let elapsed = started.elapsed();
        if result.is_err() {
            self.inner.sync_failures.fetch_add(1, Ordering::Relaxed);
        }
        let durable_now = journal.durable_ops();
        let mut state = lock(&self.inner.commit);
        let batch = end.saturating_sub(state.attempted);
        self.inner.stats.record(batch, elapsed, result.is_ok());
        state.attempted = state.attempted.max(end);
        state.durable = state.durable.max(durable_now);
        state.last_sync = Instant::now();
        state.last_batch = batch;
        drop(state);
        self.inner.commit_cv.notify_all();
        RoundOutcome {
            batch,
            flush: elapsed,
            result,
        }
    }

    /// How long an elected leader waits for concurrent appenders before
    /// fsyncing: a quarter of the mean observed flush cost, capped at
    /// 500µs, and zero until concurrency shows up (`last_batch <= 1`)
    /// or a flush has been measured.
    fn accumulation_window(&self, last_batch: u64) -> Duration {
        if last_batch <= 1 {
            return Duration::ZERO;
        }
        let commits = self.inner.stats.commits.load(Ordering::Relaxed);
        if commits == 0 {
            return Duration::ZERO;
        }
        let mean_flush_ns = self.inner.stats.flush_ns.load(Ordering::Relaxed) / commits;
        Duration::from_nanos((mean_flush_ns / 4).min(500_000))
    }

    /// The registered commit observer, if any (one `RwLock` read —
    /// nanoseconds against the round's fsync).
    fn commit_observer(&self) -> Option<Arc<dyn CommitObserver>> {
        self.inner.commit_observer.read().clone()
    }

    /// The commit-waiter protocol: blocks until an fsync round covering
    /// `seq` has finished, electing this thread leader when no round is
    /// in flight. Returns whether `seq` is known durable.
    ///
    /// When a [`CommitObserver`] is registered, each exit path reports
    /// this thread's view of the round it took part in — role, batch
    /// size, time spent waiting vs. fsyncing — strictly after every
    /// store lock has been released.
    fn wait_durable(&self, seq: u64) -> bool {
        let Some(journal_mx) = &self.inner.journal else {
            return false;
        };
        let observer = self.commit_observer();
        let entered = observer.as_ref().map(|_| Instant::now());
        let mut parked = false;
        let mut state = lock(&self.inner.commit);
        loop {
            if state.attempted >= seq {
                let durable = state.durable >= seq;
                let batch = state.last_batch;
                drop(state);
                if parked {
                    if let (Some(obs), Some(t0)) = (&observer, entered) {
                        obs.on_commit_round(
                            CommitRole::Follower,
                            batch,
                            t0.elapsed(),
                            Duration::ZERO,
                            durable,
                        );
                    }
                }
                return durable;
            }
            if state.syncing {
                parked = true;
                state = self
                    .inner
                    .commit_cv
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            state.syncing = true;
            let last_batch = state.last_batch;
            drop(state);
            // Accumulation: when the previous round actually batched,
            // concurrent appenders are in flight — give them a brief
            // window to land their frames before taking the journal
            // mutex (which appends block on for the fsync's duration),
            // so this round's fsync covers them all. The window is a
            // fraction of the observed flush cost, so it never
            // dominates commit latency, and a lone writer skips it.
            let window = self.accumulation_window(last_batch);
            if !window.is_zero() {
                std::thread::sleep(window);
            }
            let round = {
                let mut journal = journal_mx.lock();
                self.sync_round(&mut journal)
            };
            if let (Some(obs), Some(t0)) = (&observer, entered) {
                obs.on_commit_round(
                    CommitRole::Leader,
                    round.batch,
                    t0.elapsed().saturating_sub(round.flush),
                    round.flush,
                    round.result.is_ok(),
                );
                // The leader's own round is the one it reports; a prior
                // condvar park (for an earlier, non-covering round) must
                // not fire a second, follower-shaped report at return.
                parked = false;
            }
            state = lock(&self.inner.commit);
            state.syncing = false;
            // Wake waiters parked on the baton; the loop re-checks the
            // watermarks (our own append is covered by our round).
            drop(state);
            self.inner.commit_cv.notify_all();
            state = lock(&self.inner.commit);
        }
    }

    fn settle(&self, ticket: Ticket) -> bool {
        match ticket {
            Ticket::None => false,
            Ticket::Done(durable) => durable,
            Ticket::Wait(seq) => self.wait_durable(seq),
        }
    }

    /// Creates a collection. The registry write lock spans apply +
    /// append so the `CreateCollection` frame precedes every op on the
    /// new collection in the journal.
    ///
    /// # Errors
    /// Returns [`KdbError::CollectionExists`] or a journal I/O error.
    pub fn create_collection(&self, name: &str) -> Result<(), KdbError> {
        let ticket;
        {
            let mut shards = self.inner.shards.write();
            if shards.contains_key(name) {
                return Err(KdbError::CollectionExists(name.to_owned()));
            }
            let op = Op::CreateCollection {
                name: name.to_owned(),
            };
            ticket = self.log(&op)?;
            shards.insert(name.to_owned(), Arc::new(Shard::new(Collection::new(name))));
        }
        self.settle(ticket);
        Ok(())
    }

    /// Creates a collection if it does not already exist. Race-safe: a
    /// concurrent creator winning counts as success.
    ///
    /// # Errors
    /// Returns journal I/O errors.
    pub fn ensure_collection(&self, name: &str) -> Result<(), KdbError> {
        if self.inner.shards.read().contains_key(name) {
            return Ok(());
        }
        match self.create_collection(name) {
            Err(KdbError::CollectionExists(_)) => Ok(()),
            other => other,
        }
    }

    /// Creates a secondary index.
    ///
    /// # Errors
    /// Returns [`KdbError::UnknownCollection`], [`KdbError::IndexExists`]
    /// or a journal I/O error.
    pub fn create_index(&self, collection: &str, path: &str) -> Result<(), KdbError> {
        let shard = self.shard(collection)?;
        let ticket;
        {
            let mut coll = shard.coll.write();
            coll.create_index(path.to_owned())?;
            let op = Op::CreateIndex {
                name: collection.to_owned(),
                path: path.to_owned(),
            };
            match self.log(&op) {
                Ok(t) => ticket = t,
                Err(e) => {
                    coll.drop_index(path);
                    return Err(e);
                }
            }
            shard.epoch.fetch_add(1, Ordering::Release);
        }
        self.settle(ticket);
        Ok(())
    }

    /// Creates a secondary index if the path is not already indexed.
    ///
    /// # Errors
    /// Returns [`KdbError::UnknownCollection`] or a journal I/O error.
    pub fn ensure_index(&self, collection: &str, path: &str) -> Result<(), KdbError> {
        match self.create_index(collection, path) {
            Err(KdbError::IndexExists(_)) => Ok(()),
            other => other,
        }
    }

    /// Inserts a document, returning its id.
    ///
    /// # Errors
    /// Returns [`KdbError::UnknownCollection`] or a journal I/O error.
    pub fn insert(&self, collection: &str, doc: Document) -> Result<DocId, KdbError> {
        self.insert_committed(collection, doc).map(|(id, _)| id)
    }

    /// [`SharedKdb::insert`] with a commit receipt: the second element
    /// reports whether the op is already covered by a successful fsync
    /// (`false` under `Batch`/`SnapshotOnly` acked-non-durable acks or
    /// after a failed group fsync).
    ///
    /// # Errors
    /// Returns [`KdbError::UnknownCollection`] or a journal I/O error.
    pub fn insert_committed(
        &self,
        collection: &str,
        doc: Document,
    ) -> Result<(DocId, bool), KdbError> {
        let shard = self.shard(collection)?;
        let (id, ticket) = {
            let mut coll = shard.coll.write();
            let id = coll.insert(doc);
            let stored = coll.get(id).expect("just inserted").clone();
            let op = Op::Insert {
                name: collection.to_owned(),
                id,
                doc: stored,
            };
            match self.log(&op) {
                Ok(ticket) => {
                    shard.epoch.fetch_add(1, Ordering::Release);
                    (id, ticket)
                }
                Err(e) => {
                    coll.uninsert(id);
                    return Err(e);
                }
            }
        };
        let durable = self.settle(ticket);
        Ok((id, durable))
    }

    /// Replaces a document.
    ///
    /// # Errors
    /// Returns [`KdbError::UnknownCollection`],
    /// [`KdbError::UnknownDocument`] or a journal I/O error.
    pub fn update(&self, collection: &str, id: DocId, doc: Document) -> Result<(), KdbError> {
        self.update_committed(collection, id, doc).map(|_| ())
    }

    /// [`SharedKdb::update`] with a commit receipt (see
    /// [`SharedKdb::insert_committed`]).
    ///
    /// # Errors
    /// As [`SharedKdb::update`].
    pub fn update_committed(
        &self,
        collection: &str,
        id: DocId,
        doc: Document,
    ) -> Result<bool, KdbError> {
        self.mutate_doc(collection, id, move |_| doc)
    }

    /// Atomic read-modify-write: applies `f` to the current document
    /// under the shard write lock, so no concurrent writer can slip
    /// between the read and the update. Returns the commit receipt.
    ///
    /// # Errors
    /// Returns [`KdbError::UnknownCollection`],
    /// [`KdbError::UnknownDocument`] or a journal I/O error.
    pub fn update_with<F>(&self, collection: &str, id: DocId, f: F) -> Result<bool, KdbError>
    where
        F: FnOnce(&Document) -> Document,
    {
        self.mutate_doc(collection, id, f)
    }

    fn mutate_doc<F>(&self, collection: &str, id: DocId, f: F) -> Result<bool, KdbError>
    where
        F: FnOnce(&Document) -> Document,
    {
        let shard = self.shard(collection)?;
        let ticket = {
            let mut coll = shard.coll.write();
            let prior = coll.get(id).cloned().ok_or(KdbError::UnknownDocument(id))?;
            let doc = f(&prior);
            coll.update(id, doc.clone())?;
            let op = Op::Update {
                name: collection.to_owned(),
                id,
                doc,
            };
            match self.log(&op) {
                Ok(ticket) => {
                    shard.epoch.fetch_add(1, Ordering::Release);
                    ticket
                }
                Err(e) => {
                    coll.update(id, prior).expect("rollback of applied update");
                    return Err(e);
                }
            }
        };
        Ok(self.settle(ticket))
    }

    /// Deletes a document.
    ///
    /// # Errors
    /// Returns [`KdbError::UnknownCollection`],
    /// [`KdbError::UnknownDocument`] or a journal I/O error.
    pub fn delete(&self, collection: &str, id: DocId) -> Result<(), KdbError> {
        self.delete_committed(collection, id).map(|_| ())
    }

    /// [`SharedKdb::delete`] with a commit receipt (see
    /// [`SharedKdb::insert_committed`]).
    ///
    /// # Errors
    /// As [`SharedKdb::delete`].
    pub fn delete_committed(&self, collection: &str, id: DocId) -> Result<bool, KdbError> {
        let shard = self.shard(collection)?;
        let ticket = {
            let mut coll = shard.coll.write();
            let prior = coll.get(id).cloned().ok_or(KdbError::UnknownDocument(id))?;
            coll.delete(id)?;
            let op = Op::Delete {
                name: collection.to_owned(),
                id,
            };
            match self.log(&op) {
                Ok(ticket) => {
                    shard.epoch.fetch_add(1, Ordering::Release);
                    ticket
                }
                Err(e) => {
                    coll.insert_with_id(id, prior)
                        .expect("rollback of applied delete");
                    return Err(e);
                }
            }
        };
        Ok(self.settle(ticket))
    }

    /// A write handle implementing [`KdbWrite`] for `&mut`-shaped call
    /// sites (schema helpers, persistence sinks). Holds no lock — every
    /// method locks per op.
    pub fn write(&self) -> KdbWriter<'_> {
        KdbWriter { db: self }
    }

    // -- replication ---------------------------------------------------

    /// Applies one replicated op — exactly as decoded from a primary's
    /// journal frame, preserving assigned document ids — through the
    /// shard and group-commit machinery, so the op is journaled locally
    /// with the same rollback discipline as a native write. Returns the
    /// commit receipt (whether the op is already fsync-covered; schema
    /// ops report `false`, the conservative floor, like
    /// [`SharedKdb::insert_committed`]'s receipt convention).
    ///
    /// A clean replicated stream applied here produces a local journal
    /// byte-identical to the primary's (frame encoding is deterministic
    /// and sequence numbers restart from the same base).
    ///
    /// # Errors
    /// Any native-write error: an op that does not apply (unknown
    /// collection/document, duplicate id) means the stream diverged
    /// from this replica's state and must not be papered over.
    pub fn apply_replicated(&self, op: &Op) -> Result<bool, KdbError> {
        match op {
            Op::CreateCollection { name } => self.create_collection(name).map(|()| false),
            Op::CreateIndex { name, path } => self.create_index(name, path).map(|()| false),
            Op::Insert { name, id, doc } => self.insert_replicated(name, *id, doc.clone()),
            Op::Update { name, id, doc } => self.update_committed(name, *id, doc.clone()),
            Op::Delete { name, id } => self.delete_committed(name, *id),
        }
    }

    /// Insert under a primary-assigned id (the replicated counterpart
    /// of [`SharedKdb::insert_committed`]).
    fn insert_replicated(
        &self,
        collection: &str,
        id: DocId,
        doc: Document,
    ) -> Result<bool, KdbError> {
        let shard = self.shard(collection)?;
        let ticket = {
            let mut coll = shard.coll.write();
            coll.insert_with_id(id, doc.clone())?;
            let op = Op::Insert {
                name: collection.to_owned(),
                id,
                doc,
            };
            match self.log(&op) {
                Ok(ticket) => {
                    shard.epoch.fetch_add(1, Ordering::Release);
                    ticket
                }
                Err(e) => {
                    coll.uninsert(id);
                    return Err(e);
                }
            }
        };
        Ok(self.settle(ticket))
    }

    /// Installs (or removes) the [`JournalTap`] observing this store's
    /// journal — the primary half of journal replication. No-op for
    /// in-memory stores (nothing to ship).
    pub fn set_journal_tap(&self, tap: Option<Arc<dyn JournalTap>>) {
        if let Some(journal_mx) = &self.inner.journal {
            journal_mx.lock().set_tap(tap);
        }
    }

    /// The journal file's current bytes (magic + frame stream), read
    /// under the journal mutex so the image is frame-aligned with any
    /// concurrently registered tap.
    ///
    /// # Errors
    /// Returns [`KdbError::Io`] for in-memory stores (no journal) or
    /// when the backing file is unreadable.
    pub fn journal_image(&self) -> Result<Vec<u8>, KdbError> {
        match &self.inner.journal {
            Some(journal_mx) => journal_mx.lock().image(),
            None => Err(KdbError::Io(
                "in-memory store has no journal to replicate".into(),
            )),
        }
    }

    /// Rebuilds this store **in place** from a replicated journal
    /// image's op sequence: fresh collections are replayed from `ops`
    /// off to the side, the journal is atomically rewritten to exactly
    /// those frames (fsynced, so every installed op is durable and the
    /// acked/durable accounting restarts at `ops.len()`), and the shard
    /// registry is swapped wholesale. Concurrent readers see the old
    /// state until the swap and the new state after — never an empty
    /// store.
    ///
    /// This is the re-bootstrap path of a replication follower whose
    /// primary compacted (the shipped image no longer extends the
    /// replica's applied prefix, so prefix arithmetic is meaningless
    /// and the image must be taken as authoritative). The caller must
    /// ensure no concurrent writers — on a follower the replication
    /// engine is the store's only writer.
    ///
    /// # Errors
    /// [`KdbError`] when an op in `ops` does not apply to the state
    /// built so far (nothing is mutated in that case), or a journal
    /// I/O error from the rewrite (in-memory state is then unchanged,
    /// but the journal may be poisoned — as for any failed rewrite).
    pub fn reset_replica(&self, ops: &[Op]) -> Result<(), KdbError> {
        // 1. Validate by building the replacement state off to the side.
        fn coll_mut<'a>(
            map: &'a mut BTreeMap<String, Collection>,
            name: &str,
        ) -> Result<&'a mut Collection, KdbError> {
            map.get_mut(name)
                .ok_or_else(|| KdbError::UnknownCollection(name.to_owned()))
        }
        let mut collections: BTreeMap<String, Collection> = BTreeMap::new();
        for op in ops {
            match op {
                Op::CreateCollection { name } => {
                    if collections.contains_key(name) {
                        return Err(KdbError::CollectionExists(name.clone()));
                    }
                    collections.insert(name.clone(), Collection::new(name.clone()));
                }
                Op::CreateIndex { name, path } => {
                    coll_mut(&mut collections, name)?.create_index(path.clone())?;
                }
                Op::Insert { name, id, doc } => {
                    coll_mut(&mut collections, name)?.insert_with_id(*id, doc.clone())?;
                }
                Op::Update { name, id, doc } => {
                    coll_mut(&mut collections, name)?.update(*id, doc.clone())?;
                }
                Op::Delete { name, id } => {
                    coll_mut(&mut collections, name)?.delete(*id)?;
                }
            }
        }
        // 2. Install the journal first (atomic rename, fsynced) …
        if let Some(journal_mx) = &self.inner.journal {
            journal_mx.lock().reset_to(ops)?;
        }
        // 3. … then swap the shard registry and restart the commit
        //    watermarks at the installed (all-durable) op count.
        let shards = collections
            .into_iter()
            .map(|(name, coll)| (name, Arc::new(Shard::new(coll))))
            .collect();
        *self.inner.shards.write() = shards;
        let mut state = lock(&self.inner.commit);
        state.attempted = ops.len() as u64;
        state.durable = ops.len() as u64;
        state.last_sync = Instant::now();
        drop(state);
        self.inner.commit_cv.notify_all();
        Ok(())
    }

    // -- read path -----------------------------------------------------

    /// A consistent-per-collection snapshot of every shard. Unchanged
    /// shards re-serve their cached image without locking; changed ones
    /// are cloned under a shard read lock (writers never hold the write
    /// lock across an fsync, so the wait is in-memory-short).
    pub fn read(&self) -> KdbSnapshot {
        let shards = self.inner.shards.read();
        KdbSnapshot {
            collections: shards
                .iter()
                .map(|(name, shard)| (name.clone(), shard.image()))
                .collect(),
        }
    }

    // -- durability & maintenance --------------------------------------

    /// Forces an fsync round, making every acknowledged op durable.
    /// No-op for in-memory stores.
    ///
    /// # Errors
    /// Returns [`KdbError::Io`] when the fsync fails.
    pub fn sync(&self) -> Result<(), KdbError> {
        let Some(journal_mx) = &self.inner.journal else {
            return Ok(());
        };
        let mut journal = journal_mx.lock();
        self.sync_round(&mut journal).result
    }

    /// Compacts the journal to the minimal op sequence reconstructing
    /// the current state. Quiesces every shard (write locks, in name
    /// order) so the rewritten image is a true point-in-time state; on
    /// success every acknowledged op is durable (the image was fsynced).
    ///
    /// # Errors
    /// Returns journal I/O errors.
    pub fn snapshot(&self) -> Result<(), KdbError> {
        let shards = self.inner.shards.read();
        let guards: Vec<(&String, parking_lot::RwLockWriteGuard<'_, Collection>)> = shards
            .iter()
            .map(|(name, shard)| (name, shard.coll.write()))
            .collect();
        let mut ops = Vec::new();
        for (name, coll) in &guards {
            collection_state_ops(name, coll, &mut ops);
        }
        let Some(journal_mx) = &self.inner.journal else {
            return Ok(());
        };
        let mut journal = journal_mx.lock();
        journal.rewrite(&ops)?;
        let end = journal.acked_ops();
        drop(journal);
        let mut state = lock(&self.inner.commit);
        state.attempted = state.attempted.max(end);
        state.durable = state.durable.max(end);
        state.last_sync = Instant::now();
        drop(state);
        self.inner.commit_cv.notify_all();
        Ok(())
    }

    /// Replaces the facade's durability policy for subsequent commits.
    pub fn set_durability(&self, durability: DurabilityPolicy) {
        *self.inner.policy.lock() = durability;
    }

    /// Registers (or, with `None`, removes) the per-round
    /// [`CommitObserver`]. Unset — the default — the commit path is
    /// byte-for-byte the pre-tracing one; the analysis service only
    /// registers an observer when its trace `sample_rate` is non-zero.
    pub fn set_commit_observer(&self, observer: Option<Arc<dyn CommitObserver>>) {
        *self.inner.commit_observer.write() = observer;
    }

    /// The active durability policy.
    pub fn durability(&self) -> DurabilityPolicy {
        *self.inner.policy.lock()
    }

    /// Journal faults observed since open: append failures rolled back
    /// plus group-fsync rounds that failed (each counted once however
    /// many ops it covered). The service watches this to degrade.
    pub fn journal_fault_count(&self) -> u64 {
        self.inner.log_failures.load(Ordering::Relaxed)
            + self.inner.sync_failures.load(Ordering::Relaxed)
    }

    /// Ops acknowledged by the journal since open (0 when in-memory).
    pub fn journal_acked_ops(&self) -> u64 {
        self.inner
            .journal
            .as_ref()
            .map_or(0, |mx| mx.lock().acked_ops())
    }

    /// Ops known fsync-durable since open (0 when in-memory).
    pub fn journal_durable_ops(&self) -> u64 {
        self.inner
            .journal
            .as_ref()
            .map_or(0, |mx| mx.lock().durable_ops())
    }

    /// The corruption report when the store was opened in salvage mode.
    pub fn salvaged(&self) -> Option<&CorruptionReport> {
        self.inner.salvaged.as_ref()
    }

    /// The group committer's counters (batch sizes, flush latency,
    /// failure count) plus the journal's acked/durable watermarks.
    pub fn group_commit_stats(&self) -> GroupCommitSnapshot {
        let mut snap = self.inner.stats.snapshot();
        if let Some(mx) = &self.inner.journal {
            let journal = mx.lock();
            snap.acked_ops = journal.acked_ops();
            snap.durable_ops = journal.durable_ops();
        }
        snap
    }
}

fn lock(mutex: &Mutex<CommitState>) -> std::sync::MutexGuard<'_, CommitState> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------
// Writer handle.
// ---------------------------------------------------------------------

/// A lockless write handle over a [`SharedKdb`] implementing
/// [`KdbWrite`]; every method delegates to the facade's per-op locking.
#[derive(Debug)]
pub struct KdbWriter<'a> {
    db: &'a SharedKdb,
}

impl KdbWrite for KdbWriter<'_> {
    fn create_collection(&mut self, name: &str) -> Result<(), KdbError> {
        self.db.create_collection(name)
    }

    fn ensure_collection(&mut self, name: &str) -> Result<(), KdbError> {
        self.db.ensure_collection(name)
    }

    fn create_index(&mut self, collection: &str, path: &str) -> Result<(), KdbError> {
        self.db.create_index(collection, path)
    }

    fn ensure_index(&mut self, collection: &str, path: &str) -> Result<(), KdbError> {
        self.db.ensure_index(collection, path)
    }

    fn insert(&mut self, collection: &str, doc: Document) -> Result<DocId, KdbError> {
        self.db.insert(collection, doc)
    }

    fn update(&mut self, collection: &str, id: DocId, doc: Document) -> Result<(), KdbError> {
        self.db.update(collection, id, doc)
    }

    fn delete(&mut self, collection: &str, id: DocId) -> Result<(), KdbError> {
        self.db.delete(collection, id)
    }
}

// ---------------------------------------------------------------------
// Snapshot.
// ---------------------------------------------------------------------

/// An immutable point-in-time view of every collection, produced by
/// [`SharedKdb::read`]. Each collection image is per-collection
/// consistent; images of *different* collections may straddle
/// concurrent commits (no global barrier). Cheap to clone (`Arc`s).
#[derive(Debug, Clone)]
pub struct KdbSnapshot {
    collections: BTreeMap<String, Arc<Collection>>,
}

impl KdbSnapshot {
    /// Borrows a collection image.
    pub fn collection(&self, name: &str) -> Option<&Collection> {
        self.collections.get(name).map(Arc::as_ref)
    }

    /// Collection names, sorted.
    pub fn collection_names(&self) -> Vec<&str> {
        self.collections.keys().map(String::as_str).collect()
    }

    /// Finds documents in a collection (cloned out).
    ///
    /// # Errors
    /// Returns [`KdbError::UnknownCollection`].
    pub fn find(
        &self,
        collection: &str,
        filter: &Filter,
    ) -> Result<Vec<(DocId, Document)>, KdbError> {
        KdbRead::find(self, collection, filter)
    }

    /// The canonical op sequence of this snapshot (see
    /// [`Kdb::state_ops`]).
    pub fn state_ops(&self) -> Vec<Op> {
        KdbRead::state_ops(self)
    }

    /// FNV-1a digest of the snapshot state (see [`Kdb::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        KdbRead::fingerprint(self)
    }
}

impl KdbRead for KdbSnapshot {
    fn collection(&self, name: &str) -> Option<&Collection> {
        KdbSnapshot::collection(self, name)
    }

    fn collection_names(&self) -> Vec<&str> {
        KdbSnapshot::collection_names(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::Value;
    use crate::storage::{FaultKind, FaultyStorage, MemStorage, Storage};

    fn item(kind: &str, score: f64) -> Document {
        Document::new().with("kind", kind).with("score", score)
    }

    fn mem_store(policy: DurabilityPolicy) -> (SharedKdb, MemStorage) {
        let mem = MemStorage::new();
        let options = StoreOptions::with_storage(Arc::new(mem.clone())).durability(policy);
        let db = SharedKdb::open_with(Path::new("j"), options).unwrap();
        (db, mem)
    }

    #[test]
    fn crud_round_trip_through_the_facade() {
        let db = SharedKdb::in_memory();
        db.create_collection("items").unwrap();
        db.create_index("items", "kind").unwrap();
        let id = db.insert("items", item("cluster", 0.9)).unwrap();
        db.update("items", id, item("cluster", 0.5)).unwrap();
        let snap = db.read();
        assert_eq!(snap.collection("items").unwrap().len(), 1);
        let found = snap.find("items", &Filter::eq("kind", "cluster")).unwrap();
        assert_eq!(found[0].1.get("score").and_then(Value::as_f64), Some(0.5));
        db.delete("items", id).unwrap();
        assert!(db.read().collection("items").unwrap().is_empty());
        // Stale snapshot still sees the pre-delete image.
        assert_eq!(snap.collection("items").unwrap().len(), 1);
    }

    #[test]
    fn facade_state_matches_plain_kdb_fingerprint() {
        let build = |db: &mut dyn KdbWrite| {
            db.create_collection("a").unwrap();
            db.ensure_index("a", "kind").unwrap();
            db.create_collection("b").unwrap();
            for i in 0..5 {
                db.insert("a", item("x", f64::from(i))).unwrap();
                db.insert("b", item("y", f64::from(i))).unwrap();
            }
            db.delete("a", 2).unwrap();
        };
        let mut plain = Kdb::in_memory();
        build(&mut plain);
        let sharded = SharedKdb::in_memory();
        build(&mut sharded.write());
        assert_eq!(plain.fingerprint(), sharded.read().fingerprint());
    }

    #[test]
    fn reset_replica_installs_an_image_wholesale() {
        // Source store: some history with an update and a delete.
        let (src, _) = mem_store(DurabilityPolicy::Always);
        src.create_collection("items").unwrap();
        src.create_index("items", "kind").unwrap();
        let a = src.insert("items", item("cluster", 0.9)).unwrap();
        let b = src.insert("items", item("pattern", 0.2)).unwrap();
        src.update("items", a, item("cluster", 0.7)).unwrap();
        src.delete("items", b).unwrap();
        src.sync().unwrap();
        let image = src.journal_image().unwrap();
        let ops = crate::journal::replay_bytes(&image, crate::journal::RecoveryMode::Strict)
            .unwrap()
            .ops;

        // Target store holds unrelated state the reset must wipe.
        let (dst, _) = mem_store(DurabilityPolicy::Always);
        dst.create_collection("stale").unwrap();
        dst.insert("stale", item("old", 1.0)).unwrap();
        dst.reset_replica(&ops).unwrap();

        assert_eq!(dst.read().fingerprint(), src.read().fingerprint());
        assert_eq!(
            dst.journal_image().unwrap(),
            image,
            "journal byte-identical"
        );
        assert_eq!(dst.journal_acked_ops(), ops.len() as u64);
        assert_eq!(
            dst.journal_durable_ops(),
            ops.len() as u64,
            "an installed image is fsynced, so every op is durable"
        );
        assert!(dst.read().collection("stale").is_none(), "old state wiped");

        // The rebuilt store keeps working: appends extend the image.
        dst.insert("items", item("fresh", 0.1)).unwrap();
        dst.sync().unwrap();
        assert_eq!(dst.journal_acked_ops(), ops.len() as u64 + 1);
        let replayed = crate::journal::replay_bytes(
            &dst.journal_image().unwrap(),
            crate::journal::RecoveryMode::Strict,
        )
        .unwrap();
        assert_eq!(replayed.ops.len(), ops.len() + 1);

        // An image with a non-applying op is rejected without mutating.
        let before = dst.read().fingerprint();
        let bad = vec![Op::Delete {
            name: "nope".into(),
            id: 1,
        }];
        assert!(dst.reset_replica(&bad).is_err());
        assert_eq!(dst.read().fingerprint(), before);
    }

    #[test]
    fn snapshot_cache_reuses_unchanged_shards() {
        let db = SharedKdb::in_memory();
        db.create_collection("hot").unwrap();
        db.create_collection("cold").unwrap();
        db.insert("cold", item("c", 1.0)).unwrap();
        let a = db.read();
        let b = db.read();
        assert!(Arc::ptr_eq(&a.collections["cold"], &b.collections["cold"]));
        db.insert("hot", item("h", 1.0)).unwrap();
        let c = db.read();
        assert!(Arc::ptr_eq(&a.collections["cold"], &c.collections["cold"]));
        assert!(!Arc::ptr_eq(&a.collections["hot"], &c.collections["hot"]));
    }

    #[test]
    fn group_commit_always_acks_durable_and_persists() {
        let (db, mem) = mem_store(DurabilityPolicy::Always);
        db.create_collection("items").unwrap();
        let (_, durable) = db.insert_committed("items", item("a", 1.0)).unwrap();
        assert!(durable, "Always must ack durable");
        assert_eq!(db.journal_durable_ops(), db.journal_acked_ops());
        let stats = db.group_commit_stats();
        assert!(stats.commits >= 1);
        assert_eq!(stats.failures, 0);
        drop(db);
        let reopened =
            Kdb::open_with(Path::new("j"), StoreOptions::with_storage(Arc::new(mem))).unwrap();
        assert_eq!(reopened.collection("items").unwrap().len(), 1);
    }

    #[test]
    fn concurrent_writers_on_distinct_collections_commit_all_ops() {
        let (db, mem) = mem_store(DurabilityPolicy::Always);
        const WRITERS: usize = 4;
        const OPS: usize = 25;
        for w in 0..WRITERS {
            db.create_collection(&format!("w{w}")).unwrap();
        }
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let db = db.clone();
                scope.spawn(move || {
                    let coll = format!("w{w}");
                    for i in 0..OPS {
                        let (_, durable) =
                            db.insert_committed(&coll, item("row", i as f64)).unwrap();
                        assert!(durable, "Always policy acked non-durable");
                    }
                });
            }
        });
        let acked = db.journal_acked_ops();
        assert_eq!(acked, (WRITERS * (OPS + 1)) as u64);
        assert_eq!(db.journal_durable_ops(), acked);
        let expected = db.read().fingerprint();
        drop(db);
        let reopened =
            Kdb::open_with(Path::new("j"), StoreOptions::with_storage(Arc::new(mem))).unwrap();
        assert_eq!(reopened.fingerprint(), expected);
        for w in 0..WRITERS {
            assert_eq!(reopened.collection(&format!("w{w}")).unwrap().len(), OPS);
        }
    }

    #[test]
    fn failed_append_rolls_back_and_counts_fault() {
        let mem = MemStorage::new();
        let (storage, handle) = FaultyStorage::wrap(Arc::new(mem) as Arc<dyn Storage>);
        let db = SharedKdb::open_with(
            Path::new("j"),
            StoreOptions::with_storage(storage).durability(DurabilityPolicy::Always),
        )
        .unwrap();
        db.create_collection("items").unwrap();
        db.insert("items", item("a", 1.0)).unwrap();
        handle.fail_persistently(FaultKind::NoSpace);
        let err = db.insert("items", item("b", 2.0)).unwrap_err();
        assert!(matches!(err, KdbError::Io(_)));
        assert_eq!(db.journal_fault_count(), 1);
        // Memory rolled back: the second insert left no trace, and the
        // next insert (after the journal is poisoned) also fails.
        assert_eq!(db.read().collection("items").unwrap().len(), 1);
        handle.clear();
        assert!(db.insert("items", item("c", 3.0)).is_err(), "poisoned");
    }

    #[test]
    fn update_with_is_atomic_under_contention() {
        let db = SharedKdb::in_memory();
        db.create_collection("counters").unwrap();
        let id = db
            .insert("counters", Document::new().with("n", 0i64))
            .unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let db = db.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        db.update_with("counters", id, |doc| {
                            let n = doc.get("n").and_then(Value::as_i64).unwrap();
                            doc.clone().with("n", n + 1)
                        })
                        .unwrap();
                    }
                });
            }
        });
        let snap = db.read();
        let doc = snap.collection("counters").unwrap().get(id).unwrap();
        assert_eq!(doc.get("n").and_then(Value::as_i64), Some(400));
    }

    #[test]
    fn batch_policy_syncs_on_the_filling_op() {
        let (db, _mem) = mem_store(DurabilityPolicy::Batch {
            max_ops: 3,
            max_delay: Duration::from_secs(3600),
        });
        db.create_collection("items").unwrap(); // op 1
        let (_, d2) = db.insert_committed("items", item("a", 1.0)).unwrap(); // op 2
        assert!(!d2);
        let (_, d3) = db.insert_committed("items", item("b", 2.0)).unwrap(); // op 3 fills
        assert!(d3, "the op filling the batch acks durable");
        assert_eq!(db.journal_durable_ops(), 3);
        let stats = db.group_commit_stats();
        assert!(stats.commits >= 1);
    }

    #[test]
    fn snapshot_compaction_quiesces_and_makes_all_ops_durable() {
        let (db, mem) = mem_store(DurabilityPolicy::SnapshotOnly);
        db.create_collection("items").unwrap();
        for i in 0..10 {
            db.insert("items", item("k", f64::from(i))).unwrap();
        }
        for id in 1..=5 {
            db.delete("items", id).unwrap();
        }
        assert_eq!(db.journal_durable_ops(), 0);
        let before = mem.len(Path::new("j")).unwrap();
        db.snapshot().unwrap();
        assert!(mem.len(Path::new("j")).unwrap() < before);
        let expected = db.read().fingerprint();
        drop(db);
        let reopened =
            Kdb::open_with(Path::new("j"), StoreOptions::with_storage(Arc::new(mem))).unwrap();
        assert_eq!(reopened.fingerprint(), expected);
    }
}
