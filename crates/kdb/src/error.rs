//! Error type for the K-DB.

use std::fmt;

/// Errors produced by the document store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KdbError {
    /// The named collection does not exist.
    UnknownCollection(String),
    /// A collection with this name already exists.
    CollectionExists(String),
    /// No document with the given id.
    UnknownDocument(u64),
    /// An index on this path already exists.
    IndexExists(String),
    /// Malformed canonical encoding: (byte offset, reason).
    Decode(usize, String),
    /// Malformed journal entry: (line number, reason).
    Journal(usize, String),
    /// Mid-file journal corruption localized to a record.
    Corrupt {
        /// Byte offset of the corrupt record's frame start.
        offset: u64,
        /// Zero-based index of the corrupt record.
        record: usize,
        /// What failed (crc mismatch, sequence gap, …).
        reason: String,
    },
    /// A document violated a typed schema contract (reason).
    Schema(String),
    /// Underlying I/O failure (stringified to keep the error comparable).
    Io(String),
}

impl fmt::Display for KdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownCollection(name) => write!(f, "unknown collection {name:?}"),
            Self::CollectionExists(name) => write!(f, "collection {name:?} already exists"),
            Self::UnknownDocument(id) => write!(f, "unknown document id {id}"),
            Self::IndexExists(path) => write!(f, "index on {path:?} already exists"),
            Self::Decode(offset, reason) => {
                write!(f, "decode error at byte {offset}: {reason}")
            }
            Self::Journal(line, reason) => write!(f, "journal error at line {line}: {reason}"),
            Self::Corrupt {
                offset,
                record,
                reason,
            } => write!(
                f,
                "journal corrupt at byte {offset} (record {record}): {reason}"
            ),
            Self::Schema(reason) => write!(f, "schema violation: {reason}"),
            Self::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for KdbError {}

impl From<std::io::Error> for KdbError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}
