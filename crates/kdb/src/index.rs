//! Secondary ordered indexes.
//!
//! An index maps the value at one dotted path to the set of document ids
//! holding it, inside a `BTreeMap` keyed by a *total-ordered* encoding of
//! values ([`IndexKey`]), so both equality and range filters can be
//! answered with a tree lookup / range scan instead of a full collection
//! scan. Numeric keys unify `I64` and `F64` (matching the query layer's
//! coercion semantics).

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

use serde::{Deserialize, Serialize};

use crate::collection::DocId;
use crate::document::{Document, Value};

/// An `f64` with the IEEE total order, usable as a BTreeMap key.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrderedF64(pub f64);

impl Eq for OrderedF64 {}
impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Total-ordered key form of a [`Value`].
///
/// The variant order (null < bool < number < string < other) is the
/// cross-type ordering; within `Other`, composite values order by their
/// canonical encoding (total, if arbitrary — only equality matters
/// there).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum IndexKey {
    /// Null values.
    Null,
    /// Booleans.
    Bool(bool),
    /// Unified numeric key (`I64` coerces to `f64`; exact for |v| < 2⁵³,
    /// which covers every id and count this system stores).
    Num(OrderedF64),
    /// Strings.
    Str(String),
    /// Arrays/documents, keyed by canonical encoding.
    Other(String),
}

impl IndexKey {
    /// Converts a value into its key form.
    pub fn from_value(value: &Value) -> Self {
        match value {
            Value::Null => IndexKey::Null,
            Value::Bool(b) => IndexKey::Bool(*b),
            Value::I64(v) => IndexKey::Num(OrderedF64(*v as f64)),
            Value::F64(v) => IndexKey::Num(OrderedF64(*v)),
            Value::Str(s) => IndexKey::Str(s.clone()),
            composite => IndexKey::Other(composite.encode()),
        }
    }
}

/// A secondary index over one dotted path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Index {
    path: String,
    entries: BTreeMap<IndexKey, BTreeSet<DocId>>,
}

impl Index {
    /// An empty index on `path`.
    pub fn new(path: impl Into<String>) -> Self {
        Self {
            path: path.into(),
            entries: BTreeMap::new(),
        }
    }

    /// The indexed path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Indexes a document (no-op when the path is absent).
    pub fn add(&mut self, id: DocId, doc: &Document) {
        if let Some(v) = doc.get_path(&self.path) {
            self.entries
                .entry(IndexKey::from_value(v))
                .or_default()
                .insert(id);
        }
    }

    /// Removes a document from the index (no-op when absent).
    pub fn remove(&mut self, id: DocId, doc: &Document) {
        if let Some(v) = doc.get_path(&self.path) {
            let key = IndexKey::from_value(v);
            if let Some(set) = self.entries.get_mut(&key) {
                set.remove(&id);
                if set.is_empty() {
                    self.entries.remove(&key);
                }
            }
        }
    }

    /// Ids of documents whose indexed value equals `value`.
    pub fn lookup_eq(&self, value: &Value) -> Vec<DocId> {
        self.entries
            .get(&IndexKey::from_value(value))
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Ids of documents whose indexed value lies in the given half-open
    /// range relative to `value` — candidates for `Gt`/`Gte`/`Lt`/`Lte`
    /// filters. Only same-kind keys (numeric vs. string) are scanned, so
    /// the result honours the query layer's "type mismatch is false"
    /// rule.
    pub fn lookup_range(&self, value: &Value, lower: Bound<()>, upper: Bound<()>) -> Vec<DocId> {
        let key = IndexKey::from_value(value);
        let (lo, hi): (Bound<&IndexKey>, Bound<&IndexKey>) = match (lower, upper) {
            (Bound::Excluded(()), Bound::Unbounded) => (Bound::Excluded(&key), Bound::Unbounded),
            (Bound::Included(()), Bound::Unbounded) => (Bound::Included(&key), Bound::Unbounded),
            (Bound::Unbounded, Bound::Excluded(())) => (Bound::Unbounded, Bound::Excluded(&key)),
            (Bound::Unbounded, Bound::Included(())) => (Bound::Unbounded, Bound::Included(&key)),
            _ => (Bound::Unbounded, Bound::Unbounded),
        };
        let same_kind = |k: &IndexKey| {
            matches!(
                (k, &key),
                (IndexKey::Num(_), IndexKey::Num(_)) | (IndexKey::Str(_), IndexKey::Str(_))
            )
        };
        self.entries
            .range((lo, hi))
            .filter(|(k, _)| same_kind(k))
            .flat_map(|(_, set)| set.iter().copied())
            .collect()
    }

    /// Number of distinct indexed keys.
    pub fn num_keys(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(v: impl Into<Value>) -> Document {
        Document::new().with("score", v)
    }

    #[test]
    fn add_lookup_remove() {
        let mut idx = Index::new("score");
        idx.add(1, &doc(5i64));
        idx.add(2, &doc(5i64));
        idx.add(3, &doc(7i64));
        assert_eq!(idx.lookup_eq(&Value::I64(5)), vec![1, 2]);
        assert_eq!(idx.lookup_eq(&Value::I64(7)), vec![3]);
        assert!(idx.lookup_eq(&Value::I64(9)).is_empty());
        idx.remove(1, &doc(5i64));
        assert_eq!(idx.lookup_eq(&Value::I64(5)), vec![2]);
        idx.remove(2, &doc(5i64));
        assert_eq!(idx.num_keys(), 1);
    }

    #[test]
    fn i64_and_f64_unify() {
        let mut idx = Index::new("score");
        idx.add(1, &doc(5i64));
        idx.add(2, &doc(5.0f64));
        assert_eq!(idx.lookup_eq(&Value::F64(5.0)), vec![1, 2]);
        assert_eq!(idx.lookup_eq(&Value::I64(5)), vec![1, 2]);
    }

    #[test]
    fn missing_path_not_indexed() {
        let mut idx = Index::new("score");
        idx.add(1, &Document::new().with("other", 1i64));
        assert_eq!(idx.num_keys(), 0);
    }

    #[test]
    fn range_scans_numeric() {
        let mut idx = Index::new("score");
        for (id, v) in [(1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0)] {
            idx.add(id, &doc(v));
        }
        idx.add(9, &doc("banana")); // different kind, must not appear
        let gt2: Vec<DocId> =
            idx.lookup_range(&Value::F64(2.0), Bound::Excluded(()), Bound::Unbounded);
        assert_eq!(gt2, vec![3, 4]);
        let lte3 = idx.lookup_range(&Value::I64(3), Bound::Unbounded, Bound::Included(()));
        assert_eq!(lte3, vec![1, 2, 3]);
    }

    #[test]
    fn range_scans_strings() {
        let mut idx = Index::new("score");
        idx.add(1, &doc("apple"));
        idx.add(2, &doc("banana"));
        idx.add(3, &doc("cherry"));
        idx.add(9, &doc(1i64));
        let gte_b = idx.lookup_range(
            &Value::Str("banana".into()),
            Bound::Included(()),
            Bound::Unbounded,
        );
        assert_eq!(gte_b, vec![2, 3]);
    }

    #[test]
    fn nested_path_index() {
        let mut idx = Index::new("meta.k");
        let d = Document::new().with("meta", Document::new().with("k", 8i64));
        idx.add(1, &d);
        assert_eq!(idx.lookup_eq(&Value::I64(8)), vec![1]);
    }

    #[test]
    fn key_total_order_across_types() {
        let keys = [
            IndexKey::Null,
            IndexKey::Bool(false),
            IndexKey::Bool(true),
            IndexKey::Num(OrderedF64(-1.0)),
            IndexKey::Num(OrderedF64(2.0)),
            IndexKey::Str("a".into()),
        ];
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "{:?} < {:?}", w[0], w[1]);
        }
    }
}
