//! Rich read queries: sorting, limits, projection and aggregation.
//!
//! The knowledge-navigation layer reads the K-DB in ranked pages
//! ("top-20 pattern items by score") and the session views aggregate
//! ("how many items per session"); this module adds those read shapes
//! on top of [`Collection::find`].

use std::collections::BTreeMap;

use crate::collection::{Collection, DocId};
use crate::document::{Document, Value};
use crate::index::IndexKey;
use crate::query::Filter;

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Smallest key first.
    Ascending,
    /// Largest key first.
    Descending,
}

/// A read query over one collection.
#[derive(Debug, Clone)]
pub struct FindOptions {
    /// Filter to apply (defaults to everything).
    pub filter: Filter,
    /// Sort key: a dotted path plus direction. Documents missing the
    /// path sort last regardless of direction. `None` keeps id order.
    pub sort: Option<(String, Order)>,
    /// Skip this many results after sorting.
    pub skip: usize,
    /// Keep at most this many results after skipping.
    pub limit: Option<usize>,
    /// Keep only these top-level fields (plus `_id`) in the returned
    /// documents. `None` returns whole documents.
    pub projection: Option<Vec<String>>,
}

impl Default for FindOptions {
    fn default() -> Self {
        Self {
            filter: Filter::True,
            sort: None,
            skip: 0,
            limit: None,
            projection: None,
        }
    }
}

impl FindOptions {
    /// Everything matching `filter`.
    pub fn filtered(filter: Filter) -> Self {
        Self {
            filter,
            ..Self::default()
        }
    }

    /// Sorts by a dotted path (builder style).
    pub fn sort_by(mut self, path: impl Into<String>, order: Order) -> Self {
        self.sort = Some((path.into(), order));
        self
    }

    /// Limits the result count (builder style).
    pub fn limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Skips leading results (builder style).
    pub fn skip(mut self, skip: usize) -> Self {
        self.skip = skip;
        self
    }

    /// Projects to the given top-level fields (builder style).
    pub fn project(mut self, fields: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.projection = Some(fields.into_iter().map(Into::into).collect());
        self
    }
}

/// Runs a rich query against a collection, returning owned documents.
pub fn find_with(collection: &Collection, options: &FindOptions) -> Vec<(DocId, Document)> {
    let mut rows: Vec<(DocId, &Document)> = collection.find(&options.filter);

    if let Some((path, order)) = &options.sort {
        rows.sort_by(|(ia, a), (ib, b)| {
            let ka = a.get_path(path).map(IndexKey::from_value);
            let kb = b.get_path(path).map(IndexKey::from_value);
            let cmp = match (ka, kb) {
                (Some(x), Some(y)) => match order {
                    Order::Ascending => x.cmp(&y),
                    Order::Descending => y.cmp(&x),
                },
                // Missing sort keys go last, whatever the direction.
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => std::cmp::Ordering::Equal,
            };
            cmp.then_with(|| ia.cmp(ib))
        });
    }

    rows.into_iter()
        .skip(options.skip)
        .take(options.limit.unwrap_or(usize::MAX))
        .map(|(id, doc)| {
            let doc = match &options.projection {
                None => doc.clone(),
                Some(fields) => {
                    let mut projected = Document::new();
                    if let Some(idv) = doc.get("_id") {
                        projected.set("_id", idv.clone());
                    }
                    for field in fields {
                        if let Some(v) = doc.get(field) {
                            projected.set(field.clone(), v.clone());
                        }
                    }
                    projected
                }
            };
            (id, doc)
        })
        .collect()
}

/// Groups matching documents by the value at `path` and counts each
/// group. Documents missing the path are counted under `Value::Null`.
/// Groups are returned in key order.
pub fn count_by(collection: &Collection, filter: &Filter, path: &str) -> Vec<(Value, usize)> {
    let mut groups: BTreeMap<IndexKey, (Value, usize)> = BTreeMap::new();
    for (_, doc) in collection.find(filter) {
        let value = doc.get_path(path).cloned().unwrap_or(Value::Null);
        let key = IndexKey::from_value(&value);
        groups.entry(key).or_insert((value, 0)).1 += 1;
    }
    groups.into_values().collect()
}

/// Sums the numeric values at `path` over matching documents (missing or
/// non-numeric fields contribute 0).
pub fn sum_by(collection: &Collection, filter: &Filter, path: &str) -> f64 {
    collection
        .find(filter)
        .iter()
        .filter_map(|(_, d)| d.get_path(path).and_then(Value::as_f64))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Collection {
        let mut c = Collection::new("items");
        for (kind, score) in [
            ("cluster", 0.9),
            ("pattern", 0.5),
            ("cluster", 0.2),
            ("pattern", 0.7),
        ] {
            c.insert(Document::new().with("kind", kind).with("score", score));
        }
        // One document without a score.
        c.insert(Document::new().with("kind", "cluster"));
        c
    }

    #[test]
    fn sort_limit_skip() {
        let c = sample();
        let top2 = find_with(
            &c,
            &FindOptions::default()
                .sort_by("score", Order::Descending)
                .limit(2),
        );
        let scores: Vec<f64> = top2
            .iter()
            .map(|(_, d)| d.get("score").unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(scores, vec![0.9, 0.7]);

        let second_page = find_with(
            &c,
            &FindOptions::default()
                .sort_by("score", Order::Descending)
                .skip(2)
                .limit(2),
        );
        let scores: Vec<f64> = second_page
            .iter()
            .map(|(_, d)| d.get("score").unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(scores, vec![0.5, 0.2]);
    }

    #[test]
    fn missing_sort_key_goes_last() {
        let c = sample();
        let all = find_with(
            &c,
            &FindOptions::default().sort_by("score", Order::Ascending),
        );
        assert!(all.last().unwrap().1.get("score").is_none());
        let all_desc = find_with(
            &c,
            &FindOptions::default().sort_by("score", Order::Descending),
        );
        assert!(all_desc.last().unwrap().1.get("score").is_none());
    }

    #[test]
    fn filter_and_projection() {
        let c = sample();
        let clusters = find_with(
            &c,
            &FindOptions::filtered(Filter::eq("kind", "cluster")).project(["score"]),
        );
        assert_eq!(clusters.len(), 3);
        for (_, d) in &clusters {
            assert!(d.get("kind").is_none(), "kind must be projected away");
            assert!(d.get("_id").is_some(), "_id survives projection");
        }
    }

    #[test]
    fn ties_break_by_id() {
        let mut c = Collection::new("t");
        c.insert(Document::new().with("v", 1i64));
        c.insert(Document::new().with("v", 1i64));
        let rows = find_with(&c, &FindOptions::default().sort_by("v", Order::Descending));
        assert_eq!(rows[0].0, 1);
        assert_eq!(rows[1].0, 2);
    }

    #[test]
    fn count_by_groups() {
        let c = sample();
        let counts = count_by(&c, &Filter::True, "kind");
        assert_eq!(counts.len(), 2);
        let get = |name: &str| {
            counts
                .iter()
                .find(|(v, _)| v.as_str() == Some(name))
                .map(|(_, n)| *n)
        };
        assert_eq!(get("cluster"), Some(3));
        assert_eq!(get("pattern"), Some(2));

        // Missing paths group under Null.
        let by_score = count_by(&c, &Filter::True, "score");
        assert!(by_score.iter().any(|(v, n)| *v == Value::Null && *n == 1));
    }

    #[test]
    fn sum_by_totals() {
        let c = sample();
        let total = sum_by(&c, &Filter::True, "score");
        assert!((total - (0.9 + 0.5 + 0.2 + 0.7)).abs() < 1e-12);
        let clusters = sum_by(&c, &Filter::eq("kind", "cluster"), "score");
        assert!((clusters - 1.1).abs() < 1e-12);
    }
}
