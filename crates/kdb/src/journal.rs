//! Append-only journal persistence with crash recovery.
//!
//! Every mutation of a persistent [`crate::Kdb`] is appended as one
//! self-delimiting operation record (built from the canonical value
//! encoding, so no line-framing or escaping is needed). Opening a store
//! replays the journal; a partial final record — the normal shape of a
//! crash mid-write — is detected and truncated away. [`crate::Kdb`]'s
//! `snapshot` rewrites the journal as the minimal op sequence
//! reconstructing the current state.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::collection::DocId;
use crate::document::{Document, Value};
use crate::error::KdbError;

/// One journaled mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Create a collection.
    CreateCollection {
        /// Collection name.
        name: String,
    },
    /// Create an index on a collection path.
    CreateIndex {
        /// Collection name.
        name: String,
        /// Indexed dotted path.
        path: String,
    },
    /// Insert a document under a known id.
    Insert {
        /// Collection name.
        name: String,
        /// Assigned document id.
        id: DocId,
        /// The inserted document.
        doc: Document,
    },
    /// Replace a document.
    Update {
        /// Collection name.
        name: String,
        /// Target document id.
        id: DocId,
        /// The replacement document.
        doc: Document,
    },
    /// Delete a document.
    Delete {
        /// Collection name.
        name: String,
        /// Target document id.
        id: DocId,
    },
}

impl Op {
    /// Appends the encoded op to `out`.
    pub fn encode_into(&self, out: &mut String) {
        let push_str = |out: &mut String, s: &str| Value::Str(s.to_owned()).encode_into(out);
        let push_id = |out: &mut String, id: DocId| Value::I64(id as i64).encode_into(out);
        match self {
            Op::CreateCollection { name } => {
                out.push('C');
                push_str(out, name);
            }
            Op::CreateIndex { name, path } => {
                out.push('X');
                push_str(out, name);
                push_str(out, path);
            }
            Op::Insert { name, id, doc } => {
                out.push('I');
                push_str(out, name);
                push_id(out, *id);
                Value::Doc(doc.clone()).encode_into(out);
            }
            Op::Update { name, id, doc } => {
                out.push('U');
                push_str(out, name);
                push_id(out, *id);
                Value::Doc(doc.clone()).encode_into(out);
            }
            Op::Delete { name, id } => {
                out.push('D');
                push_str(out, name);
                push_id(out, *id);
            }
        }
    }

    /// Decodes one op starting at `*pos`, advancing past it.
    ///
    /// # Errors
    /// Returns [`KdbError::Decode`] on malformed input.
    pub fn decode_prefix(bytes: &[u8], pos: &mut usize) -> Result<Op, KdbError> {
        let take_str = |pos: &mut usize| -> Result<String, KdbError> {
            match Value::decode_prefix(bytes, pos)? {
                Value::Str(s) => Ok(s),
                other => Err(KdbError::Decode(
                    *pos,
                    format!("expected string, found {}", other.type_name()),
                )),
            }
        };
        let take_id = |pos: &mut usize| -> Result<DocId, KdbError> {
            match Value::decode_prefix(bytes, pos)? {
                Value::I64(v) if v >= 0 => Ok(v as DocId),
                other => Err(KdbError::Decode(*pos, format!("bad id {other:?}"))),
            }
        };
        let take_doc = |pos: &mut usize| -> Result<Document, KdbError> {
            match Value::decode_prefix(bytes, pos)? {
                Value::Doc(d) => Ok(d),
                other => Err(KdbError::Decode(
                    *pos,
                    format!("expected document, found {}", other.type_name()),
                )),
            }
        };
        let tag = *bytes
            .get(*pos)
            .ok_or_else(|| KdbError::Decode(*pos, "end of journal".into()))?;
        *pos += 1;
        match tag {
            b'C' => Ok(Op::CreateCollection {
                name: take_str(pos)?,
            }),
            b'X' => Ok(Op::CreateIndex {
                name: take_str(pos)?,
                path: take_str(pos)?,
            }),
            b'I' => Ok(Op::Insert {
                name: take_str(pos)?,
                id: take_id(pos)?,
                doc: take_doc(pos)?,
            }),
            b'U' => Ok(Op::Update {
                name: take_str(pos)?,
                id: take_id(pos)?,
                doc: take_doc(pos)?,
            }),
            b'D' => Ok(Op::Delete {
                name: take_str(pos)?,
                id: take_id(pos)?,
            }),
            other => Err(KdbError::Decode(
                *pos - 1,
                format!("unknown op tag {:?}", other as char),
            )),
        }
    }
}

/// The result of replaying a journal file.
pub struct Replay {
    /// Successfully decoded operations, in order.
    pub ops: Vec<Op>,
    /// Byte offset of the first undecodable record (= file length when
    /// the journal is clean). Everything past it is a torn write.
    pub valid_len: u64,
    /// Whether a torn tail was detected.
    pub truncated: bool,
}

/// Reads and decodes a journal file, tolerating a torn final record.
///
/// # Errors
/// Returns [`KdbError::Io`] on filesystem failures.
pub fn replay(path: &Path) -> Result<Replay, KdbError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let mut ops = Vec::new();
    let mut pos = 0usize;
    loop {
        if pos >= bytes.len() {
            return Ok(Replay {
                ops,
                valid_len: pos as u64,
                truncated: false,
            });
        }
        let mark = pos;
        match Op::decode_prefix(&bytes, &mut pos) {
            Ok(op) => ops.push(op),
            Err(_) => {
                // Torn tail: everything before `mark` replayed cleanly.
                return Ok(Replay {
                    ops,
                    valid_len: mark as u64,
                    truncated: true,
                });
            }
        }
    }
}

/// An open journal writer.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    writer: BufWriter<File>,
}

impl Journal {
    /// Opens (creating if needed) the journal for appending. When a torn
    /// tail is detected the file is first truncated to its valid prefix.
    ///
    /// # Errors
    /// Returns [`KdbError::Io`] on filesystem failures.
    pub fn open(path: &Path, valid_len: Option<u64>) -> Result<Self, KdbError> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(path)?;
        if let Some(len) = valid_len {
            file.set_len(len)?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok(Self {
            path: path.to_path_buf(),
            writer: BufWriter::new(file),
        })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one op and flushes it to the OS.
    ///
    /// # Errors
    /// Returns [`KdbError::Io`] on write failures.
    pub fn append(&mut self, op: &Op) -> Result<(), KdbError> {
        let mut buf = String::new();
        op.encode_into(&mut buf);
        self.writer.write_all(buf.as_bytes())?;
        self.writer.flush()?;
        Ok(())
    }

    /// Atomically replaces the journal contents with the given op
    /// sequence (snapshot compaction): writes a temp file, fsyncs, and
    /// renames over the original.
    ///
    /// # Errors
    /// Returns [`KdbError::Io`] on filesystem failures.
    pub fn rewrite(&mut self, ops: &[Op]) -> Result<(), KdbError> {
        let tmp = self.path.with_extension("tmp");
        {
            let mut w = BufWriter::new(File::create(&tmp)?);
            let mut buf = String::new();
            for op in ops {
                buf.clear();
                op.encode_into(&mut buf);
                w.write_all(buf.as_bytes())?;
            }
            w.flush()?;
            w.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        let mut file = OpenOptions::new().write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        self.writer = BufWriter::new(file);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops_sample() -> Vec<Op> {
        vec![
            Op::CreateCollection {
                name: "items".into(),
            },
            Op::CreateIndex {
                name: "items".into(),
                path: "kind".into(),
            },
            Op::Insert {
                name: "items".into(),
                id: 1,
                doc: Document::new().with("kind", "cluster").with("s", 0.5f64),
            },
            Op::Update {
                name: "items".into(),
                id: 1,
                doc: Document::new().with("kind", "pattern"),
            },
            Op::Delete {
                name: "items".into(),
                id: 1,
            },
        ]
    }

    #[test]
    fn op_encode_decode_round_trip() {
        for op in ops_sample() {
            let mut buf = String::new();
            op.encode_into(&mut buf);
            let mut pos = 0usize;
            let back = Op::decode_prefix(buf.as_bytes(), &mut pos).unwrap();
            assert_eq!(back, op);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn journal_append_and_replay() {
        let path = std::env::temp_dir().join(format!("ada_kdb_j1_{}", std::process::id()));
        std::fs::remove_file(&path).ok();
        {
            let mut j = Journal::open(&path, None).unwrap();
            for op in ops_sample() {
                j.append(&op).unwrap();
            }
        }
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.ops, ops_sample());
        assert!(!replayed.truncated);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_detected_and_valid_prefix_kept() {
        let path = std::env::temp_dir().join(format!("ada_kdb_j2_{}", std::process::id()));
        std::fs::remove_file(&path).ok();
        {
            let mut j = Journal::open(&path, None).unwrap();
            for op in ops_sample() {
                j.append(&op).unwrap();
            }
        }
        // Simulate a crash mid-write: chop off the last 3 bytes.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let replayed = replay(&path).unwrap();
        assert!(replayed.truncated);
        assert_eq!(replayed.ops, ops_sample()[..4].to_vec());
        assert!(replayed.valid_len < full.len() as u64 - 3);
        // Re-opening with the valid length truncates; further appends
        // produce a clean journal again.
        {
            let mut j = Journal::open(&path, Some(replayed.valid_len)).unwrap();
            j.append(&ops_sample()[4]).unwrap();
        }
        let again = replay(&path).unwrap();
        assert!(!again.truncated);
        assert_eq!(again.ops, ops_sample());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rewrite_compacts_atomically() {
        let path = std::env::temp_dir().join(format!("ada_kdb_j3_{}", std::process::id()));
        std::fs::remove_file(&path).ok();
        let mut j = Journal::open(&path, None).unwrap();
        for op in ops_sample() {
            j.append(&op).unwrap();
        }
        let compacted = vec![Op::CreateCollection {
            name: "items".into(),
        }];
        j.rewrite(&compacted).unwrap();
        // Appends after rewrite land after the compacted content.
        j.append(&ops_sample()[2]).unwrap();
        drop(j);
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.ops.len(), 2);
        assert_eq!(replayed.ops[0], compacted[0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ops_with_newlines_in_strings_survive() {
        let op = Op::Insert {
            name: "items".into(),
            id: 7,
            doc: Document::new().with("note", "line one\nline two\nC fake op"),
        };
        let mut buf = String::new();
        op.encode_into(&mut buf);
        let mut pos = 0;
        assert_eq!(Op::decode_prefix(buf.as_bytes(), &mut pos).unwrap(), op);
    }
}
