//! Append-only journal persistence with crash recovery.
//!
//! Every mutation of a persistent [`crate::Kdb`] is appended as one
//! operation record. Two on-disk formats coexist:
//!
//! * **v1** (legacy, unframed): the raw self-delimiting op encoding,
//!   back to back. The only detectable failure is a torn final record.
//! * **v2** (framed): the file starts with [`V2_MAGIC`] and each record
//!   is a frame `R<len>:<seq>:<crc32-hex>:<payload>` — a payload byte
//!   length, a monotonic record sequence number (= record index), and a
//!   CRC32 of the payload. Replay distinguishes a *torn tail* (the
//!   bytes simply end mid-frame — truncated away, as a crash mid-write
//!   would leave) from *mid-file corruption* (a complete frame whose
//!   CRC, sequence, or payload is wrong — reported with byte offset and
//!   record index, or salvaged under [`RecoveryMode::Salvage`]).
//!
//! v1 journals stay readable and are upgraded to v2 by the next
//! snapshot compaction ([`Journal::rewrite`] always writes v2). All I/O
//! flows through the [`crate::storage::Storage`] traits so disk faults
//! are injectable in tests; a [`DurabilityPolicy`] decides when appends
//! are fsynced.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::collection::DocId;
use crate::document::{Document, Value};
use crate::error::KdbError;
use crate::storage::{FileStorage, Storage, StorageFile};

/// Magic bytes opening a v2 framed journal. `A` is not a valid v1 op
/// tag, so the formats cannot be confused.
pub const V2_MAGIC: &[u8] = b"ADAJ2\n";

/// The on-disk format of a journal file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalVersion {
    /// Unframed op stream (legacy).
    V1,
    /// Framed records with length, sequence number and CRC32.
    V2,
}

/// How replay reacts to mid-file corruption of a v2 journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryMode {
    /// Fail the open with [`KdbError::Corrupt`] (byte offset + record
    /// index). The default: corruption should be loud.
    #[default]
    Strict,
    /// Keep the valid prefix, report the corruption in
    /// [`Replay::corruption`], and let the store quarantine the rest.
    Salvage,
}

/// When appended ops are fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurabilityPolicy {
    /// Fsync after every append: each acknowledged op survives power
    /// loss, at one fsync per mutation.
    Always,
    /// Group commit: fsync when `max_ops` appends have accumulated or
    /// `max_delay` has elapsed since the last sync, whichever first.
    Batch {
        /// Appends between fsyncs.
        max_ops: usize,
        /// Wall-clock bound between fsyncs.
        max_delay: Duration,
    },
    /// Never fsync on append (the OS flushes opportunistically); only
    /// snapshot compaction and explicit [`Journal::sync`] calls are
    /// durable. This is the legacy behavior and the default.
    #[default]
    SnapshotOnly,
}

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, the zlib/PNG polynomial).
// ---------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC32 (IEEE) of `bytes` — the v2 frame checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One journaled mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Create a collection.
    CreateCollection {
        /// Collection name.
        name: String,
    },
    /// Create an index on a collection path.
    CreateIndex {
        /// Collection name.
        name: String,
        /// Indexed dotted path.
        path: String,
    },
    /// Insert a document under a known id.
    Insert {
        /// Collection name.
        name: String,
        /// Assigned document id.
        id: DocId,
        /// The inserted document.
        doc: Document,
    },
    /// Replace a document.
    Update {
        /// Collection name.
        name: String,
        /// Target document id.
        id: DocId,
        /// The replacement document.
        doc: Document,
    },
    /// Delete a document.
    Delete {
        /// Collection name.
        name: String,
        /// Target document id.
        id: DocId,
    },
}

impl Op {
    /// Appends the encoded op to `out`.
    pub fn encode_into(&self, out: &mut String) {
        let push_str = |out: &mut String, s: &str| Value::Str(s.to_owned()).encode_into(out);
        let push_id = |out: &mut String, id: DocId| Value::I64(id as i64).encode_into(out);
        match self {
            Op::CreateCollection { name } => {
                out.push('C');
                push_str(out, name);
            }
            Op::CreateIndex { name, path } => {
                out.push('X');
                push_str(out, name);
                push_str(out, path);
            }
            Op::Insert { name, id, doc } => {
                out.push('I');
                push_str(out, name);
                push_id(out, *id);
                Value::Doc(doc.clone()).encode_into(out);
            }
            Op::Update { name, id, doc } => {
                out.push('U');
                push_str(out, name);
                push_id(out, *id);
                Value::Doc(doc.clone()).encode_into(out);
            }
            Op::Delete { name, id } => {
                out.push('D');
                push_str(out, name);
                push_id(out, *id);
            }
        }
    }

    /// Decodes one op starting at `*pos`, advancing past it.
    ///
    /// # Errors
    /// Returns [`KdbError::Decode`] on malformed input.
    pub fn decode_prefix(bytes: &[u8], pos: &mut usize) -> Result<Op, KdbError> {
        let take_str = |pos: &mut usize| -> Result<String, KdbError> {
            match Value::decode_prefix(bytes, pos)? {
                Value::Str(s) => Ok(s),
                other => Err(KdbError::Decode(
                    *pos,
                    format!("expected string, found {}", other.type_name()),
                )),
            }
        };
        let take_id = |pos: &mut usize| -> Result<DocId, KdbError> {
            match Value::decode_prefix(bytes, pos)? {
                Value::I64(v) if v >= 0 => Ok(v as DocId),
                other => Err(KdbError::Decode(*pos, format!("bad id {other:?}"))),
            }
        };
        let take_doc = |pos: &mut usize| -> Result<Document, KdbError> {
            match Value::decode_prefix(bytes, pos)? {
                Value::Doc(d) => Ok(d),
                other => Err(KdbError::Decode(
                    *pos,
                    format!("expected document, found {}", other.type_name()),
                )),
            }
        };
        let tag = *bytes
            .get(*pos)
            .ok_or_else(|| KdbError::Decode(*pos, "end of journal".into()))?;
        *pos += 1;
        match tag {
            b'C' => Ok(Op::CreateCollection {
                name: take_str(pos)?,
            }),
            b'X' => Ok(Op::CreateIndex {
                name: take_str(pos)?,
                path: take_str(pos)?,
            }),
            b'I' => Ok(Op::Insert {
                name: take_str(pos)?,
                id: take_id(pos)?,
                doc: take_doc(pos)?,
            }),
            b'U' => Ok(Op::Update {
                name: take_str(pos)?,
                id: take_id(pos)?,
                doc: take_doc(pos)?,
            }),
            b'D' => Ok(Op::Delete {
                name: take_str(pos)?,
                id: take_id(pos)?,
            }),
            other => Err(KdbError::Decode(
                *pos - 1,
                format!("unknown op tag {:?}", other as char),
            )),
        }
    }
}

// ---------------------------------------------------------------------
// v2 frames.
// ---------------------------------------------------------------------

/// Appends the v2 frame for `payload` (an encoded op) to `out`.
fn encode_frame(payload: &[u8], seq: u64, out: &mut Vec<u8>) {
    out.push(b'R');
    out.extend_from_slice(payload.len().to_string().as_bytes());
    out.push(b':');
    out.extend_from_slice(seq.to_string().as_bytes());
    out.push(b':');
    out.extend_from_slice(format!("{:08x}", crc32(payload)).as_bytes());
    out.push(b':');
    out.extend_from_slice(payload);
}

/// Why a frame failed to decode: the input ended mid-frame (a torn
/// write — truncate), a complete-looking frame is wrong (corruption —
/// report), or an otherwise-valid frame carries the wrong sequence
/// number (a gap — report, kept distinct so a replication stream can
/// tell a dropped frame from a flipped bit).
enum FrameFail {
    Torn,
    Corrupt(String),
    Gap { stored: u64, expected: u64 },
}

/// Reads decimal digits up to a `:` separator. EOF while scanning is a
/// torn write; anything else malformed is corruption.
fn take_frame_number(bytes: &[u8], pos: &mut usize, what: &str) -> Result<u64, FrameFail> {
    let start = *pos;
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if *pos >= bytes.len() {
        return Err(FrameFail::Torn);
    }
    if bytes[*pos] != b':' || *pos == start || *pos - start > 19 {
        return Err(FrameFail::Corrupt(format!("malformed {what} field")));
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    let n = text
        .parse::<u64>()
        .map_err(|_| FrameFail::Corrupt(format!("{what} out of range")))?;
    *pos += 1; // consume ':'
    Ok(n)
}

/// Decodes one v2 frame at `*pos`, checking length, sequence and CRC.
fn decode_frame(bytes: &[u8], pos: &mut usize, expect_seq: u64) -> Result<Op, FrameFail> {
    if bytes[*pos] != b'R' {
        return Err(FrameFail::Corrupt(format!(
            "bad frame tag {:?}",
            bytes[*pos] as char
        )));
    }
    *pos += 1;
    let len = take_frame_number(bytes, pos, "length")? as usize;
    let seq = take_frame_number(bytes, pos, "sequence")?;
    if *pos + 9 > bytes.len() {
        return Err(FrameFail::Torn);
    }
    let crc_text = std::str::from_utf8(&bytes[*pos..*pos + 8])
        .map_err(|_| FrameFail::Corrupt("non-UTF-8 checksum".into()))?;
    let stored_crc = u32::from_str_radix(crc_text, 16)
        .map_err(|_| FrameFail::Corrupt(format!("bad checksum {crc_text:?}")))?;
    if bytes[*pos + 8] != b':' {
        return Err(FrameFail::Corrupt("missing checksum separator".into()));
    }
    *pos += 9;
    let Some(end) = pos.checked_add(len).filter(|&e| e <= bytes.len()) else {
        return Err(FrameFail::Torn);
    };
    let payload = &bytes[*pos..end];
    let computed = crc32(payload);
    if computed != stored_crc {
        return Err(FrameFail::Corrupt(format!(
            "crc mismatch (stored {stored_crc:08x}, computed {computed:08x})"
        )));
    }
    if seq != expect_seq {
        return Err(FrameFail::Gap {
            stored: seq,
            expected: expect_seq,
        });
    }
    let mut inner = 0usize;
    let op = Op::decode_prefix(payload, &mut inner)
        .map_err(|e| FrameFail::Corrupt(format!("payload invalid despite crc: {e}")))?;
    if inner != payload.len() {
        return Err(FrameFail::Corrupt("payload has trailing bytes".into()));
    }
    *pos = end;
    Ok(op)
}

/// A mid-file corruption localized by v2 replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptionReport {
    /// Byte offset of the corrupt record's frame start.
    pub offset: u64,
    /// Zero-based index of the corrupt record.
    pub record: usize,
    /// What was wrong (crc mismatch, sequence gap, …).
    pub reason: String,
}

/// The result of replaying a journal file.
#[derive(Debug)]
pub struct Replay {
    /// Successfully decoded operations, in order.
    pub ops: Vec<Op>,
    /// Byte offset of the first undecodable record (= file length when
    /// the journal is clean). Everything past it is torn or quarantined.
    pub valid_len: u64,
    /// Whether anything past `valid_len` must be truncated away.
    pub truncated: bool,
    /// The format the file was found in.
    pub version: JournalVersion,
    /// Mid-file corruption salvaged under [`RecoveryMode::Salvage`]
    /// (`None` on clean or merely torn journals).
    pub corruption: Option<CorruptionReport>,
}

/// Decodes journal `bytes` (either format), tolerating a torn final
/// record; see [`RecoveryMode`] for corruption handling.
///
/// # Errors
/// Returns [`KdbError::Corrupt`] under [`RecoveryMode::Strict`] when a
/// v2 journal is corrupt mid-file.
pub fn replay_bytes(bytes: &[u8], mode: RecoveryMode) -> Result<Replay, KdbError> {
    if bytes.starts_with(V2_MAGIC) {
        return replay_v2(bytes, mode);
    }
    // v1: unframed op stream; any decode failure is treated as a torn
    // tail (v1 cannot localize corruption — that is why v2 exists).
    let mut ops = Vec::new();
    let mut pos = 0usize;
    loop {
        if pos >= bytes.len() {
            return Ok(Replay {
                ops,
                valid_len: pos as u64,
                truncated: false,
                version: JournalVersion::V1,
                corruption: None,
            });
        }
        let mark = pos;
        match Op::decode_prefix(bytes, &mut pos) {
            Ok(op) => ops.push(op),
            Err(_) => {
                return Ok(Replay {
                    ops,
                    valid_len: mark as u64,
                    truncated: true,
                    version: JournalVersion::V1,
                    corruption: None,
                });
            }
        }
    }
}

fn replay_v2(bytes: &[u8], mode: RecoveryMode) -> Result<Replay, KdbError> {
    let mut ops = Vec::new();
    let mut pos = V2_MAGIC.len();
    loop {
        if pos >= bytes.len() {
            return Ok(Replay {
                ops,
                valid_len: pos as u64,
                truncated: false,
                version: JournalVersion::V2,
                corruption: None,
            });
        }
        let mark = pos;
        match decode_frame(bytes, &mut pos, ops.len() as u64) {
            Ok(op) => ops.push(op),
            Err(FrameFail::Torn) => {
                return Ok(Replay {
                    valid_len: mark as u64,
                    truncated: true,
                    version: JournalVersion::V2,
                    corruption: None,
                    ops,
                });
            }
            Err(fail) => {
                let reason = match fail {
                    FrameFail::Corrupt(reason) => reason,
                    FrameFail::Gap { stored, expected } => {
                        format!("sequence gap (stored {stored}, expected {expected})")
                    }
                    FrameFail::Torn => unreachable!("handled above"),
                };
                let record = ops.len();
                return match mode {
                    RecoveryMode::Strict => Err(KdbError::Corrupt {
                        offset: mark as u64,
                        record,
                        reason,
                    }),
                    RecoveryMode::Salvage => Ok(Replay {
                        valid_len: mark as u64,
                        truncated: true,
                        version: JournalVersion::V2,
                        corruption: Some(CorruptionReport {
                            offset: mark as u64,
                            record,
                            reason,
                        }),
                        ops,
                    }),
                };
            }
        }
    }
}

/// The outcome of decoding one v2 frame from an incremental byte
/// stream — the journal's frame discipline exposed for consumers that
/// receive frames a chunk at a time (journal replication ships the
/// framed bytes verbatim; see `ada-fleet`).
#[derive(Debug, Clone, PartialEq)]
pub enum FrameStep {
    /// A verified frame: the decoded op and the stream position just
    /// past it.
    Op {
        /// The frame's operation.
        op: Op,
        /// Byte position immediately after the frame.
        end: usize,
    },
    /// The bytes end mid-frame — feed more input and retry from the
    /// same position.
    NeedMore,
    /// A structurally valid frame carrying the wrong sequence number:
    /// a dropped or reordered record, never applicable.
    Gap {
        /// The sequence number the frame carries.
        stored: u64,
        /// The sequence number the stream expected.
        expected: u64,
    },
    /// A complete-looking frame that fails its length, CRC, or payload
    /// checks.
    Corrupt {
        /// What was wrong.
        reason: String,
    },
}

/// Decodes the v2 frame starting at `pos` in `bytes`, expecting
/// sequence number `expect_seq`. Exactly the verification journal
/// replay performs — length, sequence, CRC32, payload decode, no
/// trailing bytes — but incremental: a torn tail is [`FrameStep::NeedMore`]
/// rather than an error, so callers can buffer partial network reads.
pub fn decode_stream_frame(bytes: &[u8], pos: usize, expect_seq: u64) -> FrameStep {
    if pos >= bytes.len() {
        return FrameStep::NeedMore;
    }
    let mut cursor = pos;
    match decode_frame(bytes, &mut cursor, expect_seq) {
        Ok(op) => FrameStep::Op { op, end: cursor },
        Err(FrameFail::Torn) => FrameStep::NeedMore,
        Err(FrameFail::Gap { stored, expected }) => FrameStep::Gap { stored, expected },
        Err(FrameFail::Corrupt(reason)) => FrameStep::Corrupt { reason },
    }
}

/// Observer of journal appends, fsyncs, and compactions — the seam
/// journal replication hangs off ([`crate::SharedKdb::set_journal_tap`]).
///
/// Callbacks run while the journal lock is held, on the appending
/// thread: implementations must only enqueue (copy bytes, bump
/// atomics) and never block or call back into the store.
pub trait JournalTap: Send + Sync + std::fmt::Debug {
    /// A v2 frame was written and flushed (not necessarily fsynced):
    /// `seq` is its sequence number, `frame` the exact on-disk bytes.
    fn frame_appended(&self, seq: u64, frame: &[u8]);

    /// A successful fsync covered every frame with sequence number
    /// below `durable_seq` (the absolute sequence-space watermark, not
    /// the since-open count — replication consumers and journal frames
    /// then share one op-numbering).
    fn synced(&self, durable_seq: u64);

    /// Snapshot compaction replaced the file wholesale: the stream
    /// restarts at sequence 0 with `ops` records. Consumers must
    /// re-bootstrap from the new image.
    fn rewritten(&self, ops: u64);
}

/// Reads and decodes a journal file from the real filesystem under
/// [`RecoveryMode::Strict`].
///
/// # Errors
/// Returns [`KdbError::Io`] on filesystem failures or
/// [`KdbError::Corrupt`] on mid-file corruption.
pub fn replay(path: &Path) -> Result<Replay, KdbError> {
    replay_with(&FileStorage, path, RecoveryMode::Strict)
}

/// [`replay`] through an arbitrary [`Storage`] backend.
///
/// # Errors
/// Returns [`KdbError::Io`] on storage failures or
/// [`KdbError::Corrupt`] on mid-file corruption in strict mode.
pub fn replay_with(
    storage: &dyn Storage,
    path: &Path,
    mode: RecoveryMode,
) -> Result<Replay, KdbError> {
    replay_bytes(&storage.read(path)?, mode)
}

/// An open journal writer.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    storage: Arc<dyn Storage>,
    file: Box<dyn StorageFile>,
    version: JournalVersion,
    next_seq: u64,
    durability: DurabilityPolicy,
    /// Ops appended (acknowledged) since open.
    appended: u64,
    /// Ops known fsynced since open.
    synced: u64,
    /// Appends since the last successful fsync.
    pending: usize,
    last_sync: Instant,
    /// Swallowed fsync failures (the append itself was acknowledged
    /// non-durable; see [`Journal::append`]).
    sync_faults: u64,
    /// Set after a failed write: the file may hold a torn frame, so
    /// appending more would bury valid records behind garbage. All
    /// further appends fail fast until the journal is reopened (which
    /// truncates the torn tail).
    poisoned: Option<String>,
    /// Optional replication tap, invoked on appended frames, fsyncs,
    /// and rewrites. See [`JournalTap`].
    tap: Option<Arc<dyn JournalTap>>,
}

impl Journal {
    /// Opens (creating if needed) the journal for appending on the real
    /// filesystem with the default durability policy. When a torn tail
    /// was detected the file is first truncated to its valid prefix and
    /// fsynced.
    ///
    /// # Errors
    /// Returns [`KdbError::Io`] on filesystem failures.
    pub fn open(path: &Path, valid_len: Option<u64>) -> Result<Self, KdbError> {
        Self::open_with(
            Arc::new(FileStorage),
            path,
            valid_len,
            DurabilityPolicy::default(),
        )
    }

    /// [`Journal::open`] through an arbitrary backend and durability
    /// policy. New (or empty) journals are created v2; existing files
    /// keep their format so a v1 journal is never rewritten in place —
    /// the upgrade happens at the next [`Journal::rewrite`].
    ///
    /// # Errors
    /// Returns [`KdbError::Io`] on storage failures.
    pub fn open_with(
        storage: Arc<dyn Storage>,
        path: &Path,
        valid_len: Option<u64>,
        durability: DurabilityPolicy,
    ) -> Result<Self, KdbError> {
        // Determine the format and next sequence number from the valid
        // prefix (salvage-mode scan: the prefix below `valid_len` is
        // already known clean, so this cannot error).
        let (version, next_seq) = if storage.exists(path) {
            let mut bytes = storage.read(path)?;
            if let Some(len) = valid_len {
                bytes.truncate(usize::try_from(len).unwrap_or(usize::MAX));
            }
            if bytes.is_empty() {
                (JournalVersion::V2, 0)
            } else {
                let replayed = replay_bytes(&bytes, RecoveryMode::Salvage)?;
                (replayed.version, replayed.ops.len() as u64)
            }
        } else {
            (JournalVersion::V2, 0)
        };
        let mut file = storage.open_append(path, valid_len)?;
        if valid_len.is_some() {
            // A torn tail was truncated away: make the truncation
            // itself durable before acknowledging new appends.
            file.sync()?;
        }
        let mut journal = Self {
            path: path.to_path_buf(),
            storage,
            file,
            version,
            next_seq,
            durability,
            appended: 0,
            synced: 0,
            pending: 0,
            last_sync: Instant::now(),
            sync_faults: 0,
            poisoned: None,
            tap: None,
        };
        if journal.version == JournalVersion::V2 && journal.next_seq == 0 {
            // New or emptied file: stamp the magic (idempotent — a
            // truncate-to-zero recovery lands here too).
            journal.file.append(V2_MAGIC)?;
            journal.file.flush()?;
        }
        Ok(journal)
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The on-disk format this journal is appending in.
    pub fn version(&self) -> JournalVersion {
        self.version
    }

    /// The active durability policy.
    pub fn durability(&self) -> DurabilityPolicy {
        self.durability
    }

    /// Replaces the durability policy for subsequent appends.
    pub fn set_durability(&mut self, durability: DurabilityPolicy) {
        self.durability = durability;
    }

    /// Ops appended (acknowledged) since this journal was opened.
    pub fn acked_ops(&self) -> u64 {
        self.appended
    }

    /// Ops known durable (covered by a successful fsync) since open.
    pub fn durable_ops(&self) -> u64 {
        self.synced
    }

    /// Fsync failures swallowed by [`Journal::append`] so far.
    pub fn sync_faults(&self) -> u64 {
        self.sync_faults
    }

    /// Why this journal refuses appends, if a failed write poisoned it.
    pub fn poisoned(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    /// Installs (or removes) the [`JournalTap`] observing this journal.
    /// Only v2 appends are tapped — a legacy v1 file has no frames to
    /// ship; it gains them at its next [`Journal::rewrite`].
    pub fn set_tap(&mut self, tap: Option<Arc<dyn JournalTap>>) {
        self.tap = tap;
    }

    /// The journal file's current on-disk bytes (magic + frame stream).
    /// Every acknowledged append is visible: appends flush before they
    /// are acknowledged.
    ///
    /// # Errors
    /// Returns [`KdbError::Io`] when the backing file is unreadable.
    pub fn image(&self) -> Result<Vec<u8>, KdbError> {
        self.storage.read(&self.path)
    }

    /// Appends one op, flushes it to the OS, and fsyncs according to
    /// the durability policy. Returns whether the op is known durable.
    ///
    /// A failed *write* leaves the journal without the record (any torn
    /// prefix is truncated at the next open) and returns the error. A
    /// failed *fsync* after a successful write does **not** error — the
    /// record exists, only its durability is unacknowledged — it is
    /// counted in [`Journal::sync_faults`] and the op reported
    /// non-durable, so the caller's in-memory state never diverges from
    /// the journal.
    ///
    /// # Errors
    /// Returns [`KdbError::Io`] on write failures.
    pub fn append(&mut self, op: &Op) -> Result<bool, KdbError> {
        if let Some(reason) = &self.poisoned {
            return Err(KdbError::Io(format!("journal poisoned: {reason}")));
        }
        let mut payload = String::new();
        op.encode_into(&mut payload);
        let mut framed = None;
        let wrote = match self.version {
            JournalVersion::V1 => self.file.append(payload.as_bytes()),
            JournalVersion::V2 => {
                let mut frame = Vec::with_capacity(payload.len() + 40);
                encode_frame(payload.as_bytes(), self.next_seq, &mut frame);
                let res = self.file.append(&frame);
                framed = Some(frame);
                res
            }
        }
        .and_then(|()| self.file.flush());
        if let Err(e) = wrote {
            // The record may be partially on disk; refuse further
            // appends so replay-valid frames never follow a torn one.
            self.poisoned = Some(e.to_string());
            return Err(e);
        }
        if let (Some(tap), Some(frame)) = (&self.tap, &framed) {
            tap.frame_appended(self.next_seq, frame);
        }
        self.next_seq += 1;
        self.appended += 1;
        self.pending += 1;
        let want_sync = match self.durability {
            DurabilityPolicy::Always => true,
            DurabilityPolicy::Batch { max_ops, max_delay } => {
                self.pending >= max_ops.max(1) || self.last_sync.elapsed() >= max_delay
            }
            DurabilityPolicy::SnapshotOnly => false,
        };
        if want_sync {
            match self.sync() {
                Ok(()) => return Ok(true),
                Err(_) => {
                    self.sync_faults += 1;
                    return Ok(false);
                }
            }
        }
        Ok(false)
    }

    /// Forces an fsync, acknowledging every appended op as durable.
    ///
    /// # Errors
    /// Returns [`KdbError::Io`] when the flush or fsync fails.
    pub fn sync(&mut self) -> Result<(), KdbError> {
        self.file.sync()?;
        self.pending = 0;
        self.synced = self.appended;
        self.last_sync = Instant::now();
        if let Some(tap) = &self.tap {
            // Everything appended is now durable: the absolute durable
            // watermark is the next sequence number to be assigned.
            tap.synced(self.next_seq);
        }
        Ok(())
    }

    /// Atomically replaces the journal contents with the given op
    /// sequence (snapshot compaction): writes a v2 temp file, fsyncs
    /// it, renames over the original, and fsyncs the parent directory
    /// so the rename itself survives a crash. A v1 journal is upgraded
    /// to v2 here.
    ///
    /// # Errors
    /// Returns [`KdbError::Io`] on storage failures. A failed rewrite
    /// poisons the journal (the append handle may point at a replaced
    /// file); reopening recovers whichever image the rename left behind.
    pub fn rewrite(&mut self, ops: &[Op]) -> Result<(), KdbError> {
        self.do_rewrite(ops).inspect_err(|e| {
            self.poisoned = Some(format!("rewrite failed: {e}"));
        })
    }

    /// [`Journal::rewrite`] for a replication replica being rebuilt
    /// from a shipped image: atomically replaces the file with `ops`
    /// **and** restarts the acked/durable accounting at `ops.len()`.
    /// The rewritten image is fsynced before the rename, so every op it
    /// holds is durable — unlike `rewrite`, which keeps the historic
    /// since-open counters, this makes the counters equal the absolute
    /// sequence watermark a fresh follower's accounting assumes.
    ///
    /// # Errors
    /// As [`Journal::rewrite`].
    pub fn reset_to(&mut self, ops: &[Op]) -> Result<(), KdbError> {
        self.rewrite(ops)?;
        self.appended = ops.len() as u64;
        self.synced = self.appended;
        Ok(())
    }

    fn do_rewrite(&mut self, ops: &[Op]) -> Result<(), KdbError> {
        let tmp = self.path.with_extension("tmp");
        {
            let mut w = self.storage.create(&tmp)?;
            let mut frame = Vec::with_capacity(4096);
            frame.extend_from_slice(V2_MAGIC);
            let mut payload = String::new();
            for (seq, op) in ops.iter().enumerate() {
                payload.clear();
                op.encode_into(&mut payload);
                encode_frame(payload.as_bytes(), seq as u64, &mut frame);
                if frame.len() >= 1 << 16 {
                    w.append(&frame)?;
                    frame.clear();
                }
            }
            w.append(&frame)?;
            w.sync()?;
        }
        self.storage.rename(&tmp, &self.path)?;
        self.storage.sync_dir(&self.path)?;
        self.file = self.storage.open_append(&self.path, None)?;
        self.version = JournalVersion::V2;
        self.next_seq = ops.len() as u64;
        self.pending = 0;
        self.last_sync = Instant::now();
        // A compaction replaces the file wholesale, so any torn tail
        // that poisoned the old image is gone.
        self.poisoned = None;
        if let Some(tap) = &self.tap {
            tap.rewritten(ops.len() as u64);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn ops_sample() -> Vec<Op> {
        vec![
            Op::CreateCollection {
                name: "items".into(),
            },
            Op::CreateIndex {
                name: "items".into(),
                path: "kind".into(),
            },
            Op::Insert {
                name: "items".into(),
                id: 1,
                doc: Document::new().with("kind", "cluster").with("s", 0.5f64),
            },
            Op::Update {
                name: "items".into(),
                id: 1,
                doc: Document::new().with("kind", "pattern"),
            },
            Op::Delete {
                name: "items".into(),
                id: 1,
            },
        ]
    }

    /// A v1-format journal image for compatibility tests.
    fn v1_image(ops: &[Op]) -> Vec<u8> {
        let mut buf = String::new();
        for op in ops {
            op.encode_into(&mut buf);
        }
        buf.into_bytes()
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn op_encode_decode_round_trip() {
        for op in ops_sample() {
            let mut buf = String::new();
            op.encode_into(&mut buf);
            let mut pos = 0usize;
            let back = Op::decode_prefix(buf.as_bytes(), &mut pos).unwrap();
            assert_eq!(back, op);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn journal_append_and_replay() {
        let path = std::env::temp_dir().join(format!("ada_kdb_j1_{}", std::process::id()));
        std::fs::remove_file(&path).ok();
        {
            let mut j = Journal::open(&path, None).unwrap();
            assert_eq!(j.version(), JournalVersion::V2);
            for op in ops_sample() {
                j.append(&op).unwrap();
            }
        }
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.ops, ops_sample());
        assert_eq!(replayed.version, JournalVersion::V2);
        assert!(!replayed.truncated);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_detected_and_valid_prefix_kept() {
        let path = std::env::temp_dir().join(format!("ada_kdb_j2_{}", std::process::id()));
        std::fs::remove_file(&path).ok();
        {
            let mut j = Journal::open(&path, None).unwrap();
            for op in ops_sample() {
                j.append(&op).unwrap();
            }
        }
        // Simulate a crash mid-write: chop off the last 3 bytes.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let replayed = replay(&path).unwrap();
        assert!(replayed.truncated);
        assert!(replayed.corruption.is_none(), "torn, not corrupt");
        assert_eq!(replayed.ops, ops_sample()[..4].to_vec());
        assert!(replayed.valid_len < full.len() as u64 - 3);
        // Re-opening with the valid length truncates; further appends
        // produce a clean journal again.
        {
            let mut j = Journal::open(&path, Some(replayed.valid_len)).unwrap();
            j.append(&ops_sample()[4]).unwrap();
        }
        let again = replay(&path).unwrap();
        assert!(!again.truncated);
        assert_eq!(again.ops, ops_sample());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_corruption_is_localized_not_truncated() {
        let mem = MemStorage::new();
        let path = Path::new("j");
        {
            let mut j = Journal::open_with(
                Arc::new(mem.clone()),
                path,
                None,
                DurabilityPolicy::default(),
            )
            .unwrap();
            for op in ops_sample() {
                j.append(&op).unwrap();
            }
        }
        let mut bytes = mem.bytes(path).unwrap();
        // Find the second frame and flip a payload byte inside it.
        let clean = replay_bytes(&bytes, RecoveryMode::Strict).unwrap();
        assert_eq!(clean.ops.len(), 5);
        let target = bytes.len() / 2;
        bytes[target] ^= 0x40;
        mem.install(path, bytes.clone());

        let strict = replay_with(&mem, path, RecoveryMode::Strict);
        let err = strict.expect_err("corruption must be loud in strict mode");
        let KdbError::Corrupt {
            offset,
            record,
            reason,
        } = &err
        else {
            panic!("expected Corrupt, got {err:?}");
        };
        assert!(*offset < bytes.len() as u64);
        assert!(*record < 5);
        assert!(!reason.is_empty());

        let salvage = replay_with(&mem, path, RecoveryMode::Salvage).unwrap();
        let report = salvage.corruption.expect("salvage reports the corruption");
        assert_eq!(report.offset, *offset);
        assert_eq!(report.record, *record);
        assert!(salvage.truncated);
        assert_eq!(salvage.ops.len(), *record, "valid prefix recovered");
        assert_eq!(salvage.ops[..], ops_sample()[..*record]);
    }

    #[test]
    fn v1_journals_replay_and_append_in_v1() {
        let mem = MemStorage::new();
        let path = Path::new("legacy");
        mem.install(path, v1_image(&ops_sample()[..3]));
        let replayed = replay_with(&mem, path, RecoveryMode::Strict).unwrap();
        assert_eq!(replayed.version, JournalVersion::V1);
        assert_eq!(replayed.ops, ops_sample()[..3].to_vec());
        // Appends continue unframed so the file stays single-format.
        {
            let mut j = Journal::open_with(
                Arc::new(mem.clone()),
                path,
                None,
                DurabilityPolicy::default(),
            )
            .unwrap();
            assert_eq!(j.version(), JournalVersion::V1);
            j.append(&ops_sample()[3]).unwrap();
        }
        let again = replay_with(&mem, path, RecoveryMode::Strict).unwrap();
        assert_eq!(again.version, JournalVersion::V1);
        assert_eq!(again.ops, ops_sample()[..4].to_vec());
        // Rewrite upgrades to v2.
        {
            let mut j = Journal::open_with(
                Arc::new(mem.clone()),
                path,
                None,
                DurabilityPolicy::default(),
            )
            .unwrap();
            j.rewrite(&ops_sample()).unwrap();
            assert_eq!(j.version(), JournalVersion::V2);
        }
        let upgraded = replay_with(&mem, path, RecoveryMode::Strict).unwrap();
        assert_eq!(upgraded.version, JournalVersion::V2);
        assert_eq!(upgraded.ops, ops_sample());
    }

    #[test]
    fn rewrite_compacts_atomically() {
        let path = std::env::temp_dir().join(format!("ada_kdb_j3_{}", std::process::id()));
        std::fs::remove_file(&path).ok();
        let mut j = Journal::open(&path, None).unwrap();
        for op in ops_sample() {
            j.append(&op).unwrap();
        }
        let compacted = vec![Op::CreateCollection {
            name: "items".into(),
        }];
        j.rewrite(&compacted).unwrap();
        // Appends after rewrite land after the compacted content.
        j.append(&ops_sample()[2]).unwrap();
        drop(j);
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.ops.len(), 2);
        assert_eq!(replayed.ops[0], compacted[0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn durability_policies_ack_when_promised() {
        let mem = Arc::new(MemStorage::new());
        let path = Path::new("d");
        let mut j = Journal::open_with(
            Arc::clone(&mem) as Arc<dyn Storage>,
            path,
            None,
            DurabilityPolicy::Always,
        )
        .unwrap();
        assert!(j.append(&ops_sample()[0]).unwrap(), "Always syncs per op");
        assert_eq!(j.durable_ops(), 1);

        j.set_durability(DurabilityPolicy::Batch {
            max_ops: 3,
            max_delay: Duration::from_secs(3600),
        });
        assert!(!j.append(&ops_sample()[1]).unwrap());
        assert!(!j.append(&ops_sample()[2]).unwrap());
        assert!(j.append(&ops_sample()[3]).unwrap(), "third op hits max_ops");
        assert_eq!(j.durable_ops(), 4);

        j.set_durability(DurabilityPolicy::SnapshotOnly);
        assert!(!j.append(&ops_sample()[4]).unwrap());
        assert_eq!(j.acked_ops(), 5);
        assert_eq!(j.durable_ops(), 4);
        j.sync().unwrap();
        assert_eq!(j.durable_ops(), 5);
    }

    #[test]
    fn swallowed_fsync_failures_are_counted_not_fatal() {
        use crate::storage::{FaultKind, FaultyStorage};
        let (storage, handle) = FaultyStorage::wrap(Arc::new(MemStorage::new()));
        let mut j =
            Journal::open_with(storage, Path::new("s"), None, DurabilityPolicy::Always).unwrap();
        handle.fail_persistently(FaultKind::SyncFail);
        let synced = j.append(&ops_sample()[0]).unwrap();
        assert!(!synced, "append acknowledged but not durable");
        assert_eq!(j.sync_faults(), 1);
        assert_eq!(j.acked_ops(), 1);
        assert_eq!(j.durable_ops(), 0);
        handle.clear();
        assert!(j.append(&ops_sample()[1]).unwrap());
        assert_eq!(j.durable_ops(), 2);
    }

    #[test]
    fn ops_with_newlines_in_strings_survive() {
        let op = Op::Insert {
            name: "items".into(),
            id: 7,
            doc: Document::new().with("note", "line one\nline two\nC fake op"),
        };
        let mut buf = String::new();
        op.encode_into(&mut buf);
        let mut pos = 0;
        assert_eq!(Op::decode_prefix(buf.as_bytes(), &mut pos).unwrap(), op);
    }
}
