//! # ada-kdb
//!
//! Embedded document store: the **K-DB** substrate of ADA-HEALTH.
//!
//! The paper "designed and implemented a preliminary version of the K-DB
//! on a cluster of MongoDBs", holding six collections: (1) the original
//! dataset, (2) the transformed dataset, (3) statistical descriptors,
//! (4–5) interesting/selected knowledge items from different mining
//! algorithms, and (6) user interaction feedbacks. MongoDB is used purely
//! as a document container, so this crate substitutes a from-scratch
//! embedded store that exercises the same operations:
//!
//! * [`document`] — a BSON-like dynamic [`Value`]/[`Document`] model with
//!   a length-prefixed canonical encoding (round-trip tested);
//! * [`query`] — a composable filter AST (`Eq`/`Gt`/`In`/`And`/`Or`/…)
//!   evaluated against documents, with dotted-path field access;
//! * [`collection`] + [`index`] — insert/get/update/delete, filtered
//!   scans, and secondary ordered indexes that accelerate equality and
//!   range filters;
//! * [`store`] — a named-collection database with append-only
//!   [`journal`] persistence, snapshot compaction and crash recovery;
//! * [`sharded`] — the concurrent face of the store: [`SharedKdb`]
//!   shards the write path per collection and group-commits the
//!   journal so independent sessions fsync together;
//! * [`schema`] — the six ADA-HEALTH collections with typed helpers.
//!
//! Thread safety: wrap a [`Kdb`] in [`SharedKdb::new`] when sharing
//! across the optimizer's worker threads. The facade takes no global
//! lock: writers lock only the shard (collection) they touch, durability
//! is settled by a shared group committer (one fsync covers every
//! concurrently acked op), and [`SharedKdb::read`] hands back an
//! immutable [`KdbSnapshot`] — epoch-cached `Arc` images that never
//! block behind a committing writer. Exclusive single-threaded use can
//! keep working with a plain [`Kdb`]; code generic over both goes
//! through the [`KdbRead`]/[`KdbWrite`] traits.

#![warn(missing_docs)]

pub mod collection;
pub mod document;
pub mod find;
pub mod index;
pub mod journal;
pub mod query;
pub mod schema;
pub mod sharded;
pub mod storage;
pub mod store;

mod error;

pub use collection::{Collection, DocId};
pub use document::{Document, Value};
pub use error::KdbError;
pub use find::{count_by, find_with, FindOptions, Order};
pub use journal::{CorruptionReport, DurabilityPolicy, JournalTap, JournalVersion, RecoveryMode};
pub use query::Filter;
pub use sharded::{
    CommitObserver, CommitRole, GroupCommitSnapshot, KdbRead, KdbSnapshot, KdbWrite, KdbWriter,
    SharedKdb,
};
pub use storage::{FaultHandle, FaultKind, FaultyStorage, FileStorage, MemStorage, Storage};
pub use store::{fingerprint_ops, Kdb, StoreOptions};
