//! # ada-kdb
//!
//! Embedded document store: the **K-DB** substrate of ADA-HEALTH.
//!
//! The paper "designed and implemented a preliminary version of the K-DB
//! on a cluster of MongoDBs", holding six collections: (1) the original
//! dataset, (2) the transformed dataset, (3) statistical descriptors,
//! (4–5) interesting/selected knowledge items from different mining
//! algorithms, and (6) user interaction feedbacks. MongoDB is used purely
//! as a document container, so this crate substitutes a from-scratch
//! embedded store that exercises the same operations:
//!
//! * [`document`] — a BSON-like dynamic [`Value`]/[`Document`] model with
//!   a length-prefixed canonical encoding (round-trip tested);
//! * [`query`] — a composable filter AST (`Eq`/`Gt`/`In`/`And`/`Or`/…)
//!   evaluated against documents, with dotted-path field access;
//! * [`collection`] + [`index`] — insert/get/update/delete, filtered
//!   scans, and secondary ordered indexes that accelerate equality and
//!   range filters;
//! * [`store`] — a named-collection database with append-only
//!   [`journal`] persistence, snapshot compaction and crash recovery;
//! * [`schema`] — the six ADA-HEALTH collections with typed helpers.
//!
//! Thread safety: wrap a [`Kdb`] in [`SharedKdb`] (a
//! `parking_lot::RwLock`) when sharing across the optimizer's worker
//! threads.

#![warn(missing_docs)]

pub mod collection;
pub mod document;
pub mod find;
pub mod index;
pub mod journal;
pub mod query;
pub mod schema;
pub mod storage;
pub mod store;

mod error;

pub use collection::{Collection, DocId};
pub use document::{Document, Value};
pub use error::KdbError;
pub use find::{count_by, find_with, FindOptions, Order};
pub use journal::{CorruptionReport, DurabilityPolicy, JournalVersion, RecoveryMode};
pub use query::Filter;
pub use storage::{FaultHandle, FaultKind, FaultyStorage, FileStorage, MemStorage, Storage};
pub use store::{Kdb, StoreOptions};

/// A [`Kdb`] shareable across threads.
pub type SharedKdb = std::sync::Arc<parking_lot::RwLock<Kdb>>;
