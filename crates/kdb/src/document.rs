//! Dynamic document values and their canonical encoding.
//!
//! [`Value`] is a BSON-like dynamic type; [`Document`] an ordered
//! string-keyed map of values (ordered so encodings are canonical and
//! comparisons deterministic). The canonical encoding is a compact,
//! length-prefixed text format — `S5:hello`, `I42`, `A2:[…]` — chosen
//! over escaping-based formats so the journal reader never needs to
//! rescan bytes.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::KdbError;

/// A dynamic document value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Absent/unknown.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    I64(i64),
    /// 64-bit float.
    F64(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered list.
    Array(Vec<Value>),
    /// Nested document.
    Doc(Document),
}

impl Value {
    /// A short type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) => "i64",
            Value::F64(_) => "f64",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Doc(_) => "document",
        }
    }

    /// The integer value, if this is an `I64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as f64 (`I64` coerces).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The nested document, if this is a `Doc`.
    pub fn as_doc(&self) -> Option<&Document> {
        match self {
            Value::Doc(d) => Some(d),
            _ => None,
        }
    }

    /// Appends the canonical encoding of `self` to `out`.
    pub fn encode_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push('N'),
            Value::Bool(true) => out.push('T'),
            Value::Bool(false) => out.push('B'),
            Value::I64(v) => {
                out.push('I');
                out.push_str(&v.to_string());
                out.push(';');
            }
            Value::F64(v) => {
                out.push('F');
                // Rust's shortest-round-trip float formatting; NaN and
                // infinities parse back via f64::from_str.
                out.push_str(&v.to_string());
                out.push(';');
            }
            Value::Str(s) => {
                out.push('S');
                out.push_str(&s.len().to_string());
                out.push(':');
                out.push_str(s);
            }
            Value::Array(items) => {
                out.push('A');
                out.push_str(&items.len().to_string());
                out.push(':');
                for item in items {
                    item.encode_into(out);
                }
            }
            Value::Doc(doc) => {
                out.push('O');
                out.push_str(&doc.fields.len().to_string());
                out.push(':');
                for (k, v) in &doc.fields {
                    out.push_str(&k.len().to_string());
                    out.push(':');
                    out.push_str(k);
                    v.encode_into(out);
                }
            }
        }
    }

    /// The canonical encoding of `self`.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    /// Decodes a canonical encoding, requiring all input be consumed.
    ///
    /// # Errors
    /// Returns [`KdbError::Decode`] on malformed or trailing input.
    pub fn decode(input: &str) -> Result<Value, KdbError> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = decode_value(bytes, &mut pos)?;
        if pos != bytes.len() {
            return Err(KdbError::Decode(pos, "trailing bytes".into()));
        }
        Ok(value)
    }

    /// Decodes one value starting at byte offset `*pos`, advancing `*pos`
    /// past it. The encoding is self-delimiting, so this supports
    /// streaming readers (the journal).
    ///
    /// # Errors
    /// Returns [`KdbError::Decode`] on malformed input; `*pos` is left
    /// wherever the error was detected.
    pub fn decode_prefix(input: &[u8], pos: &mut usize) -> Result<Value, KdbError> {
        decode_value(input, pos)
    }
}

fn take_byte(bytes: &[u8], pos: &mut usize) -> Result<u8, KdbError> {
    let b = *bytes
        .get(*pos)
        .ok_or_else(|| KdbError::Decode(*pos, "unexpected end of input".into()))?;
    *pos += 1;
    Ok(b)
}

/// Reads ASCII digits up to (and consuming) the `stop` byte.
fn take_number(bytes: &[u8], pos: &mut usize, stop: u8) -> Result<usize, KdbError> {
    let start = *pos;
    while *pos < bytes.len() && bytes[*pos] != stop {
        *pos += 1;
    }
    if *pos >= bytes.len() {
        return Err(KdbError::Decode(start, "unterminated length".into()));
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| KdbError::Decode(start, "non-UTF-8 length".into()))?;
    let n: usize = text
        .parse()
        .map_err(|_| KdbError::Decode(start, format!("bad length {text:?}")))?;
    *pos += 1; // consume the stop byte
    Ok(n)
}

/// Reads a `<len>:<bytes>` string.
fn take_lstring(bytes: &[u8], pos: &mut usize) -> Result<String, KdbError> {
    let len = take_number(bytes, pos, b':')?;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| KdbError::Decode(*pos, "string length overruns input".into()))?;
    let s = std::str::from_utf8(&bytes[*pos..end])
        .map_err(|_| KdbError::Decode(*pos, "non-UTF-8 string".into()))?
        .to_owned();
    *pos = end;
    Ok(s)
}

fn decode_value(bytes: &[u8], pos: &mut usize) -> Result<Value, KdbError> {
    let tag = take_byte(bytes, pos)?;
    match tag {
        b'N' => Ok(Value::Null),
        b'T' => Ok(Value::Bool(true)),
        b'B' => Ok(Value::Bool(false)),
        b'I' => {
            let start = *pos;
            while *pos < bytes.len() && bytes[*pos] != b';' {
                *pos += 1;
            }
            if *pos >= bytes.len() {
                return Err(KdbError::Decode(start, "unterminated integer".into()));
            }
            let text = std::str::from_utf8(&bytes[start..*pos])
                .map_err(|_| KdbError::Decode(start, "non-UTF-8 integer".into()))?;
            *pos += 1;
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| KdbError::Decode(start, format!("bad integer {text:?}")))
        }
        b'F' => {
            let start = *pos;
            while *pos < bytes.len() && bytes[*pos] != b';' {
                *pos += 1;
            }
            if *pos >= bytes.len() {
                return Err(KdbError::Decode(start, "unterminated float".into()));
            }
            let text = std::str::from_utf8(&bytes[start..*pos])
                .map_err(|_| KdbError::Decode(start, "non-UTF-8 float".into()))?;
            *pos += 1;
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| KdbError::Decode(start, format!("bad float {text:?}")))
        }
        b'S' => Ok(Value::Str(take_lstring(bytes, pos)?)),
        b'A' => {
            let count = take_number(bytes, pos, b':')?;
            let mut items = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                items.push(decode_value(bytes, pos)?);
            }
            Ok(Value::Array(items))
        }
        b'O' => {
            let count = take_number(bytes, pos, b':')?;
            let mut doc = Document::new();
            for _ in 0..count {
                let key = take_lstring(bytes, pos)?;
                let value = decode_value(bytes, pos)?;
                doc.fields.insert(key, value);
            }
            Ok(Value::Doc(doc))
        }
        other => Err(KdbError::Decode(
            *pos - 1,
            format!("unknown tag {:?}", other as char),
        )),
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl From<Document> for Value {
    fn from(v: Document) -> Self {
        Value::Doc(v)
    }
}

/// An ordered string-keyed document.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Document {
    fields: BTreeMap<String, Value>,
}

impl Document {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a field (builder style).
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.set(key, value);
        self
    }

    /// Sets a field.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        self.fields.insert(key.into(), value.into());
    }

    /// The value at `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.get(key)
    }

    /// The value at a dotted path, e.g. `"patient.age"` descends into
    /// nested documents.
    pub fn get_path(&self, path: &str) -> Option<&Value> {
        let mut current = self;
        let mut parts = path.split('.').peekable();
        while let Some(part) = parts.next() {
            let value = current.fields.get(part)?;
            if parts.peek().is_none() {
                return Some(value);
            }
            current = value.as_doc()?;
        }
        None
    }

    /// Removes and returns a field.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.fields.remove(key)
    }

    /// Number of top-level fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the document has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterates over (key, value) pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The canonical encoding of this document.
    pub fn encode(&self) -> String {
        Value::Doc(self.clone()).encode()
    }

    /// Decodes a document from its canonical encoding.
    ///
    /// # Errors
    /// Returns [`KdbError::Decode`] when the input is malformed or does
    /// not encode a document.
    pub fn decode(input: &str) -> Result<Document, KdbError> {
        match Value::decode(input)? {
            Value::Doc(d) => Ok(d),
            other => Err(KdbError::Decode(
                0,
                format!("expected document, found {}", other.type_name()),
            )),
        }
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}: ")?;
            match v {
                Value::Null => write!(f, "null")?,
                Value::Bool(b) => write!(f, "{b}")?,
                Value::I64(n) => write!(f, "{n}")?,
                Value::F64(x) => write!(f, "{x}")?,
                Value::Str(s) => write!(f, "{s:?}")?,
                Value::Array(a) => write!(f, "[{} items]", a.len())?,
                Value::Doc(d) => write!(f, "{d}")?,
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> Document {
        Document::new()
            .with("name", "HbA1c: the \"gold\" standard")
            .with("count", 42i64)
            .with("score", 0.125f64)
            .with("active", true)
            .with("missing", Value::Null)
            .with("tags", vec!["a", "b"])
            .with(
                "nested",
                Document::new().with("depth", 2i64).with("leaf", false),
            )
    }

    #[test]
    fn builder_and_access() {
        let d = sample_doc();
        assert_eq!(d.get("count").unwrap().as_i64(), Some(42));
        assert_eq!(d.get("score").unwrap().as_f64(), Some(0.125));
        assert_eq!(d.get("active").unwrap().as_bool(), Some(true));
        assert_eq!(d.get("tags").unwrap().as_array().unwrap().len(), 2);
        assert!(d.get("nope").is_none());
        assert_eq!(d.len(), 7);
    }

    #[test]
    fn dotted_path_access() {
        let d = sample_doc();
        assert_eq!(d.get_path("nested.depth").unwrap().as_i64(), Some(2));
        assert_eq!(d.get_path("nested.leaf").unwrap().as_bool(), Some(false));
        assert_eq!(d.get_path("count").unwrap().as_i64(), Some(42));
        assert!(d.get_path("nested.none").is_none());
        assert!(d.get_path("count.sub").is_none()); // non-doc traversal
    }

    #[test]
    fn numeric_coercion() {
        assert_eq!(Value::I64(3).as_f64(), Some(3.0));
        assert_eq!(Value::F64(3.5).as_i64(), None);
        assert_eq!(Value::Str("3".into()).as_f64(), None);
    }

    #[test]
    fn encode_decode_round_trip() {
        let d = sample_doc();
        let encoded = d.encode();
        let back = Document::decode(&encoded).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn encoding_handles_tricky_strings() {
        for s in ["", "a:b;c", "42:", "héllo → wörld", "S5:inner", "\n\t"] {
            let v = Value::Str(s.to_owned());
            assert_eq!(Value::decode(&v.encode()).unwrap(), v, "string {s:?}");
        }
    }

    #[test]
    fn encoding_handles_extreme_numbers() {
        for v in [
            Value::I64(i64::MIN),
            Value::I64(i64::MAX),
            Value::I64(0),
            Value::F64(0.1 + 0.2),
            Value::F64(f64::MAX),
            Value::F64(f64::MIN_POSITIVE),
            Value::F64(-0.0),
            Value::F64(f64::INFINITY),
            Value::F64(f64::NEG_INFINITY),
        ] {
            assert_eq!(Value::decode(&v.encode()).unwrap(), v, "{v:?}");
        }
        // NaN round-trips structurally (NaN != NaN, so check the bit class).
        let nan = Value::F64(f64::NAN);
        match Value::decode(&nan.encode()).unwrap() {
            Value::F64(x) => assert!(x.is_nan()),
            other => panic!("expected F64, got {other:?}"),
        }
    }

    #[test]
    fn decode_rejects_malformed() {
        for bad in ["", "X", "I12", "S5:ab", "A2:I1;", "O1:3:abI1", "NI1;"] {
            assert!(Value::decode(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn decode_rejects_non_document_for_document() {
        assert!(Document::decode("I5;").is_err());
    }

    #[test]
    fn deeply_nested_round_trip() {
        let mut v = Value::I64(1);
        for _ in 0..50 {
            v = Value::Array(vec![v, Value::Null]);
        }
        assert_eq!(Value::decode(&v.encode()).unwrap(), v);
    }

    #[test]
    fn display_is_readable() {
        let d = Document::new().with("k", 1i64).with("s", "x");
        let text = d.to_string();
        assert!(text.contains("k: 1"));
        assert!(text.contains("s: \"x\""));
    }
}
