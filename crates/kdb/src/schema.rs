//! The six ADA-HEALTH collections and typed access helpers.
//!
//! The paper's data model "consists of six collections, which store (1)
//! the original dataset, (2) the transformed dataset after preprocessing
//! and data transformation, (3) statistical descriptors to model the
//! data distribution, (4-5) interesting and selected knowledge items
//! discovered through different data mining algorithms, and (6) user
//! interaction feedbacks", with knowledge items enriched by a physician
//! with a degree of interestingness in {high, medium, low}.

use serde::{Deserialize, Serialize};

use crate::collection::DocId;
use crate::document::{Document, Value};
use crate::error::KdbError;
use crate::store::Kdb;

/// Canonical collection names.
pub mod names {
    /// (1) The original dataset (record documents or dataset metadata).
    pub const RAW_DATA: &str = "raw_data";
    /// (2) The transformed dataset after preprocessing.
    pub const TRANSFORMED_DATA: &str = "transformed_data";
    /// (3) Statistical descriptors of the data distribution.
    pub const DESCRIPTORS: &str = "descriptors";
    /// (4) Knowledge items from clustering algorithms.
    pub const CLUSTER_KNOWLEDGE: &str = "cluster_knowledge";
    /// (5) Knowledge items from pattern-discovery algorithms.
    pub const PATTERN_KNOWLEDGE: &str = "pattern_knowledge";
    /// (6) User interaction feedbacks.
    pub const FEEDBACK: &str = "feedback";

    /// All six, in paper order.
    pub const ALL: [&str; 6] = [
        RAW_DATA,
        TRANSFORMED_DATA,
        DESCRIPTORS,
        CLUSTER_KNOWLEDGE,
        PATTERN_KNOWLEDGE,
        FEEDBACK,
    ];
}

/// The physician-assigned degree of interestingness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Interestingness {
    /// Low interest.
    Low,
    /// Medium interest.
    Medium,
    /// High interest.
    High,
}

impl Interestingness {
    /// Canonical string form.
    pub fn as_str(self) -> &'static str {
        match self {
            Interestingness::Low => "low",
            Interestingness::Medium => "medium",
            Interestingness::High => "high",
        }
    }

    /// Parses the canonical string form.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "low" => Some(Interestingness::Low),
            "medium" => Some(Interestingness::Medium),
            "high" => Some(Interestingness::High),
            _ => None,
        }
    }

    /// A numeric score in [0, 1] (low = 0, medium = 0.5, high = 1).
    pub fn score(self) -> f64 {
        match self {
            Interestingness::Low => 0.0,
            Interestingness::Medium => 0.5,
            Interestingness::High => 1.0,
        }
    }
}

impl std::fmt::Display for Interestingness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Creates the six collections (idempotent) and the indexes the engine
/// queries against (`session` everywhere; `score` on knowledge items).
///
/// # Errors
/// Returns journal I/O errors.
pub fn init_schema(db: &mut Kdb) -> Result<(), KdbError> {
    for name in names::ALL {
        db.ensure_collection(name)?;
    }
    for coll in [names::CLUSTER_KNOWLEDGE, names::PATTERN_KNOWLEDGE] {
        for path in ["session", "score"] {
            if !db.collection(coll).expect("just created").has_index(path) {
                db.create_index(coll, path)?;
            }
        }
    }
    for coll in [names::DESCRIPTORS, names::FEEDBACK] {
        if !db
            .collection(coll)
            .expect("just created")
            .has_index("session")
        {
            db.create_index(coll, "session")?;
        }
    }
    Ok(())
}

/// Inserts a clustering knowledge item.
///
/// # Errors
/// Returns store errors (missing collection / journal I/O).
pub fn insert_cluster_item(
    db: &mut Kdb,
    session: &str,
    k: usize,
    cluster: usize,
    size: usize,
    cohesion: f64,
    description: &str,
) -> Result<DocId, KdbError> {
    db.insert(
        names::CLUSTER_KNOWLEDGE,
        Document::new()
            .with("session", session)
            .with("kind", "cluster")
            .with("k", k as i64)
            .with("cluster", cluster as i64)
            .with("size", size as i64)
            .with("score", cohesion)
            .with("description", description),
    )
}

/// Inserts a pattern knowledge item (an association rule or itemset).
///
/// # Errors
/// Returns store errors (missing collection / journal I/O).
pub fn insert_pattern_item(
    db: &mut Kdb,
    session: &str,
    items: &[u32],
    support: f64,
    confidence: f64,
    lift: f64,
    description: &str,
) -> Result<DocId, KdbError> {
    db.insert(
        names::PATTERN_KNOWLEDGE,
        Document::new()
            .with("session", session)
            .with("kind", "pattern")
            .with(
                "items",
                Value::Array(items.iter().map(|&i| Value::I64(i as i64)).collect()),
            )
            .with("support", support)
            .with("confidence", confidence)
            .with("lift", lift)
            .with("score", confidence * lift.min(4.0) / 4.0)
            .with("description", description),
    )
}

/// Records physician feedback on a knowledge item.
///
/// # Errors
/// Returns store errors (missing collection / journal I/O).
pub fn insert_feedback(
    db: &mut Kdb,
    session: &str,
    item_collection: &str,
    item_id: DocId,
    interest: Interestingness,
) -> Result<DocId, KdbError> {
    db.insert(
        names::FEEDBACK,
        Document::new()
            .with("session", session)
            .with("item_collection", item_collection)
            .with("item_id", item_id as i64)
            .with("interest", interest.as_str()),
    )
}

/// Stores a statistical-descriptor document for a session.
///
/// # Errors
/// Returns store errors (missing collection / journal I/O).
pub fn insert_descriptors(
    db: &mut Kdb,
    session: &str,
    descriptors: Document,
) -> Result<DocId, KdbError> {
    db.insert(names::DESCRIPTORS, descriptors.with("session", session))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Filter;

    #[test]
    fn init_creates_all_six_collections() {
        let mut db = Kdb::in_memory();
        init_schema(&mut db).unwrap();
        for name in names::ALL {
            assert!(db.collection(name).is_some(), "missing {name}");
        }
        assert!(db
            .collection(names::CLUSTER_KNOWLEDGE)
            .unwrap()
            .has_index("score"));
        // Idempotent.
        init_schema(&mut db).unwrap();
    }

    #[test]
    fn knowledge_items_round_trip() {
        let mut db = Kdb::in_memory();
        init_schema(&mut db).unwrap();
        let cid = insert_cluster_item(&mut db, "s1", 8, 2, 512, 0.73, "cluster 2 of 8").unwrap();
        let pid = insert_pattern_item(&mut db, "s1", &[3, 17], 0.21, 0.88, 2.4, "HbA1c => glucose")
            .unwrap();
        insert_feedback(
            &mut db,
            "s1",
            names::CLUSTER_KNOWLEDGE,
            cid,
            Interestingness::High,
        )
        .unwrap();

        let clusters = db
            .find(names::CLUSTER_KNOWLEDGE, &Filter::eq("session", "s1"))
            .unwrap();
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].1.get("k").unwrap().as_i64(), Some(8));

        let patterns = db
            .find(names::PATTERN_KNOWLEDGE, &Filter::eq("session", "s1"))
            .unwrap();
        assert_eq!(
            patterns[0]
                .1
                .get("items")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            2
        );
        assert_eq!(patterns[0].0, pid);

        let feedback = db
            .find(names::FEEDBACK, &Filter::eq("session", "s1"))
            .unwrap();
        assert_eq!(
            feedback[0].1.get("interest").unwrap().as_str(),
            Some("high")
        );
    }

    #[test]
    fn interestingness_round_trip() {
        for i in [
            Interestingness::Low,
            Interestingness::Medium,
            Interestingness::High,
        ] {
            assert_eq!(Interestingness::parse(i.as_str()), Some(i));
        }
        assert_eq!(Interestingness::parse("nope"), None);
        assert!(Interestingness::High.score() > Interestingness::Medium.score());
        assert!(Interestingness::High > Interestingness::Low);
    }

    #[test]
    fn descriptors_tagged_with_session() {
        let mut db = Kdb::in_memory();
        init_schema(&mut db).unwrap();
        insert_descriptors(
            &mut db,
            "s2",
            Document::new()
                .with("sparsity", 0.91)
                .with("patients", 6380i64),
        )
        .unwrap();
        let found = db
            .find(names::DESCRIPTORS, &Filter::eq("session", "s2"))
            .unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].1.get("sparsity").unwrap().as_f64(), Some(0.91));
    }
}
