//! The six ADA-HEALTH collections and typed access helpers.
//!
//! The paper's data model "consists of six collections, which store (1)
//! the original dataset, (2) the transformed dataset after preprocessing
//! and data transformation, (3) statistical descriptors to model the
//! data distribution, (4-5) interesting and selected knowledge items
//! discovered through different data mining algorithms, and (6) user
//! interaction feedbacks", with knowledge items enriched by a physician
//! with a degree of interestingness in {high, medium, low}.

use serde::{Deserialize, Serialize};

use crate::collection::DocId;
use crate::document::{Document, Value};
use crate::error::KdbError;
use crate::sharded::KdbWrite;

/// Canonical collection names.
pub mod names {
    /// (1) The original dataset (record documents or dataset metadata).
    pub const RAW_DATA: &str = "raw_data";
    /// (2) The transformed dataset after preprocessing.
    pub const TRANSFORMED_DATA: &str = "transformed_data";
    /// (3) Statistical descriptors of the data distribution.
    pub const DESCRIPTORS: &str = "descriptors";
    /// (4) Knowledge items from clustering algorithms.
    pub const CLUSTER_KNOWLEDGE: &str = "cluster_knowledge";
    /// (5) Knowledge items from pattern-discovery algorithms.
    pub const PATTERN_KNOWLEDGE: &str = "pattern_knowledge";
    /// (6) User interaction feedbacks.
    pub const FEEDBACK: &str = "feedback";
    /// Operational: terminal analysis-session records — span tree,
    /// per-stage latency histograms, kernel counters — persisted by the
    /// flight recorder so a restarted service can answer questions
    /// about past runs. Not one of the paper's six data collections.
    pub const SESSIONS: &str = "sessions";
    /// Safety-signal knowledge items mined by `ada-signals`:
    /// disproportionality findings (2×2 contingency table, reporting
    /// odds ratio with CI, shrunken estimate, combined rank score).
    /// A seventh knowledge collection beyond the paper's six.
    pub const SIGNAL_KNOWLEDGE: &str = "signal_knowledge";
    /// Operational: persisted end-to-end request traces — one document
    /// per *sampled* terminal session, holding the full span tree
    /// (client submit → server decode → queue wait → pipeline stages →
    /// group-commit fsync rounds) in deterministic pre-order, keyed by
    /// a 128-bit wire-propagated trace id. Served remotely via the
    /// `TraceQuery` wire message.
    pub const TRACES: &str = "traces";
    /// Operational: durable streaming-ingestion checkpoints — one
    /// document per *closed* stream window, holding the window's folded
    /// records in canonical order plus the watermark, drift score and
    /// state fingerprints. A restarted ingester (or a promoted
    /// replication follower) replays this collection to rebuild its
    /// incremental VSM and model byte-identically, then resumes from
    /// the last durable watermark. Created lazily by
    /// [`init_stream_schema`](super::init_stream_schema), like
    /// [`TRACES`].
    pub const STREAM_WINDOWS: &str = "stream_windows";

    /// All six, in paper order.
    pub const ALL: [&str; 6] = [
        RAW_DATA,
        TRANSFORMED_DATA,
        DESCRIPTORS,
        CLUSTER_KNOWLEDGE,
        PATTERN_KNOWLEDGE,
        FEEDBACK,
    ];

    /// Every collection [`init_schema`](super::init_schema) manages:
    /// the paper's six plus the signal-knowledge and session-history
    /// operational collections. [`TRACES`] and [`STREAM_WINDOWS`] are
    /// deliberately absent — each is created lazily
    /// ([`init_trace_schema`](super::init_trace_schema),
    /// [`init_stream_schema`](super::init_stream_schema)) only when a
    /// writer is about to use it, so journals from services that never
    /// trace or never stream stay byte-identical to the older write
    /// paths.
    pub const ALL_WITH_OPS: [&str; 8] = [
        RAW_DATA,
        TRANSFORMED_DATA,
        DESCRIPTORS,
        CLUSTER_KNOWLEDGE,
        PATTERN_KNOWLEDGE,
        FEEDBACK,
        SIGNAL_KNOWLEDGE,
        SESSIONS,
    ];
}

/// The physician-assigned degree of interestingness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Interestingness {
    /// Low interest.
    Low,
    /// Medium interest.
    Medium,
    /// High interest.
    High,
}

impl Interestingness {
    /// Canonical string form.
    pub fn as_str(self) -> &'static str {
        match self {
            Interestingness::Low => "low",
            Interestingness::Medium => "medium",
            Interestingness::High => "high",
        }
    }

    /// Parses the canonical string form.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "low" => Some(Interestingness::Low),
            "medium" => Some(Interestingness::Medium),
            "high" => Some(Interestingness::High),
            _ => None,
        }
    }

    /// A numeric score in [0, 1] (low = 0, medium = 0.5, high = 1).
    pub fn score(self) -> f64 {
        match self {
            Interestingness::Low => 0.0,
            Interestingness::Medium => 0.5,
            Interestingness::High => 1.0,
        }
    }
}

impl std::fmt::Display for Interestingness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Creates the six collections (idempotent) and the indexes the engine
/// queries against (`session` everywhere; `score` on knowledge items).
/// Generic over [`KdbWrite`], so it serves both an exclusive
/// [`Kdb`](crate::store::Kdb) and the sharded
/// [`SharedKdb`](crate::sharded::SharedKdb) facade — where the
/// ensure-style helpers make concurrent initialization race-safe (a
/// racing creator winning counts as done).
///
/// # Errors
/// Returns journal I/O errors.
pub fn init_schema<W: KdbWrite + ?Sized>(db: &mut W) -> Result<(), KdbError> {
    for name in names::ALL_WITH_OPS {
        db.ensure_collection(name)?;
    }
    for coll in [
        names::CLUSTER_KNOWLEDGE,
        names::PATTERN_KNOWLEDGE,
        names::SIGNAL_KNOWLEDGE,
    ] {
        for path in ["session", "score"] {
            db.ensure_index(coll, path)?;
        }
    }
    for coll in [names::DESCRIPTORS, names::FEEDBACK] {
        db.ensure_index(coll, "session")?;
    }
    for path in ["session", "state"] {
        db.ensure_index(names::SESSIONS, path)?;
    }
    Ok(())
}

/// Creates the `traces` collection and its `session`/`trace_id`
/// indexes (idempotent). Kept out of [`init_schema`] on purpose: the
/// trace store must only come into existence when a sampled session is
/// about to write into it, so a service running with tracing disabled
/// produces a journal byte-identical to one that predates tracing.
///
/// # Errors
/// Returns journal I/O errors.
pub fn init_trace_schema<W: KdbWrite + ?Sized>(db: &mut W) -> Result<(), KdbError> {
    db.ensure_collection(names::TRACES)?;
    for path in ["session", "trace_id"] {
        db.ensure_index(names::TRACES, path)?;
    }
    Ok(())
}

/// Creates the `stream_windows` collection and its `stream`/`window`
/// indexes (idempotent). Kept out of [`init_schema`] for the same
/// reason as [`init_trace_schema`]: the checkpoint store must only come
/// into existence when a stream is about to close its first window, so
/// a service that never ingests a stream produces a journal
/// byte-identical to one that predates streaming.
///
/// # Errors
/// Returns journal I/O errors.
pub fn init_stream_schema<W: KdbWrite + ?Sized>(db: &mut W) -> Result<(), KdbError> {
    db.ensure_collection(names::STREAM_WINDOWS)?;
    for path in ["stream", "window"] {
        db.ensure_index(names::STREAM_WINDOWS, path)?;
    }
    Ok(())
}

/// The states a persisted session record may carry (terminal states of
/// the service lifecycle).
pub const SESSION_TERMINAL_STATES: [&str; 3] = ["completed", "failed", "cancelled"];

/// Validates a session record against the `sessions` collection schema.
///
/// Required shape (see DESIGN.md §9):
///
/// * `session` — non-empty string;
/// * `state` — one of [`SESSION_TERMINAL_STATES`];
/// * `spans` — array of span documents, each with a non-empty string
///   `name`, integer `parent` (−1 for the root, otherwise the index of
///   an *earlier* span in the array), and non-negative integers
///   `start_ns` / `dur_ns`;
/// * `stages` — array of per-stage histogram documents, each with a
///   string `stage` and non-negative integers `count`, `p50_ns`,
///   `p90_ns`, `p99_ns`;
/// * `counters` — nested document whose values are all non-negative
///   integers (the kernel counters).
///
/// # Errors
/// Returns [`KdbError::Schema`] naming the first violated rule.
pub fn validate_session_doc(doc: &Document) -> Result<(), KdbError> {
    let bad = |reason: String| Err(KdbError::Schema(reason));
    match doc.get("session").and_then(Value::as_str) {
        Some(s) if !s.is_empty() => {}
        _ => return bad("sessions: `session` must be a non-empty string".into()),
    }
    match doc.get("state").and_then(Value::as_str) {
        Some(s) if SESSION_TERMINAL_STATES.contains(&s) => {}
        other => {
            return bad(format!(
                "sessions: `state` must be one of {SESSION_TERMINAL_STATES:?}, got {other:?}"
            ))
        }
    }
    validate_span_array("sessions", doc)?;
    let Some(stages) = doc.get("stages").and_then(Value::as_array) else {
        return bad("sessions: `stages` must be an array".into());
    };
    for (i, stage) in stages.iter().enumerate() {
        let Some(stage) = stage.as_doc() else {
            return bad(format!("sessions: stages[{i}] must be a document"));
        };
        if stage.get("stage").and_then(Value::as_str).is_none() {
            return bad(format!("sessions: stages[{i}].stage must be a string"));
        }
        for key in ["count", "p50_ns", "p90_ns", "p99_ns"] {
            match stage.get(key).and_then(Value::as_i64) {
                Some(v) if v >= 0 => {}
                _ => {
                    return bad(format!(
                        "sessions: stages[{i}].{key} must be a non-negative integer"
                    ))
                }
            }
        }
    }
    let Some(counters) = doc.get("counters").and_then(Value::as_doc) else {
        return bad("sessions: `counters` must be a document".into());
    };
    for (key, value) in counters.iter() {
        match value.as_i64() {
            Some(v) if v >= 0 => {}
            _ => {
                return bad(format!(
                    "sessions: counters.{key} must be a non-negative integer"
                ))
            }
        }
    }
    Ok(())
}

/// Validates a `spans` array: pre-ordered span documents whose parents
/// always point at earlier indexes (−1 for the root), with non-negative
/// timings and, optionally, an `attrs` sub-document of non-negative
/// integer attributes (batch sizes, role flags, wait/fsync splits).
/// Shared by the `sessions` and `traces` validators; `coll` labels the
/// error messages.
fn validate_span_array(coll: &str, doc: &Document) -> Result<(), KdbError> {
    let bad = |reason: String| Err(KdbError::Schema(reason));
    let Some(spans) = doc.get("spans").and_then(Value::as_array) else {
        return bad(format!("{coll}: `spans` must be an array"));
    };
    for (i, span) in spans.iter().enumerate() {
        let Some(span) = span.as_doc() else {
            return bad(format!("{coll}: spans[{i}] must be a document"));
        };
        match span.get("name").and_then(Value::as_str) {
            Some(n) if !n.is_empty() => {}
            _ => return bad(format!("{coll}: spans[{i}].name must be non-empty")),
        }
        match span.get("parent").and_then(Value::as_i64) {
            Some(-1) => {}
            Some(p) if p >= 0 && (p as usize) < i => {}
            other => {
                return bad(format!(
                    "{coll}: spans[{i}].parent must be -1 or an earlier index, got {other:?}"
                ))
            }
        }
        for key in ["start_ns", "dur_ns"] {
            match span.get(key).and_then(Value::as_i64) {
                Some(v) if v >= 0 => {}
                _ => {
                    return bad(format!(
                        "{coll}: spans[{i}].{key} must be a non-negative integer"
                    ))
                }
            }
        }
        if let Some(attrs) = span.get("attrs") {
            let Some(attrs) = attrs.as_doc() else {
                return bad(format!("{coll}: spans[{i}].attrs must be a document"));
            };
            for (key, value) in attrs.iter() {
                match value.as_i64() {
                    Some(v) if v >= 0 => {}
                    _ => {
                        return bad(format!(
                            "{coll}: spans[{i}].attrs.{key} must be a non-negative integer"
                        ))
                    }
                }
            }
        }
    }
    Ok(())
}

/// Validates and inserts a terminal session record.
///
/// # Errors
/// Returns [`KdbError::Schema`] on a malformed record, otherwise store
/// errors (missing collection / journal I/O).
pub fn insert_session_record<W: KdbWrite + ?Sized>(
    db: &mut W,
    record: Document,
) -> Result<DocId, KdbError> {
    validate_session_doc(&record)?;
    db.insert(names::SESSIONS, record)
}

/// Validates a persisted request trace against the `traces` collection
/// schema.
///
/// Required shape (see DESIGN.md §14):
///
/// * `session` — non-empty string;
/// * `trace_id` — exactly 32 lowercase hex digits (the 128-bit
///   wire-propagated trace id);
/// * `state` — one of [`SESSION_TERMINAL_STATES`];
/// * `forced` — boolean: whether the slow-session log forced sampling
///   retroactively (vs. the seeded head decision);
/// * `spans` — the same pre-ordered span array the `sessions` schema
///   uses, with optional non-negative integer `attrs` per span;
/// * `events_dropped` — non-negative integer (0 certifies the span
///   tree is complete).
///
/// # Errors
/// Returns [`KdbError::Schema`] naming the first violated rule.
pub fn validate_trace_doc(doc: &Document) -> Result<(), KdbError> {
    let bad = |reason: String| Err(KdbError::Schema(reason));
    match doc.get("session").and_then(Value::as_str) {
        Some(s) if !s.is_empty() => {}
        _ => return bad("traces: `session` must be a non-empty string".into()),
    }
    match doc.get("trace_id").and_then(Value::as_str) {
        Some(id)
            if id.len() == 32
                && id
                    .bytes()
                    .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase()) => {}
        other => {
            return bad(format!(
                "traces: `trace_id` must be 32 lowercase hex digits, got {other:?}"
            ))
        }
    }
    match doc.get("state").and_then(Value::as_str) {
        Some(s) if SESSION_TERMINAL_STATES.contains(&s) => {}
        other => {
            return bad(format!(
                "traces: `state` must be one of {SESSION_TERMINAL_STATES:?}, got {other:?}"
            ))
        }
    }
    if doc.get("forced").and_then(Value::as_bool).is_none() {
        return bad("traces: `forced` must be a boolean".into());
    }
    validate_span_array("traces", doc)?;
    match doc.get("events_dropped").and_then(Value::as_i64) {
        Some(v) if v >= 0 => Ok(()),
        _ => bad("traces: `events_dropped` must be a non-negative integer".into()),
    }
}

/// Validates and inserts a terminal request trace.
///
/// # Errors
/// Returns [`KdbError::Schema`] on a malformed trace, otherwise store
/// errors (missing collection / journal I/O).
pub fn insert_trace_record<W: KdbWrite + ?Sized>(
    db: &mut W,
    record: Document,
) -> Result<DocId, KdbError> {
    validate_trace_doc(&record)?;
    db.insert(names::TRACES, record)
}

/// Checks a 16-lowercase-hex-digit fingerprint string.
fn is_fp16(s: &str) -> bool {
    s.len() == 16
        && s.bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
}

/// Validates a streaming checkpoint against the `stream_windows`
/// collection schema.
///
/// Required shape (see DESIGN.md §16):
/// * `stream` — non-empty string naming the stream;
/// * `window` — integer window id (`day.div_euclid(window_days)`);
/// * `start_day` / `end_day` — the window's day span, `start < end`;
/// * `watermark` — integer day bound; every record folded so far has
///   `day < watermark`, and `watermark >= end_day`;
/// * `records` — non-empty flat integer array of `(day, patient, exam,
///   count)` quads in canonical order, each with `start_day <= day <
///   end_day`, non-negative ids and `count >= 1`;
/// * `folded` / `refits` — cumulative non-negative counters *after*
///   this window;
/// * `refit` — whether this window escalated to a full re-fit;
/// * `drift` — the window's drift score (non-negative float);
/// * `rows` / `vocab` / `vocab_version` — incremental-VSM shape after
///   this window (non-negative integers);
/// * `vsm_fp` — 16 lowercase hex digits (FNV-1a of the VSM state);
/// * `model_fp` — 16 lowercase hex digits, or `""` while the stream
///   has not accumulated enough rows to fit a model.
///
/// # Errors
/// Returns [`KdbError::Schema`] naming the first violated rule.
pub fn validate_stream_window_doc(doc: &Document) -> Result<(), KdbError> {
    let bad = |reason: String| Err(KdbError::Schema(reason));
    match doc.get("stream").and_then(Value::as_str) {
        Some(s) if !s.is_empty() => {}
        _ => return bad("stream_windows: `stream` must be a non-empty string".into()),
    }
    if doc.get("window").and_then(Value::as_i64).is_none() {
        return bad("stream_windows: `window` must be an integer".into());
    }
    let (start, end) = match (
        doc.get("start_day").and_then(Value::as_i64),
        doc.get("end_day").and_then(Value::as_i64),
    ) {
        (Some(s), Some(e)) if s < e => (s, e),
        _ => {
            return bad(
                "stream_windows: `start_day`/`end_day` must be integers with start < end".into(),
            )
        }
    };
    match doc.get("watermark").and_then(Value::as_i64) {
        Some(w) if w >= end => {}
        _ => return bad("stream_windows: `watermark` must be an integer >= `end_day`".into()),
    }
    match doc.get("records").and_then(Value::as_array) {
        Some(vals) if !vals.is_empty() && vals.len() % 4 == 0 => {
            for quad in vals.chunks_exact(4) {
                let nums: Vec<i64> = quad.iter().filter_map(Value::as_i64).collect();
                if nums.len() != 4 {
                    return bad("stream_windows: `records` must hold only integers".into());
                }
                let (day, patient, exam, count) = (nums[0], nums[1], nums[2], nums[3]);
                if day < start || day >= end {
                    return bad(format!(
                        "stream_windows: record day {day} outside window [{start}, {end})"
                    ));
                }
                if patient < 0 || exam < 0 || count < 1 {
                    return bad(
                        "stream_windows: record ids must be non-negative and count >= 1".into(),
                    );
                }
            }
        }
        _ => {
            return bad(
                "stream_windows: `records` must be a non-empty array of (day, patient, exam, \
                 count) quads"
                    .into(),
            )
        }
    }
    for field in ["folded", "refits", "rows", "vocab", "vocab_version"] {
        match doc.get(field).and_then(Value::as_i64) {
            Some(v) if v >= 0 => {}
            _ => {
                return bad(format!(
                    "stream_windows: `{field}` must be a non-negative integer"
                ))
            }
        }
    }
    if doc.get("refit").and_then(Value::as_bool).is_none() {
        return bad("stream_windows: `refit` must be a boolean".into());
    }
    match doc.get("drift").and_then(Value::as_f64) {
        Some(d) if d >= 0.0 => {}
        _ => return bad("stream_windows: `drift` must be a non-negative float".into()),
    }
    match doc.get("vsm_fp").and_then(Value::as_str) {
        Some(fp) if is_fp16(fp) => {}
        other => {
            return bad(format!(
                "stream_windows: `vsm_fp` must be 16 lowercase hex digits, got {other:?}"
            ))
        }
    }
    match doc.get("model_fp").and_then(Value::as_str) {
        Some("") => Ok(()),
        Some(fp) if is_fp16(fp) => Ok(()),
        other => bad(format!(
            "stream_windows: `model_fp` must be empty or 16 lowercase hex digits, got {other:?}"
        )),
    }
}

/// Validates and inserts a streaming window checkpoint.
///
/// # Errors
/// Returns [`KdbError::Schema`] on a malformed checkpoint, otherwise
/// store errors (missing collection / journal I/O).
pub fn insert_stream_window<W: KdbWrite + ?Sized>(
    db: &mut W,
    record: Document,
) -> Result<DocId, KdbError> {
    validate_stream_window_doc(&record)?;
    db.insert(names::STREAM_WINDOWS, record)
}

/// Inserts a clustering knowledge item.
///
/// # Errors
/// Returns store errors (missing collection / journal I/O).
pub fn insert_cluster_item<W: KdbWrite + ?Sized>(
    db: &mut W,
    session: &str,
    k: usize,
    cluster: usize,
    size: usize,
    cohesion: f64,
    description: &str,
) -> Result<DocId, KdbError> {
    db.insert(
        names::CLUSTER_KNOWLEDGE,
        Document::new()
            .with("session", session)
            .with("kind", "cluster")
            .with("k", k as i64)
            .with("cluster", cluster as i64)
            .with("size", size as i64)
            .with("score", cohesion)
            .with("description", description),
    )
}

/// Inserts a pattern knowledge item (an association rule or itemset).
///
/// # Errors
/// Returns store errors (missing collection / journal I/O).
pub fn insert_pattern_item<W: KdbWrite + ?Sized>(
    db: &mut W,
    session: &str,
    items: &[u32],
    support: f64,
    confidence: f64,
    lift: f64,
    description: &str,
) -> Result<DocId, KdbError> {
    db.insert(
        names::PATTERN_KNOWLEDGE,
        Document::new()
            .with("session", session)
            .with("kind", "pattern")
            .with(
                "items",
                Value::Array(items.iter().map(|&i| Value::I64(i as i64)).collect()),
            )
            .with("support", support)
            .with("confidence", confidence)
            .with("lift", lift)
            .with("score", confidence * lift.min(4.0) / 4.0)
            .with("description", description),
    )
}

/// Validates a safety-signal knowledge item against the
/// `signal_knowledge` collection schema.
///
/// Required shape (see DESIGN.md §12):
///
/// * `session`, `exposure`, `outcome`, `description` — non-empty
///   strings; `exposure_id` — non-negative integer;
/// * `kind` — the literal `"signal"`;
/// * `a`, `b`, `c`, `d` — the 2×2 contingency-table cells,
///   non-negative integers;
/// * `ror`, `ci_low`, `ci_high` — finite positive numbers with
///   `ci_low <= ror <= ci_high` (the CI must bracket the estimate);
/// * `shrunk` — finite non-negative number; `support` — number in
///   [0, 1]; `score` — finite number;
/// * `corrected` — boolean (whether the Haldane–Anscombe zero-cell
///   correction was applied).
///
/// # Errors
/// Returns [`KdbError::Schema`] naming the first violated rule.
pub fn validate_signal_doc(doc: &Document) -> Result<(), KdbError> {
    let bad = |reason: String| Err(KdbError::Schema(reason));
    for key in ["session", "exposure", "outcome", "description"] {
        match doc.get(key).and_then(Value::as_str) {
            Some(s) if !s.is_empty() => {}
            _ => {
                return bad(format!(
                    "signal_knowledge: `{key}` must be a non-empty string"
                ))
            }
        }
    }
    match doc.get("kind").and_then(Value::as_str) {
        Some("signal") => {}
        other => {
            return bad(format!(
                "signal_knowledge: `kind` must be \"signal\", got {other:?}"
            ))
        }
    }
    for key in ["exposure_id", "a", "b", "c", "d"] {
        match doc.get(key).and_then(Value::as_i64) {
            Some(v) if v >= 0 => {}
            _ => {
                return bad(format!(
                    "signal_knowledge: `{key}` must be a non-negative integer"
                ))
            }
        }
    }
    let num = |key: &str| doc.get(key).and_then(Value::as_f64);
    for key in ["ror", "ci_low", "ci_high"] {
        match num(key) {
            Some(v) if v.is_finite() && v > 0.0 => {}
            _ => {
                return bad(format!(
                    "signal_knowledge: `{key}` must be a finite positive number"
                ))
            }
        }
    }
    let (ci_low, ror, ci_high) = (
        num("ci_low").expect("checked"),
        num("ror").expect("checked"),
        num("ci_high").expect("checked"),
    );
    if !(ci_low <= ror && ror <= ci_high) {
        return bad(format!(
            "signal_knowledge: CI must bracket the estimate, got [{ci_low}, {ci_high}] around {ror}"
        ));
    }
    match num("shrunk") {
        Some(v) if v.is_finite() && v >= 0.0 => {}
        _ => return bad("signal_knowledge: `shrunk` must be a finite non-negative number".into()),
    }
    match num("support") {
        Some(v) if (0.0..=1.0).contains(&v) => {}
        _ => return bad("signal_knowledge: `support` must be a number in [0, 1]".into()),
    }
    match num("score") {
        Some(v) if v.is_finite() => {}
        _ => return bad("signal_knowledge: `score` must be a finite number".into()),
    }
    if doc.get("corrected").and_then(Value::as_bool).is_none() {
        return bad("signal_knowledge: `corrected` must be a boolean".into());
    }
    Ok(())
}

/// Validates and inserts a safety-signal knowledge item.
///
/// # Errors
/// Returns [`KdbError::Schema`] on a malformed item, otherwise store
/// errors (missing collection / journal I/O).
pub fn insert_signal_item<W: KdbWrite + ?Sized>(
    db: &mut W,
    item: Document,
) -> Result<DocId, KdbError> {
    validate_signal_doc(&item)?;
    db.insert(names::SIGNAL_KNOWLEDGE, item)
}

/// Records physician feedback on a knowledge item.
///
/// # Errors
/// Returns store errors (missing collection / journal I/O).
pub fn insert_feedback<W: KdbWrite + ?Sized>(
    db: &mut W,
    session: &str,
    item_collection: &str,
    item_id: DocId,
    interest: Interestingness,
) -> Result<DocId, KdbError> {
    db.insert(
        names::FEEDBACK,
        Document::new()
            .with("session", session)
            .with("item_collection", item_collection)
            .with("item_id", item_id as i64)
            .with("interest", interest.as_str()),
    )
}

/// Stores a statistical-descriptor document for a session.
///
/// # Errors
/// Returns store errors (missing collection / journal I/O).
pub fn insert_descriptors<W: KdbWrite + ?Sized>(
    db: &mut W,
    session: &str,
    descriptors: Document,
) -> Result<DocId, KdbError> {
    db.insert(names::DESCRIPTORS, descriptors.with("session", session))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Filter;
    use crate::store::Kdb;

    #[test]
    fn init_creates_all_six_collections() {
        let mut db = Kdb::in_memory();
        init_schema(&mut db).unwrap();
        for name in names::ALL {
            assert!(db.collection(name).is_some(), "missing {name}");
        }
        assert!(db
            .collection(names::CLUSTER_KNOWLEDGE)
            .unwrap()
            .has_index("score"));
        // Idempotent.
        init_schema(&mut db).unwrap();
    }

    #[test]
    fn knowledge_items_round_trip() {
        let mut db = Kdb::in_memory();
        init_schema(&mut db).unwrap();
        let cid = insert_cluster_item(&mut db, "s1", 8, 2, 512, 0.73, "cluster 2 of 8").unwrap();
        let pid = insert_pattern_item(&mut db, "s1", &[3, 17], 0.21, 0.88, 2.4, "HbA1c => glucose")
            .unwrap();
        insert_feedback(
            &mut db,
            "s1",
            names::CLUSTER_KNOWLEDGE,
            cid,
            Interestingness::High,
        )
        .unwrap();

        let clusters = db
            .find(names::CLUSTER_KNOWLEDGE, &Filter::eq("session", "s1"))
            .unwrap();
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].1.get("k").unwrap().as_i64(), Some(8));

        let patterns = db
            .find(names::PATTERN_KNOWLEDGE, &Filter::eq("session", "s1"))
            .unwrap();
        assert_eq!(
            patterns[0]
                .1
                .get("items")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            2
        );
        assert_eq!(patterns[0].0, pid);

        let feedback = db
            .find(names::FEEDBACK, &Filter::eq("session", "s1"))
            .unwrap();
        assert_eq!(
            feedback[0].1.get("interest").unwrap().as_str(),
            Some("high")
        );
    }

    fn sample_session_doc() -> Document {
        let span = |name: &str, parent: i64, start: i64, dur: i64| {
            Value::Doc(
                Document::new()
                    .with("name", name)
                    .with("parent", parent)
                    .with("start_ns", start)
                    .with("dur_ns", dur),
            )
        };
        let stage = Value::Doc(
            Document::new()
                .with("stage", "optimize")
                .with("count", 1i64)
                .with("p50_ns", 100i64)
                .with("p90_ns", 100i64)
                .with("p99_ns", 100i64),
        );
        Document::new()
            .with("session", "s1")
            .with("state", "completed")
            .with(
                "spans",
                Value::Array(vec![
                    span("session", -1, 0, 500),
                    span("optimize", 0, 10, 200),
                    span("sweep:k=8", 1, 20, 90),
                ]),
            )
            .with("stages", Value::Array(vec![stage]))
            .with(
                "counters",
                Value::Doc(Document::new().with("iterations", 12i64)),
            )
    }

    #[test]
    fn session_records_validate_and_round_trip() {
        let mut db = Kdb::in_memory();
        init_schema(&mut db).unwrap();
        assert!(db.collection(names::SESSIONS).unwrap().has_index("state"));
        let id = insert_session_record(&mut db, sample_session_doc()).unwrap();
        let found = db
            .find(names::SESSIONS, &Filter::eq("session", "s1"))
            .unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].0, id);
        validate_session_doc(&found[0].1).unwrap();
    }

    #[test]
    fn session_validation_rejects_malformed_records() {
        let mut db = Kdb::in_memory();
        init_schema(&mut db).unwrap();
        let rejects = |doc: Document, what: &str| {
            let mut db2 = Kdb::in_memory();
            init_schema(&mut db2).unwrap();
            assert!(
                matches!(
                    insert_session_record(&mut db2, doc),
                    Err(KdbError::Schema(_))
                ),
                "expected rejection: {what}"
            );
        };
        rejects(
            sample_session_doc().with("state", "running"),
            "non-terminal state",
        );
        rejects(sample_session_doc().with("session", ""), "empty session");
        rejects(
            sample_session_doc().with("spans", Value::Null),
            "missing spans",
        );
        rejects(
            sample_session_doc().with(
                "spans",
                Value::Array(vec![Value::Doc(
                    Document::new()
                        .with("name", "x")
                        .with("parent", 5i64) // forward reference
                        .with("start_ns", 0i64)
                        .with("dur_ns", 0i64),
                )]),
            ),
            "forward parent reference",
        );
        rejects(
            sample_session_doc().with(
                "counters",
                Value::Doc(Document::new().with("iterations", -3i64)),
            ),
            "negative counter",
        );
        // The rejected inserts must not have left documents behind.
        assert_eq!(db.collection(names::SESSIONS).unwrap().len(), 0);
    }

    fn sample_trace_doc() -> Document {
        let span = |name: &str, parent: i64, start: i64, dur: i64| {
            Value::Doc(
                Document::new()
                    .with("name", name)
                    .with("parent", parent)
                    .with("start_ns", start)
                    .with("dur_ns", dur),
            )
        };
        let fsync = Value::Doc(
            Document::new()
                .with("name", "fsync_round")
                .with("parent", 0i64)
                .with("start_ns", 300i64)
                .with("dur_ns", 80i64)
                .with(
                    "attrs",
                    Value::Doc(
                        Document::new()
                            .with("batch", 4i64)
                            .with("leader", 1i64)
                            .with("wait_ns", 20i64)
                            .with("fsync_ns", 60i64),
                    ),
                ),
        );
        Document::new()
            .with("session", "s1")
            .with("trace_id", "00112233445566778899aabbccddeeff")
            .with("state", "completed")
            .with("forced", false)
            .with("events_dropped", 0i64)
            .with(
                "spans",
                Value::Array(vec![
                    span("session", -1, 0, 500),
                    span("queue_wait", 0, 5, 40),
                    span("optimize", 0, 50, 200),
                    fsync,
                ]),
            )
    }

    #[test]
    fn trace_records_validate_and_round_trip() {
        let mut db = Kdb::in_memory();
        init_schema(&mut db).unwrap();
        // The base schema must NOT create the trace store: it only
        // appears once a sampled session is about to persist.
        assert!(db.collection(names::TRACES).is_none());
        init_trace_schema(&mut db).unwrap();
        let coll = db.collection(names::TRACES).unwrap();
        assert!(coll.has_index("session"));
        assert!(coll.has_index("trace_id"));
        let id = insert_trace_record(&mut db, sample_trace_doc()).unwrap();
        let found = db
            .find(names::TRACES, &Filter::eq("session", "s1"))
            .unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].0, id);
        validate_trace_doc(&found[0].1).unwrap();
    }

    #[test]
    fn trace_validation_rejects_malformed_records() {
        let rejects = |doc: Document, what: &str| {
            let mut db = Kdb::in_memory();
            init_trace_schema(&mut db).unwrap();
            assert!(
                matches!(insert_trace_record(&mut db, doc), Err(KdbError::Schema(_))),
                "expected rejection: {what}"
            );
            assert_eq!(db.collection(names::TRACES).unwrap().len(), 0);
        };
        rejects(sample_trace_doc().with("session", ""), "empty session");
        rejects(sample_trace_doc().with("trace_id", "xyz"), "short trace id");
        rejects(
            sample_trace_doc().with("trace_id", "00112233445566778899AABBCCDDEEFF"),
            "uppercase trace id",
        );
        rejects(sample_trace_doc().with("state", "running"), "non-terminal");
        rejects(sample_trace_doc().with("forced", 1i64), "non-bool forced");
        rejects(
            sample_trace_doc().with("events_dropped", -1i64),
            "negative drop count",
        );
        rejects(
            sample_trace_doc().with(
                "spans",
                Value::Array(vec![Value::Doc(
                    Document::new()
                        .with("name", "x")
                        .with("parent", 3i64)
                        .with("start_ns", 0i64)
                        .with("dur_ns", 0i64),
                )]),
            ),
            "forward parent reference",
        );
        rejects(
            sample_trace_doc().with(
                "spans",
                Value::Array(vec![Value::Doc(
                    Document::new()
                        .with("name", "x")
                        .with("parent", -1i64)
                        .with("start_ns", 0i64)
                        .with("dur_ns", 0i64)
                        .with("attrs", Value::Doc(Document::new().with("batch", -4i64))),
                )]),
            ),
            "negative span attribute",
        );
    }

    fn sample_window_doc() -> Document {
        Document::new()
            .with("stream", "feed-1")
            .with("window", 2376i64)
            .with("start_day", 16632i64)
            .with("end_day", 16639i64)
            .with("watermark", 16639i64)
            .with(
                "records",
                Value::Array(
                    [16632i64, 4, 11, 2, 16633, 0, 3, 1]
                        .into_iter()
                        .map(Value::I64)
                        .collect(),
                ),
            )
            .with("folded", 3i64)
            .with("refits", 1i64)
            .with("refit", false)
            .with("drift", 1.02f64)
            .with("rows", 2i64)
            .with("vocab", 2i64)
            .with("vocab_version", 2i64)
            .with("vsm_fp", "00f00dcafe123abc")
            .with("model_fp", "deadbeef00112233")
    }

    #[test]
    fn stream_window_records_validate_and_round_trip() {
        let mut db = Kdb::in_memory();
        init_schema(&mut db).unwrap();
        // Like the trace store, the checkpoint store must only appear
        // once a stream actually closes a window.
        assert!(db.collection(names::STREAM_WINDOWS).is_none());
        init_stream_schema(&mut db).unwrap();
        let coll = db.collection(names::STREAM_WINDOWS).unwrap();
        assert!(coll.has_index("stream"));
        assert!(coll.has_index("window"));
        let id = insert_stream_window(&mut db, sample_window_doc()).unwrap();
        // A model-less early window is also valid.
        insert_stream_window(&mut db, sample_window_doc().with("model_fp", "")).unwrap();
        let found = db
            .find(names::STREAM_WINDOWS, &Filter::eq("stream", "feed-1"))
            .unwrap();
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].0, id);
        validate_stream_window_doc(&found[0].1).unwrap();
    }

    #[test]
    fn stream_window_validation_rejects_malformed_records() {
        let rejects = |doc: Document, what: &str| {
            let mut db = Kdb::in_memory();
            init_stream_schema(&mut db).unwrap();
            assert!(
                matches!(insert_stream_window(&mut db, doc), Err(KdbError::Schema(_))),
                "expected rejection: {what}"
            );
            assert_eq!(db.collection(names::STREAM_WINDOWS).unwrap().len(), 0);
        };
        rejects(sample_window_doc().with("stream", ""), "empty stream");
        rejects(sample_window_doc().with("window", "x"), "non-int window");
        rejects(
            sample_window_doc().with("end_day", 16632i64),
            "empty day span",
        );
        rejects(
            sample_window_doc().with("watermark", 16638i64),
            "watermark behind window end",
        );
        rejects(
            sample_window_doc().with("records", Value::Array(vec![])),
            "empty records",
        );
        rejects(
            sample_window_doc().with(
                "records",
                Value::Array(vec![Value::I64(16632), Value::I64(1)]),
            ),
            "ragged quads",
        );
        rejects(
            sample_window_doc().with(
                "records",
                Value::Array([16700i64, 1, 1, 1].into_iter().map(Value::I64).collect()),
            ),
            "record outside window",
        );
        rejects(
            sample_window_doc().with(
                "records",
                Value::Array([16632i64, 1, 1, 0].into_iter().map(Value::I64).collect()),
            ),
            "zero count",
        );
        rejects(sample_window_doc().with("folded", -1i64), "negative folded");
        rejects(sample_window_doc().with("refit", 1i64), "non-bool refit");
        rejects(sample_window_doc().with("drift", -0.5f64), "negative drift");
        rejects(sample_window_doc().with("vsm_fp", "short"), "bad vsm fp");
        rejects(
            sample_window_doc().with("model_fp", "DEADBEEF00112233"),
            "uppercase model fp",
        );
    }

    fn sample_signal_doc() -> Document {
        Document::new()
            .with("session", "sig-1")
            .with("kind", "signal")
            .with("exposure", "fundus-exam")
            .with("exposure_id", 17i64)
            .with("outcome", "ophthalmic")
            .with("a", 40i64)
            .with("b", 60i64)
            .with("c", 120i64)
            .with("d", 480i64)
            .with("ror", 2.67)
            .with("ci_low", 1.70)
            .with("ci_high", 4.18)
            .with("shrunk", 2.1)
            .with("support", 0.057)
            .with("score", 0.62)
            .with("corrected", false)
            .with("description", "fundus-exam => ophthalmic complication")
    }

    #[test]
    fn signal_items_validate_and_round_trip() {
        let mut db = Kdb::in_memory();
        init_schema(&mut db).unwrap();
        let coll = db.collection(names::SIGNAL_KNOWLEDGE).unwrap();
        assert!(coll.has_index("session"));
        assert!(coll.has_index("score"));
        let id = insert_signal_item(&mut db, sample_signal_doc()).unwrap();
        let found = db
            .find(names::SIGNAL_KNOWLEDGE, &Filter::eq("session", "sig-1"))
            .unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].0, id);
        validate_signal_doc(&found[0].1).unwrap();
    }

    #[test]
    fn signal_validation_rejects_malformed_items() {
        let rejects = |doc: Document, what: &str| {
            let mut db = Kdb::in_memory();
            init_schema(&mut db).unwrap();
            assert!(
                matches!(insert_signal_item(&mut db, doc), Err(KdbError::Schema(_))),
                "expected rejection: {what}"
            );
            assert_eq!(db.collection(names::SIGNAL_KNOWLEDGE).unwrap().len(), 0);
        };
        rejects(sample_signal_doc().with("session", ""), "empty session");
        rejects(sample_signal_doc().with("kind", "pattern"), "wrong kind");
        rejects(sample_signal_doc().with("a", -1i64), "negative cell");
        rejects(sample_signal_doc().with("ror", f64::NAN), "NaN ror");
        rejects(
            sample_signal_doc().with("ror", f64::INFINITY),
            "infinite ror",
        );
        rejects(
            sample_signal_doc().with("ci_low", 3.0),
            "CI not bracketing the estimate",
        );
        rejects(sample_signal_doc().with("support", 1.5), "support > 1");
        rejects(sample_signal_doc().with("shrunk", -0.1), "negative shrunk");
        rejects(
            sample_signal_doc().with("corrected", 1i64),
            "non-bool corrected",
        );
    }

    #[test]
    fn interestingness_round_trip() {
        for i in [
            Interestingness::Low,
            Interestingness::Medium,
            Interestingness::High,
        ] {
            assert_eq!(Interestingness::parse(i.as_str()), Some(i));
        }
        assert_eq!(Interestingness::parse("nope"), None);
        assert!(Interestingness::High.score() > Interestingness::Medium.score());
        assert!(Interestingness::High > Interestingness::Low);
    }

    #[test]
    fn descriptors_tagged_with_session() {
        let mut db = Kdb::in_memory();
        init_schema(&mut db).unwrap();
        insert_descriptors(
            &mut db,
            "s2",
            Document::new()
                .with("sparsity", 0.91)
                .with("patients", 6380i64),
        )
        .unwrap();
        let found = db
            .find(names::DESCRIPTORS, &Filter::eq("session", "s2"))
            .unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].1.get("sparsity").unwrap().as_f64(), Some(0.91));
    }
}
