//! The analysis service: a fixed worker pool draining the prioritized
//! job queue against one shared K-DB.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ada_core::{
    AdaHealth, PipelineError, PipelineObserver, PipelineStage, RunControl, TraceHandle,
};
use ada_dataset::{ExamLog, ExamRecord, StreamOrder};
use ada_kdb::{
    schema, CommitObserver, CommitRole, Document, DurabilityPolicy, Kdb, SharedKdb, Value,
};
use ada_obs::{
    current_trace, document_to_json, past_sessions, past_traces, FlightRecorder, StreamMetrics,
    TraceContext, TraceScope, MARK_CANCELLED, MARK_DEGRADED, MARK_PERSIST_FAIL, MARK_PROMOTED,
    MARK_QUEUE_WAIT, MARK_RETRY, MARK_SLOW_SESSION,
};
use ada_stream::{
    IngestAck, IngestRejected, StreamConfig, StreamEngine, StreamHandle, StreamMiningSpec,
    StreamReport,
};

use crate::cancel::CancelToken;
use crate::error::ServiceError;
use crate::job::{JobSpec, Workload};
use crate::observer::{FanoutObserver, MetricsObserver, ServiceMetrics};
use crate::queue::{JobQueue, Token};
use crate::registry::{SessionId, SessionOutcome, SessionRegistry, SessionState};

/// Deterministic capped exponential backoff for retried attempts.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Seed for the jitter mix — same seed, same schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
            seed: 0x5eed_0fad_a0c1_d0c5,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (1-based) of `session`.
    ///
    /// Exponential in `attempt`, capped at `cap`, with deterministic
    /// jitter in `[0, base)` derived from `(seed, session, attempt)` via
    /// a SplitMix64 mix so concurrent retries de-synchronize without a
    /// shared RNG.
    pub fn backoff(&self, session: SessionId, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16).saturating_sub(1));
        let capped = exp.min(self.cap);
        let mut z = self
            .seed
            .wrapping_add(session.0.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(u64::from(attempt));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let jitter_nanos = (self.base.as_nanos() as u64).max(1);
        capped + Duration::from_nanos(z % jitter_nanos)
    }
}

/// Tuning knobs for [`AnalysisService`].
#[derive(Clone)]
pub struct ServiceConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it get `Busy`.
    pub queue_capacity: usize,
    /// Retry schedule for panicking attempts.
    pub retry: RetryPolicy,
    /// Optional extra observer receiving every stage event in addition
    /// to the built-in metrics collector and flight recorder.
    pub observer: Option<Arc<dyn PipelineObserver>>,
    /// Last-N cap on the flight recorder's per-session event log (span
    /// trees, histograms and counters are folded from all events).
    pub recorder_capacity: usize,
    /// Journal faults tolerated before the service flips to degraded
    /// read-only mode (clamped to at least 1).
    pub degrade_after: u32,
    /// Durability policy applied to the shared K-DB's journal at
    /// startup (`None` keeps whatever the store was opened with). Under
    /// the sharded store this is the *group-commit* policy: `Always`
    /// still means every acked op is fsync-covered, but concurrent
    /// writers share one fsync per commit round instead of paying one
    /// each.
    pub durability: Option<DurabilityPolicy>,
    /// Force a final journal fsync when the service shuts down, so ops
    /// acknowledged non-durable under `Batch`/`SnapshotOnly` policies
    /// are made durable before the process exits.
    pub sync_on_shutdown: bool,
    /// Fraction of sessions whose requests are traced end-to-end
    /// (`0.0` = tracing fully off — the default, byte-identical to a
    /// build without tracing; `1.0` = every session). The decision is
    /// seeded-deterministic per session name, so the same submission
    /// samples identically on every run.
    pub sample_rate: f64,
    /// Seed for the deterministic sampling decision and trace-id
    /// derivation. Remote clients that mint contexts themselves must
    /// use the same seed for client and server decisions to agree.
    pub trace_seed: u64,
    /// Start as a replication follower: reads and status queries are
    /// served, submissions are refused with [`ServiceError::Follower`]
    /// until [`AnalysisService::promote`] flips the node to primary.
    pub follower: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 64,
            retry: RetryPolicy::default(),
            observer: None,
            recorder_capacity: 512,
            degrade_after: 3,
            durability: None,
            sync_on_shutdown: true,
            sample_rate: 0.0,
            trace_seed: DEFAULT_TRACE_SEED,
            follower: false,
        }
    }
}

/// The default sampling seed: client and server must agree on one seed
/// for their deterministic decisions to coincide, so both sides default
/// to this constant.
pub const DEFAULT_TRACE_SEED: u64 = 0xada0_b5e5_7ace_5eed;

struct ServiceInner {
    kdb: SharedKdb,
    queue: JobQueue<(SessionId, JobSpec, Instant)>,
    registry: SessionRegistry,
    metrics: Arc<MetricsObserver>,
    recorder: Arc<FlightRecorder>,
    extra_observer: Option<Arc<dyn PipelineObserver>>,
    retry: RetryPolicy,
    shutting_down: AtomicBool,
    /// Sticky read-only flag; set once [`ServiceInner::journal_fault_delta`]
    /// reaches `degrade_after`, cleared only by a restart.
    degraded: AtomicBool,
    /// Warm-standby read-only flag; unlike `degraded` it is not sticky:
    /// [`AnalysisService::promote`] clears it on failover.
    follower: AtomicBool,
    /// Journal faults already on the K-DB when the service started
    /// (faults are attributed to the process that caused them).
    initial_faults: u64,
    degrade_after: u64,
    /// Run one final group fsync when the service stops.
    sync_on_shutdown: bool,
    /// End-to-end tracing sample rate (0 = off, the byte-identity
    /// baseline).
    sample_rate: f64,
    /// Seed for deterministic sampling and trace-id derivation.
    trace_seed: u64,
    /// Open ingestion streams by name (`stream_open` registers,
    /// `stop` closes).
    streams: Mutex<HashMap<String, Arc<StreamHandle>>>,
    /// Shared counters behind the `ada_stream_*` Prometheus families;
    /// every stream (registry or session workload) reports here.
    stream_metrics: Arc<StreamMetrics>,
}

impl ServiceInner {
    /// Journal faults the shared K-DB has accumulated on this service's
    /// watch.
    fn journal_fault_delta(&self) -> u64 {
        self.kdb
            .journal_fault_count()
            .saturating_sub(self.initial_faults)
    }

    /// Re-reads the fault counter and performs the degraded transition
    /// when the threshold is crossed. `session` labels the obs mark.
    fn check_degraded(&self, session: &str) {
        let delta = self.journal_fault_delta();
        self.metrics.set_journal_faults(delta);
        if delta >= self.degrade_after && !self.degraded.swap(true, Ordering::AcqRel) {
            self.metrics.degraded_transition();
            self.recorder.mark(session, MARK_DEGRADED, Duration::ZERO);
        }
    }
}

/// An in-process analysis server: submit [`JobSpec`]s, await their
/// [`SessionState`]s, share one journaled K-DB across all sessions.
///
/// Sessions run through [`AdaHealth::with_shared_kdb_isolated`], so each
/// concurrent session's `SessionReport` is identical to a serial run of
/// the same configuration and seed.
pub struct AnalysisService {
    inner: Arc<ServiceInner>,
    workers: Vec<JoinHandle<()>>,
}

impl AnalysisService {
    /// Starts the worker pool over `kdb` (wrap an owned [`Kdb`] with
    /// [`AnalysisService::with_kdb`]).
    pub fn new(config: ServiceConfig, kdb: SharedKdb) -> Self {
        let workers = config.workers.max(1);
        if let Some(policy) = config.durability {
            kdb.set_durability(policy);
        }
        let initial_faults = kdb.journal_fault_count();
        let recorder = Arc::new(FlightRecorder::new(config.recorder_capacity));
        if config.sample_rate > 0.0 {
            // Only a tracing service hooks the group committer: at rate
            // 0 the commit path stays exactly as it was (the
            // byte-identity invariant).
            kdb.set_commit_observer(Some(Arc::new(FsyncRoundObserver {
                recorder: Arc::clone(&recorder),
            })));
        }
        let inner = Arc::new(ServiceInner {
            kdb,
            queue: JobQueue::bounded(config.queue_capacity.max(1)),
            registry: SessionRegistry::new(),
            metrics: Arc::new(MetricsObserver::new()),
            recorder,
            extra_observer: config.observer,
            retry: config.retry,
            shutting_down: AtomicBool::new(false),
            degraded: AtomicBool::new(false),
            follower: AtomicBool::new(config.follower),
            initial_faults,
            degrade_after: u64::from(config.degrade_after.max(1)),
            sync_on_shutdown: config.sync_on_shutdown,
            sample_rate: config.sample_rate,
            trace_seed: config.trace_seed,
            streams: Mutex::new(HashMap::new()),
            stream_metrics: Arc::new(StreamMetrics::new()),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("ada-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        Self {
            inner,
            workers: handles,
        }
    }

    /// Convenience: takes ownership of a `Kdb` and shares it.
    pub fn with_kdb(config: ServiceConfig, kdb: Kdb) -> Self {
        Self::new(config, SharedKdb::new(kdb))
    }

    /// The shared K-DB handle all sessions write into.
    pub fn kdb(&self) -> SharedKdb {
        self.inner.kdb.clone()
    }

    /// Submits a job; returns its session id, or refuses with
    /// `Busy` (backpressure, with a retry hint), `ShuttingDown`,
    /// `Degraded` (the store is no longer accepting writes it could
    /// lose), or `Follower` (this node is a warm standby; writes belong
    /// on the primary).
    pub fn submit(&self, spec: JobSpec) -> Result<SessionId, ServiceError> {
        if self.inner.shutting_down.load(Ordering::Acquire) {
            return Err(ServiceError::ShuttingDown);
        }
        if self.inner.degraded.load(Ordering::Acquire) {
            return Err(ServiceError::Degraded);
        }
        if self.inner.follower.load(Ordering::Acquire) {
            return Err(ServiceError::Follower);
        }
        let mut spec = spec;
        if spec.trace.is_none() && self.inner.sample_rate > 0.0 {
            // In-process submissions mint here; remote ones arrive with
            // the client's context already attached.
            spec.trace = TraceContext::mint(
                self.inner.trace_seed,
                &spec.config.session,
                self.inner.sample_rate,
            );
        }
        let token = spec.cancel.clone().unwrap_or_default();
        let id = self.inner.registry.register(&spec.config.session, token);
        let priority = spec.priority;
        if let Err(capacity) = self.inner.queue.push(priority, (id, spec, Instant::now())) {
            self.inner.registry.remove(id);
            self.inner.metrics.job_rejected();
            return Err(ServiceError::Busy {
                capacity,
                retry_after_hint: self.retry_after_hint(),
            });
        }
        self.inner.metrics.job_submitted();
        self.inner
            .metrics
            .observe_queue_depth(self.inner.queue.len());
        Ok(id)
    }

    /// Requests cooperative cancellation of a session. Takes effect at
    /// the session's next pipeline checkpoint, or immediately if it is
    /// still queued.
    pub fn cancel(&self, id: SessionId) -> Result<(), ServiceError> {
        let token = self.inner.registry.cancel_token(id)?;
        token.cancel();
        Ok(())
    }

    /// The current state of a session.
    pub fn state(&self, id: SessionId) -> Result<SessionState, ServiceError> {
        self.inner.registry.state(id)
    }

    /// Blocks until the session reaches a terminal state.
    pub fn wait(&self, id: SessionId) -> Result<SessionState, ServiceError> {
        self.inner.registry.wait(id)
    }

    /// Every session as `(id, name, state)`, in submission order.
    pub fn sessions(&self) -> Vec<(SessionId, String, SessionState)> {
        self.inner.registry.sessions()
    }

    /// A point-in-time metrics snapshot, including the shared K-DB's
    /// group-commit counters.
    pub fn metrics(&self) -> ServiceMetrics {
        let mut metrics = self.inner.metrics.snapshot();
        metrics.kdb = self.inner.kdb.group_commit_stats();
        metrics.events_dropped = self.inner.recorder.dropped();
        metrics
    }

    /// Current depth of the job queue.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.len()
    }

    /// Estimated wait until a refused submission could be accepted:
    /// queue depth × the p50 session execution latency observed so far
    /// (100 ms prior before any session finished), clamped to
    /// `[25 ms, 30 s]`. The same hint travels in `ServiceError::Busy`
    /// and in the wire protocol's `Busy` response, so in-process and
    /// remote callers see identical backpressure semantics.
    pub fn retry_after_hint(&self) -> Duration {
        let p50 = self.inner.metrics.session_latency_p50();
        let p50 = if p50.is_zero() {
            Duration::from_millis(100)
        } else {
            p50
        };
        let depth = self.inner.queue.len().max(1) as u32;
        p50.saturating_mul(depth)
            .clamp(Duration::from_millis(25), Duration::from_secs(30))
    }

    /// Whether the service has entered degraded read-only mode.
    pub fn is_degraded(&self) -> bool {
        self.inner.degraded.load(Ordering::Acquire)
    }

    /// Whether this node is currently a replication follower.
    pub fn is_follower(&self) -> bool {
        self.inner.follower.load(Ordering::Acquire)
    }

    /// Flips the follower flag at runtime (the fleet layer sets it when
    /// a node starts tailing a primary). Prefer
    /// [`ServiceConfig::follower`] for nodes born as standbys.
    pub fn set_follower(&self, on: bool) {
        self.inner.follower.store(on, Ordering::Release);
    }

    /// Promotes a follower to primary: clears the read-only follower
    /// flag so subsequent submissions are accepted, and marks the
    /// transition in the flight recorder. Idempotent; returns whether
    /// this call performed the transition.
    pub fn promote(&self) -> bool {
        let was = self.inner.follower.swap(false, Ordering::AcqRel);
        if was {
            self.inner
                .recorder
                .mark("fleet", MARK_PROMOTED, Duration::ZERO);
        }
        was
    }

    /// A health probe document: overall status (`"ok"`, `"follower"` or
    /// `"degraded"`), the node's replication role, the journal fault
    /// count on this service's watch, lost terminal-session records,
    /// and whether new work is accepted.
    pub fn health(&self) -> Document {
        let degraded = self.is_degraded();
        let follower = self.is_follower();
        let faults = self.inner.journal_fault_delta();
        let metrics = self.inner.metrics.snapshot();
        let status = if degraded {
            "degraded"
        } else if follower {
            "follower"
        } else {
            "ok"
        };
        Document::new()
            .with("status", status)
            .with("role", if follower { "follower" } else { "primary" })
            .with("accepting_writes", !degraded && !follower)
            .with("journal_faults", i64::try_from(faults).unwrap_or(i64::MAX))
            .with(
                "persist_failures",
                i64::try_from(metrics.persist_failures).unwrap_or(i64::MAX),
            )
    }

    /// The session flight recorder (trace drain, recent events,
    /// per-session counters).
    pub fn recorder(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.inner.recorder)
    }

    /// Terminal session records persisted to the K-DB `sessions`
    /// collection — including by previous service processes over the
    /// same journal, which is how a restarted service answers queries
    /// about past runs.
    pub fn past_sessions(&self) -> Vec<Document> {
        past_sessions(&self.inner.kdb.read())
            .into_iter()
            .map(|(_, doc)| doc)
            .collect()
    }

    /// Terminal trace records persisted to the K-DB `traces`
    /// collection, optionally filtered to one session — the local face
    /// of the `TraceQuery` wire message.
    pub fn past_traces(&self, session: Option<&str>) -> Vec<Document> {
        past_traces(&self.inner.kdb.read(), session)
            .into_iter()
            .map(|(_, doc)| doc)
            .collect()
    }

    /// One document describing the whole service right now: metrics
    /// (histogram quantiles included), every known session and its
    /// state, and the count of persisted past sessions.
    pub fn snapshot(&self) -> Document {
        let sessions = self
            .sessions()
            .into_iter()
            .map(|(id, name, state)| {
                Value::Doc(
                    Document::new()
                        .with("id", i64::try_from(id.0).unwrap_or(i64::MAX))
                        .with("name", name)
                        .with("state", state.label()),
                )
            })
            .collect();
        let past = past_sessions(&self.inner.kdb.read()).len();
        Document::new()
            .with("health", Value::Doc(self.health()))
            .with("metrics", Value::Doc(self.metrics().to_document()))
            .with("sessions", Value::Array(sessions))
            .with("past_sessions", i64::try_from(past).unwrap_or(i64::MAX))
            .with(
                "events_dropped",
                i64::try_from(self.inner.recorder.dropped()).unwrap_or(i64::MAX),
            )
    }

    /// [`AnalysisService::snapshot`] rendered as a JSON object.
    pub fn snapshot_json(&self) -> String {
        document_to_json(&self.snapshot())
    }

    /// The metrics snapshot rendered as Prometheus text exposition,
    /// including the pinned `ada_stream_*` families.
    pub fn snapshot_prometheus(&self) -> String {
        let mut out = self.metrics().to_prometheus();
        out.push_str(&self.inner.stream_metrics.snapshot().to_prometheus());
        out
    }

    /// Opens (or resumes) a named ingestion stream: if the shared K-DB
    /// holds `stream_windows` checkpoints under this name they are
    /// replayed and verified, and the stream resumes from its durable
    /// watermark. Returns the number of resumed windows. Opening a
    /// name that is already open is an idempotent no-op (returns 0);
    /// a degraded or follower node refuses — ingestion is mutating
    /// work that belongs on a healthy primary.
    pub fn stream_open(&self, config: StreamConfig) -> Result<u64, ServiceError> {
        if self.inner.shutting_down.load(Ordering::Acquire) {
            return Err(ServiceError::ShuttingDown);
        }
        if self.inner.degraded.load(Ordering::Acquire) {
            return Err(ServiceError::Degraded);
        }
        if self.inner.follower.load(Ordering::Acquire) {
            return Err(ServiceError::Follower);
        }
        let mut streams = self.inner.streams.lock().unwrap();
        if streams.contains_key(&config.name) {
            return Ok(0);
        }
        let name = config.name.clone();
        let (engine, resumed) = StreamEngine::open(
            config,
            Some(self.inner.kdb.clone()),
            Arc::clone(&self.inner.stream_metrics),
            Some(Arc::clone(&self.inner.recorder)),
        )
        .map_err(|e| ServiceError::StreamFault(e.to_string()))?;
        streams.insert(name, StreamHandle::spawn(engine));
        Ok(resumed)
    }

    /// Enqueues a record batch on an open stream without blocking. A
    /// full channel refuses with the service's standard
    /// [`ServiceError::Busy`] backpressure signal.
    pub fn stream_ingest(
        &self,
        stream: &str,
        records: Vec<ExamRecord>,
    ) -> Result<IngestAck, ServiceError> {
        if self.inner.shutting_down.load(Ordering::Acquire) {
            return Err(ServiceError::ShuttingDown);
        }
        if self.inner.degraded.load(Ordering::Acquire) {
            return Err(ServiceError::Degraded);
        }
        if self.inner.follower.load(Ordering::Acquire) {
            return Err(ServiceError::Follower);
        }
        let handle = self.stream_handle(stream)?;
        handle.try_ingest(records).map_err(|rej| match rej {
            IngestRejected::Full => ServiceError::Busy {
                capacity: handle.capacity(),
                retry_after_hint: self.retry_after_hint(),
            },
            IngestRejected::Closed => ServiceError::ShuttingDown,
            IngestRejected::Fault(msg) => ServiceError::StreamFault(msg),
        })
    }

    /// The stream's status document — read-your-writes: every batch
    /// accepted before this call is reflected. Allowed on any node
    /// state (it is a read).
    pub fn stream_query(&self, stream: &str) -> Result<Document, ServiceError> {
        let handle = self.stream_handle(stream)?;
        handle
            .status()
            .map_err(|e| ServiceError::StreamFault(e.to_string()))
    }

    /// Seals an open stream — closes every buffered window regardless
    /// of the watermark (end of feed) — and returns its final status.
    pub fn stream_seal(&self, stream: &str) -> Result<Document, ServiceError> {
        if self.inner.degraded.load(Ordering::Acquire) {
            return Err(ServiceError::Degraded);
        }
        if self.inner.follower.load(Ordering::Acquire) {
            return Err(ServiceError::Follower);
        }
        let handle = self.stream_handle(stream)?;
        handle
            .seal()
            .map_err(|e| ServiceError::StreamFault(e.to_string()))?;
        handle
            .status()
            .map_err(|e| ServiceError::StreamFault(e.to_string()))
    }

    /// Names of the currently open streams, sorted.
    pub fn stream_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.streams.lock().unwrap().keys().cloned().collect();
        names.sort();
        names
    }

    fn stream_handle(&self, stream: &str) -> Result<Arc<StreamHandle>, ServiceError> {
        self.inner
            .streams
            .lock()
            .unwrap()
            .get(stream)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownStream(stream.to_string()))
    }

    /// Stops accepting jobs, drains the queue, joins the workers, and
    /// returns the final metrics.
    pub fn shutdown(mut self) -> ServiceMetrics {
        self.stop();
        self.inner.metrics.snapshot()
    }

    fn stop(&mut self) {
        if self.inner.shutting_down.swap(true, Ordering::AcqRel) {
            return;
        }
        // The wake channel is FIFO, so these land after every queued
        // job's token: workers drain the backlog before stopping.
        self.inner.queue.send_shutdown(self.workers.len());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Drain and stop every open stream before the final fsync so
        // accepted batches reach their durable checkpoints. Buffered
        // (pre-watermark) records are intentionally left unclosed: a
        // replaying source re-delivers them after resume.
        let streams: Vec<Arc<StreamHandle>> = self
            .inner
            .streams
            .lock()
            .unwrap()
            .drain()
            .map(|(_, h)| h)
            .collect();
        for stream in streams {
            stream.close();
        }
        if self.inner.sync_on_shutdown {
            // Batch/SnapshotOnly acks may still be fsync-uncovered; one
            // final group fsync closes the window (best-effort — the
            // fault counter records a failure).
            let _ = self.inner.kdb.sync();
        }
        if self.inner.sample_rate > 0.0 {
            // Unhook the group committer so a longer-lived K-DB handle
            // does not keep reporting into this service's recorder.
            self.inner.kdb.set_commit_observer(None);
        }
    }
}

impl Drop for AnalysisService {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bridges the K-DB group committer into the flight recorder: every
/// commit round a traced session waits on becomes a `fsync_round` span
/// in that session's trace, with batch size, leader role, and the
/// wait-vs-fsync split as attributes. Attribution is via the worker
/// thread's [`TraceScope`]; rounds settled on untraced threads report
/// nothing.
struct FsyncRoundObserver {
    recorder: Arc<FlightRecorder>,
}

impl std::fmt::Debug for FsyncRoundObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FsyncRoundObserver").finish_non_exhaustive()
    }
}

impl CommitObserver for FsyncRoundObserver {
    fn on_commit_round(
        &self,
        role: CommitRole,
        batch: u64,
        wait: Duration,
        fsync: Duration,
        durable: bool,
    ) {
        let Some((session, ctx)) = current_trace() else {
            return;
        };
        if !ctx.sampled {
            return;
        }
        let ns = |d: Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.recorder.trace_annotation(
            &session,
            "fsync_round",
            wait + fsync,
            &[
                ("batch", batch),
                ("leader", u64::from(matches!(role, CommitRole::Leader))),
                ("wait_ns", ns(wait)),
                ("fsync_ns", ns(fsync)),
                ("durable", u64::from(durable)),
            ],
        );
    }
}

/// Retroactively forces a trace for a session whose wall time blew past
/// the slow-session threshold (2× the p99 execution latency, once at
/// least 16 sessions of history exist). The flight recorder still holds
/// every span of the session at this point, so the forced trace is as
/// complete as a sampled one.
fn maybe_force_slow_trace(inner: &ServiceInner, session: &str, elapsed: Duration) {
    if inner.sample_rate <= 0.0 || inner.recorder.has_trace(session) {
        return;
    }
    if inner.metrics.session_latency_count() < 16 {
        return;
    }
    let p99 = inner.metrics.session_latency_p99();
    if p99.is_zero() || elapsed <= p99 * 2 {
        return;
    }
    inner.metrics.trace_forced();
    inner.recorder.mark(session, MARK_SLOW_SESSION, elapsed);
    inner.recorder.set_trace(
        session,
        TraceContext::forced(inner.trace_seed, session),
        true,
    );
}

fn worker_loop(inner: &ServiceInner) {
    loop {
        match inner.queue.recv() {
            Token::Shutdown => break,
            Token::Job => {
                if let Some((id, spec, queued_at)) = inner.queue.pop() {
                    run_job(inner, id, spec, queued_at);
                }
            }
        }
    }
}

/// Best-effort persistence of a terminal session record: the service
/// must stay up even if the `sessions` collection write fails — but the
/// failure is no longer silent: it is counted, marked in the flight
/// recorder, and feeds the degraded-mode fault check. A *schema*
/// violation is a bug (not an environmental fault), so debug builds
/// still assert on that case.
fn persist_session(inner: &ServiceInner, session: &str, state: &str, outcome: &str) {
    // The `traces` collection is only ensured when this session will
    // actually write into it, so an untraced service's journal stays
    // byte-identical to the pre-tracing write path.
    let has_trace = inner.recorder.has_trace(session);
    let result = inner
        .kdb
        .ensure_collection(schema::names::SESSIONS)
        .and_then(|()| {
            if has_trace {
                schema::init_trace_schema(&mut inner.kdb.write())
            } else {
                Ok(())
            }
        })
        .and_then(|()| {
            inner
                .recorder
                .persist(&mut inner.kdb.write(), session, state, outcome)
        });
    if result.is_ok() && has_trace {
        inner.metrics.trace_persisted();
    }
    if let Err(err) = result {
        debug_assert!(
            !matches!(err, ada_kdb::KdbError::Schema(_)),
            "session record for {session} violated the schema: {err}"
        );
        inner.metrics.persist_failed();
        inner
            .recorder
            .mark(session, MARK_PERSIST_FAIL, Duration::ZERO);
    }
    inner.check_degraded(session);
}

fn run_job(inner: &ServiceInner, id: SessionId, spec: JobSpec, queued_at: Instant) {
    let session = spec.config.session.clone();
    let trace_ctx = spec.trace.filter(|ctx| ctx.sampled);
    if let Some(ctx) = trace_ctx {
        inner.recorder.set_trace(&session, ctx, false);
    }
    let wait = queued_at.elapsed();
    inner.metrics.observe_queue_wait(wait);
    inner.recorder.mark(&session, MARK_QUEUE_WAIT, wait);
    if trace_ctx.is_some() {
        inner
            .recorder
            .trace_annotation(&session, "queue_wait", wait, &[]);
    }

    let token = inner
        .registry
        .cancel_token(id)
        .unwrap_or_else(|_| CancelToken::new());
    if token.is_cancelled() {
        inner
            .recorder
            .mark(&session, MARK_CANCELLED, Duration::ZERO);
        persist_session(inner, &session, "cancelled", "cancelled while queued");
        inner.metrics.job_cancelled();
        inner.registry.transition(id, SessionState::Cancelled);
        return;
    }

    let mut targets: Vec<Arc<dyn PipelineObserver>> =
        vec![inner.metrics.clone(), inner.recorder.clone()];
    if let Some(extra) = &inner.extra_observer {
        targets.push(Arc::clone(extra));
    }
    let observer: Arc<dyn PipelineObserver> = Arc::new(FanoutObserver::new(targets));

    // Execution latency (pickup → terminal, retries included) feeds
    // the p50 behind the `Busy` retry hint.
    let started = Instant::now();
    let mut attempt = 0u32;
    loop {
        inner
            .registry
            .transition(id, SessionState::Running { attempt });
        let mut control = RunControl::new()
            .with_cancel_flag(token.flag())
            .with_observer(Arc::clone(&observer));
        if let Some(timeout) = spec.timeout {
            control = control.with_deadline(Instant::now() + timeout);
        }
        if let Some(ctx) = trace_ctx {
            control = control.with_trace(TraceHandle {
                hi: ctx.trace_hi,
                lo: ctx.trace_lo,
                sampled: true,
            });
        }

        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // Publish the trace context on this worker thread for the
            // attempt's duration: layers below the observer seam (the
            // K-DB group committer) attribute their spans through it.
            let _trace_guard =
                trace_ctx.map(|ctx| TraceScope::enter(Arc::from(session.as_str()), ctx));
            if attempt < spec.inject_failures {
                panic!("injected failure on attempt {attempt}");
            }
            match &spec.workload {
                Workload::Pipeline => {
                    let mut pipeline =
                        AdaHealth::with_shared_kdb_isolated(spec.config.clone(), inner.kdb.clone());
                    pipeline
                        .run_controlled(&spec.log, &control)
                        .map(|report| SessionOutcome::Pipeline(Box::new(report)))
                }
                Workload::SafetySignals(signal_config) => ada_signals::run_session(
                    &session,
                    signal_config,
                    &spec.log,
                    &inner.kdb,
                    &control,
                )
                .map(|report| SessionOutcome::Signals(Box::new(report))),
                Workload::StreamMining(stream_spec) => {
                    run_stream_session(inner, &session, stream_spec, &spec.log, &control)
                        .map(|report| SessionOutcome::Stream(Box::new(report)))
                }
            }
        }));

        match outcome {
            Ok(Ok(report)) => {
                let elapsed = started.elapsed();
                inner.metrics.observe_session_latency(elapsed);
                maybe_force_slow_trace(inner, &session, elapsed);
                persist_session(inner, &session, "completed", "");
                inner.metrics.job_completed();
                inner
                    .registry
                    .transition(id, SessionState::Completed(report));
                return;
            }
            Ok(Err(err @ PipelineError::Cancelled { .. })) => {
                let elapsed = started.elapsed();
                inner.metrics.observe_session_latency(elapsed);
                maybe_force_slow_trace(inner, &session, elapsed);
                inner
                    .recorder
                    .mark(&session, MARK_CANCELLED, Duration::ZERO);
                persist_session(inner, &session, "cancelled", &err.to_string());
                inner.metrics.job_cancelled();
                inner.registry.transition(id, SessionState::Cancelled);
                return;
            }
            Ok(Err(err @ PipelineError::DeadlineExceeded { .. })) => {
                // A blown deadline would blow it again on retry.
                let elapsed = started.elapsed();
                inner.metrics.observe_session_latency(elapsed);
                maybe_force_slow_trace(inner, &session, elapsed);
                persist_session(inner, &session, "failed", &err.to_string());
                inner.metrics.job_failed();
                inner.registry.transition(
                    id,
                    SessionState::Failed {
                        reason: err.to_string(),
                    },
                );
                return;
            }
            Err(panic) => {
                if attempt < spec.max_retries {
                    attempt += 1;
                    inner.metrics.job_retried();
                    let backoff = inner.retry.backoff(id, attempt);
                    inner.recorder.mark(&session, MARK_RETRY, backoff);
                    std::thread::sleep(backoff);
                } else {
                    let reason = panic
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "attempt panicked".to_string());
                    let reason = format!("failed after {} attempts: {reason}", attempt + 1);
                    let elapsed = started.elapsed();
                    inner.metrics.observe_session_latency(elapsed);
                    maybe_force_slow_trace(inner, &session, elapsed);
                    persist_session(inner, &session, "failed", &reason);
                    inner.metrics.job_failed();
                    inner
                        .registry
                        .transition(id, SessionState::Failed { reason });
                    return;
                }
            }
        }
    }
}

/// The `StreamMining` workload: replay the session's cohort in
/// timestamp order (seeded bounded disorder re-creates a live feed's
/// jitter while staying inside the lateness bound) through a
/// checkpointing [`StreamEngine`], then seal and report the live
/// model. Because every closed window is durable in `stream_windows`,
/// a retried attempt resumes from the durable watermark and re-folds
/// nothing — the retry path and the crash-replay path are the same
/// code.
fn run_stream_session(
    inner: &ServiceInner,
    session: &str,
    spec: &StreamMiningSpec,
    log: &ExamLog,
    control: &RunControl,
) -> Result<StreamReport, PipelineError> {
    let stage = PipelineStage::StreamMining;
    control.stage(session, stage, || {
        let (mut engine, _resumed) = StreamEngine::open(
            spec.to_config(session),
            Some(inner.kdb.clone()),
            Arc::clone(&inner.stream_metrics),
            Some(Arc::clone(&inner.recorder)),
        )
        .unwrap_or_else(|e| panic!("stream session could not open its checkpoint store: {e}"));
        let records: Vec<ExamRecord> = StreamOrder::new(log, spec.seed, spec.disorder).collect();
        for chunk in records.chunks(spec.chunk.max(1)) {
            control.checkpoint(stage)?;
            engine
                .ingest(chunk)
                .unwrap_or_else(|e| panic!("stream checkpoint write failed: {e}"));
        }
        control.checkpoint(stage)?;
        engine
            .seal()
            .unwrap_or_else(|e| panic!("stream seal failed: {e}"));
        Ok(StreamReport::from_engine(&engine))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_grows() {
        let policy = RetryPolicy::default();
        let a1 = policy.backoff(SessionId(1), 1);
        let a1_again = policy.backoff(SessionId(1), 1);
        assert_eq!(a1, a1_again);
        // Different sessions de-synchronize.
        assert_ne!(a1, policy.backoff(SessionId(2), 1));
        // Monotone-ish growth until the cap, never past cap + base jitter.
        let late = policy.backoff(SessionId(1), 12);
        assert!(late <= policy.cap + policy.base);
        assert!(policy.backoff(SessionId(1), 5) >= policy.base);
    }
}
