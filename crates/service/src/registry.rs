//! The session registry: lifecycle state for every submitted session.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Condvar, Mutex};

use ada_core::SessionReport;
use ada_signals::SignalSessionReport;
use ada_stream::StreamReport;

use crate::cancel::CancelToken;
use crate::error::ServiceError;

/// Opaque identifier of one submitted session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session#{}", self.0)
    }
}

/// What a completed session produced, by workload. Either variant is
/// the same value a serial run of the same spec produces — concurrency
/// changes wall-clock, never results.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionOutcome {
    /// A full seven-stage pipeline run.
    Pipeline(Box<SessionReport>),
    /// A safety-signal mining run.
    Signals(Box<SignalSessionReport>),
    /// A streaming ingestion + incremental mining run.
    Stream(Box<StreamReport>),
}

impl SessionOutcome {
    /// The pipeline report, if this was a pipeline session.
    pub fn pipeline(&self) -> Option<&SessionReport> {
        match self {
            SessionOutcome::Pipeline(report) => Some(report),
            _ => None,
        }
    }

    /// The signal-mining report, if this was a signals session.
    pub fn signals(&self) -> Option<&SignalSessionReport> {
        match self {
            SessionOutcome::Signals(report) => Some(report),
            _ => None,
        }
    }

    /// The stream-mining report, if this was a streaming session.
    pub fn stream(&self) -> Option<&StreamReport> {
        match self {
            SessionOutcome::Stream(report) => Some(report),
            _ => None,
        }
    }
}

/// Lifecycle of a session:
/// `Queued → Running → Completed | Failed | Cancelled`.
///
/// `Running` may recur with increasing `attempt` when retries kick in;
/// the other three states are terminal.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionState {
    /// Accepted and waiting for a worker.
    Queued,
    /// Executing its `attempt`-th try (0-based).
    Running {
        /// 0-based attempt counter (> 0 after retries).
        attempt: u32,
    },
    /// Finished; the outcome is the same value a serial run produces.
    Completed(SessionOutcome),
    /// Gave up: panicked past the retry budget, or exceeded its deadline.
    Failed {
        /// Human-readable failure cause.
        reason: String,
    },
    /// Cancellation was observed at a pipeline checkpoint (or before the
    /// session started).
    Cancelled,
}

impl SessionState {
    /// Whether the state is terminal (no further transitions).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            SessionState::Completed(_) | SessionState::Failed { .. } | SessionState::Cancelled
        )
    }

    /// Short state label for summaries (`queued`, `running`,
    /// `completed`, `failed`, `cancelled`).
    pub fn label(&self) -> &'static str {
        match self {
            SessionState::Queued => "queued",
            SessionState::Running { .. } => "running",
            SessionState::Completed(_) => "completed",
            SessionState::Failed { .. } => "failed",
            SessionState::Cancelled => "cancelled",
        }
    }
}

struct Entry {
    name: String,
    state: SessionState,
    cancel: CancelToken,
}

/// Tracks every session's lifecycle; blocking waits are condvar-based.
#[derive(Default)]
pub struct SessionRegistry {
    inner: Mutex<Inner>,
    changed: Condvar,
}

#[derive(Default)]
struct Inner {
    next_id: u64,
    entries: BTreeMap<SessionId, Entry>,
}

impl SessionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new session in the `Queued` state and returns its id.
    pub fn register(&self, name: impl Into<String>, cancel: CancelToken) -> SessionId {
        let mut inner = self.inner.lock().expect("registry lock");
        let id = SessionId(inner.next_id);
        inner.next_id += 1;
        inner.entries.insert(
            id,
            Entry {
                name: name.into(),
                state: SessionState::Queued,
                cancel,
            },
        );
        id
    }

    /// Removes a session that never ran (submission rolled back).
    pub(crate) fn remove(&self, id: SessionId) {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.entries.remove(&id);
    }

    /// Moves a session to a new state and wakes waiters.
    ///
    /// Terminal states are sticky: once a session completed, failed, or
    /// was cancelled, further transitions are ignored.
    pub fn transition(&self, id: SessionId, state: SessionState) {
        let mut inner = self.inner.lock().expect("registry lock");
        if let Some(entry) = inner.entries.get_mut(&id) {
            if !entry.state.is_terminal() {
                entry.state = state;
                self.changed.notify_all();
            }
        }
    }

    /// The current state of a session.
    pub fn state(&self, id: SessionId) -> Result<SessionState, ServiceError> {
        let inner = self.inner.lock().expect("registry lock");
        inner
            .entries
            .get(&id)
            .map(|e| e.state.clone())
            .ok_or(ServiceError::UnknownSession(id))
    }

    /// The session's cancellation token.
    pub fn cancel_token(&self, id: SessionId) -> Result<CancelToken, ServiceError> {
        let inner = self.inner.lock().expect("registry lock");
        inner
            .entries
            .get(&id)
            .map(|e| e.cancel.clone())
            .ok_or(ServiceError::UnknownSession(id))
    }

    /// Blocks until the session reaches a terminal state, then returns it.
    pub fn wait(&self, id: SessionId) -> Result<SessionState, ServiceError> {
        let mut inner = self.inner.lock().expect("registry lock");
        loop {
            match inner.entries.get(&id) {
                None => return Err(ServiceError::UnknownSession(id)),
                Some(entry) if entry.state.is_terminal() => return Ok(entry.state.clone()),
                Some(_) => {
                    inner = self.changed.wait(inner).expect("registry lock");
                }
            }
        }
    }

    /// Every session as `(id, session name, state)`, id-ordered.
    pub fn sessions(&self) -> Vec<(SessionId, String, SessionState)> {
        let inner = self.inner.lock().expect("registry lock");
        inner
            .entries
            .iter()
            .map(|(id, e)| (*id, e.name.clone(), e.state.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lifecycle_transitions_and_sticky_terminals() {
        let reg = SessionRegistry::new();
        let id = reg.register("a", CancelToken::new());
        assert_eq!(reg.state(id).unwrap(), SessionState::Queued);
        reg.transition(id, SessionState::Running { attempt: 0 });
        assert_eq!(reg.state(id).unwrap().label(), "running");
        reg.transition(id, SessionState::Cancelled);
        // Terminal states win races against late transitions.
        reg.transition(
            id,
            SessionState::Failed {
                reason: "late".into(),
            },
        );
        assert_eq!(reg.state(id).unwrap(), SessionState::Cancelled);
    }

    #[test]
    fn unknown_sessions_are_reported() {
        let reg = SessionRegistry::new();
        assert_eq!(
            reg.state(SessionId(9)),
            Err(ServiceError::UnknownSession(SessionId(9)))
        );
        assert!(reg.wait(SessionId(9)).is_err());
    }

    #[test]
    fn wait_unblocks_on_terminal_transition() {
        let reg = Arc::new(SessionRegistry::new());
        let id = reg.register("w", CancelToken::new());
        let waiter = {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || reg.wait(id).unwrap())
        };
        reg.transition(id, SessionState::Running { attempt: 0 });
        reg.transition(
            id,
            SessionState::Failed {
                reason: "boom".into(),
            },
        );
        assert_eq!(waiter.join().unwrap().label(), "failed");
    }

    #[test]
    fn ids_are_unique_and_ordered() {
        let reg = SessionRegistry::new();
        let a = reg.register("a", CancelToken::new());
        let b = reg.register("b", CancelToken::new());
        assert!(a < b);
        assert_eq!(reg.sessions().len(), 2);
        reg.remove(a);
        assert_eq!(reg.sessions().len(), 1);
    }
}
