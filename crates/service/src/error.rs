//! Service-level errors.

use std::fmt;
use std::time::Duration;

use crate::registry::SessionId;

/// Why a service operation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The bounded job queue is at capacity — backpressure: the caller
    /// should retry after `retry_after_hint` or shed load. (This is the
    /// error formerly named `QueueFull`; the hint is derived from queue
    /// depth × recent p50 session latency, so wire and in-process
    /// callers see identical retry guidance.)
    Busy {
        /// The queue's configured capacity.
        capacity: usize,
        /// Estimated wait until a retry could be accepted.
        retry_after_hint: Duration,
    },
    /// No session with that id was ever registered.
    UnknownSession(SessionId),
    /// The service is shutting down and no longer accepts submissions.
    ShuttingDown,
    /// The service is in degraded read-only mode after repeated journal
    /// faults: reads and status queries still work, mutating work is
    /// refused until the operator restarts over healthy storage.
    Degraded,
    /// The service is a replication follower: reads and status queries
    /// are served from the warm standby, mutating work belongs on the
    /// primary. Unlike [`ServiceError::Degraded`] this is not sticky —
    /// promotion ([`crate::AnalysisService::promote`]) clears it.
    Follower,
    /// No open ingestion stream with that name (open one with
    /// [`crate::AnalysisService::stream_open`]).
    UnknownStream(String),
    /// The ingestion stream's worker faulted — a checkpoint write
    /// failed or the durable history did not replay cleanly — and the
    /// stream is poisoned until reopened.
    StreamFault(String),
}

impl ServiceError {
    /// Retry guidance: `Some(wait)` when retrying can help (`Busy`),
    /// `None` when it cannot — `Degraded` is sticky until an operator
    /// restarts the service, and the other variants are not
    /// retry-shaped at all.
    pub fn retry_after_hint(&self) -> Option<Duration> {
        match self {
            ServiceError::Busy {
                retry_after_hint, ..
            } => Some(*retry_after_hint),
            _ => None,
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Busy {
                capacity,
                retry_after_hint,
            } => {
                write!(
                    f,
                    "job queue is full (capacity {capacity}); retry after ~{retry_after_hint:?}"
                )
            }
            ServiceError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Degraded => {
                write!(f, "service is degraded (read-only) after journal faults")
            }
            ServiceError::Follower => {
                write!(
                    f,
                    "service is a replication follower (read-only); submit to the primary"
                )
            }
            ServiceError::UnknownStream(name) => {
                write!(f, "no open ingestion stream named {name:?}")
            }
            ServiceError::StreamFault(msg) => write!(f, "ingestion stream faulted: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_implement_error() {
        let busy = ServiceError::Busy {
            capacity: 8,
            retry_after_hint: Duration::from_millis(40),
        };
        assert!(busy.to_string().contains("capacity 8"));
        assert!(busy.to_string().contains("retry after"));
        assert_eq!(busy.retry_after_hint(), Some(Duration::from_millis(40)));
        assert!(ServiceError::UnknownSession(SessionId(3))
            .to_string()
            .contains('3'));
        assert_eq!(
            ServiceError::ShuttingDown.to_string(),
            "service is shutting down"
        );
        assert!(ServiceError::Degraded.to_string().contains("read-only"));
        assert_eq!(ServiceError::Degraded.retry_after_hint(), None);
        assert!(ServiceError::Follower.to_string().contains("primary"));
        assert_eq!(ServiceError::Follower.retry_after_hint(), None);
        assert!(ServiceError::UnknownStream("feed".into())
            .to_string()
            .contains("feed"));
        assert!(ServiceError::StreamFault("oops".into())
            .to_string()
            .contains("oops"));
        let _: &dyn std::error::Error = &busy;
    }
}
