//! Service-level errors.

use std::fmt;

use crate::registry::SessionId;

/// Why a service operation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The bounded job queue is at capacity — backpressure: the caller
    /// should retry later or shed load.
    QueueFull {
        /// The queue's configured capacity.
        capacity: usize,
    },
    /// No session with that id was ever registered.
    UnknownSession(SessionId),
    /// The service is shutting down and no longer accepts submissions.
    ShuttingDown,
    /// The service is in degraded read-only mode after repeated journal
    /// faults: reads and status queries still work, mutating work is
    /// refused until the operator restarts over healthy storage.
    Degraded,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::QueueFull { capacity } => {
                write!(f, "job queue is full (capacity {capacity})")
            }
            ServiceError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Degraded => {
                write!(f, "service is degraded (read-only) after journal faults")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_implement_error() {
        let full = ServiceError::QueueFull { capacity: 8 };
        assert_eq!(full.to_string(), "job queue is full (capacity 8)");
        assert!(ServiceError::UnknownSession(SessionId(3))
            .to_string()
            .contains('3'));
        assert_eq!(
            ServiceError::ShuttingDown.to_string(),
            "service is shutting down"
        );
        assert!(ServiceError::Degraded.to_string().contains("read-only"));
        let _: &dyn std::error::Error = &full;
    }
}
