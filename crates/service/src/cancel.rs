//! Cooperative cancellation tokens.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared, one-way cancellation flag.
///
/// Cloning yields another handle to the same flag. Once cancelled, a
/// token never un-cancels — checkpoints downstream rely on the flag
/// being monotonic.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation (idempotent).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// The underlying flag, in the form
    /// [`RunControl::with_cancel_flag`](ada_core::RunControl::with_cancel_flag)
    /// accepts.
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
        assert!(b.flag().load(Ordering::Acquire));
    }
}
