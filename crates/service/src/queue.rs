//! The bounded, prioritized job queue feeding the worker pool.
//!
//! Storage is a binary heap ordered by `(priority, submission order)`;
//! a crossbeam channel carries wake-up tokens so workers block cheaply
//! instead of spinning. The channel is strictly FIFO, which gives
//! graceful shutdown for free: shutdown tokens sent after the last job
//! token are only seen once every queued job has been drained.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Mutex;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::job::Priority;

/// What a worker wakes up to do.
#[derive(Debug)]
pub(crate) enum Token {
    /// One job is available in the heap.
    Job,
    /// Stop after draining: the sender guarantees no Job token follows.
    Shutdown,
}

struct QueuedJob<T> {
    priority: Priority,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for QueuedJob<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl<T> Eq for QueuedJob<T> {}
impl<T> PartialOrd for QueuedJob<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for QueuedJob<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: higher priority first, then lower seq (FIFO within
        // a priority class).
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

/// A bounded priority queue with channel-based worker wake-up.
pub(crate) struct JobQueue<T> {
    heap: Mutex<Heap<T>>,
    capacity: usize,
    wake_tx: Sender<Token>,
    wake_rx: Receiver<Token>,
}

struct Heap<T> {
    jobs: BinaryHeap<QueuedJob<T>>,
    next_seq: u64,
}

impl<T> JobQueue<T> {
    pub(crate) fn bounded(capacity: usize) -> Self {
        let (wake_tx, wake_rx) = unbounded();
        Self {
            heap: Mutex::new(Heap {
                jobs: BinaryHeap::new(),
                next_seq: 0,
            }),
            capacity,
            wake_tx,
            wake_rx,
        }
    }

    /// Enqueues a job, or refuses with the queue's capacity
    /// (backpressure — the service layers a retry hint on top to build
    /// the caller-facing `ServiceError::Busy`).
    pub(crate) fn push(&self, priority: Priority, payload: T) -> Result<(), usize> {
        let mut heap = self.heap.lock().expect("queue lock");
        if heap.jobs.len() >= self.capacity {
            return Err(self.capacity);
        }
        let seq = heap.next_seq;
        heap.next_seq += 1;
        heap.jobs.push(QueuedJob {
            priority,
            seq,
            payload,
        });
        drop(heap);
        self.wake_tx.send(Token::Job).expect("wake channel closed");
        Ok(())
    }

    /// Pops the highest-priority job, if any.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut heap = self.heap.lock().expect("queue lock");
        heap.jobs.pop().map(|j| j.payload)
    }

    /// Current queue depth.
    pub(crate) fn len(&self) -> usize {
        self.heap.lock().expect("queue lock").jobs.len()
    }

    /// Blocks until a wake-up token arrives.
    pub(crate) fn recv(&self) -> Token {
        // The sender half lives in the same struct, so recv can only
        // fail if the queue itself is being dropped mid-recv.
        self.wake_rx.recv().unwrap_or(Token::Shutdown)
    }

    /// Tells `workers` workers to stop once the queue is drained.
    pub(crate) fn send_shutdown(&self, workers: usize) {
        for _ in 0..workers {
            let _ = self.wake_tx.send(Token::Shutdown);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_priority_then_fifo() {
        let q = JobQueue::bounded(8);
        q.push(Priority::Low, "low-1").unwrap();
        q.push(Priority::High, "high-1").unwrap();
        q.push(Priority::Normal, "norm-1").unwrap();
        q.push(Priority::High, "high-2").unwrap();
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec!["high-1", "high-2", "norm-1", "low-1"]);
    }

    #[test]
    fn refuses_beyond_capacity() {
        let q = JobQueue::bounded(2);
        q.push(Priority::Normal, 1).unwrap();
        q.push(Priority::Normal, 2).unwrap();
        assert_eq!(q.push(Priority::Normal, 3), Err(2));
        assert_eq!(q.len(), 2);
        q.pop();
        q.push(Priority::Normal, 3).unwrap();
    }

    #[test]
    fn shutdown_tokens_arrive_after_job_tokens() {
        let q = JobQueue::bounded(4);
        q.push(Priority::Normal, ()).unwrap();
        q.send_shutdown(1);
        assert!(matches!(q.recv(), Token::Job));
        assert!(matches!(q.recv(), Token::Shutdown));
    }
}
