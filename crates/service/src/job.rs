//! Job specifications submitted to the analysis service.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use ada_core::AdaHealthConfig;
use ada_dataset::ExamLog;
use ada_obs::TraceContext;
use ada_signals::SignalConfig;
use ada_stream::StreamMiningSpec;

use crate::cancel::CancelToken;

/// Scheduling priority of a job. Higher priorities are dequeued first;
/// within a priority, jobs run in submission order (FIFO).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Background work (bulk re-analysis, speculative sweeps).
    Low,
    /// The default.
    Normal,
    /// Interactive sessions a user is waiting on.
    High,
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        })
    }
}

/// Which analysis workload a session runs. All workloads share the
/// same lifecycle, scheduling, cancellation, retry, and observability
/// machinery; only the work inside the session differs.
#[derive(Debug, Clone, Default)]
pub enum Workload {
    /// The paper's full seven-stage pipeline (the default).
    #[default]
    Pipeline,
    /// Ranked safety-signal mining (ROR + Bayesian shrinkage) over the
    /// same cohort, persisting into the `signal_knowledge` collection.
    SafetySignals(SignalConfig),
    /// Streaming ingestion with incremental re-mining: the session
    /// replays its cohort in timestamp order (seeded bounded disorder,
    /// exercising the reorder buffer) through an `ada_stream`
    /// engine, checkpointing every closed window into the
    /// `stream_windows` collection, and reports the live model.
    StreamMining(StreamMiningSpec),
}

/// One analysis session to run: a pipeline configuration plus its input
/// log and scheduling knobs.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The pipeline configuration (its `session` string names the
    /// session in K-DB documents and observer events).
    pub config: AdaHealthConfig,
    /// The workload the session runs (default: the full pipeline).
    pub workload: Workload,
    /// The examination log to analyze; `Arc` so a fleet of jobs can
    /// share one cohort without copying it.
    pub log: Arc<ExamLog>,
    /// Scheduling priority.
    pub priority: Priority,
    /// Per-attempt wall-clock budget; exceeding it fails the session.
    pub timeout: Option<Duration>,
    /// How many times a panicking attempt is retried before the session
    /// is marked failed.
    pub max_retries: u32,
    /// Test/chaos hook: the first `inject_failures` attempts panic
    /// artificially, exercising the retry path deterministically.
    pub inject_failures: u32,
    /// Optional caller-provided cancellation token, so the submitter can
    /// hold a cancel handle that exists before the job is enqueued.
    pub cancel: Option<CancelToken>,
    /// Trace context the request arrived with (minted at
    /// `Client::submit` for remote callers). `None` lets the service
    /// mint one itself under its configured sample rate; an explicit
    /// context — sampled or not — wins over minting, so client and
    /// server agree on one identity per request.
    pub trace: Option<TraceContext>,
}

impl JobSpec {
    /// A job with default scheduling: normal priority, no timeout, two
    /// retries, no injected failures.
    pub fn new(config: AdaHealthConfig, log: impl Into<Arc<ExamLog>>) -> Self {
        Self {
            config,
            workload: Workload::Pipeline,
            log: log.into(),
            priority: Priority::Normal,
            timeout: None,
            max_retries: 2,
            inject_failures: 0,
            cancel: None,
            trace: None,
        }
    }

    /// Selects the workload the session runs.
    #[must_use]
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// Sets the scheduling priority.
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the per-attempt deadline.
    #[must_use]
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Sets the retry budget.
    #[must_use]
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Makes the first `n` attempts panic (test/chaos hook).
    #[must_use]
    pub fn inject_failures(mut self, n: u32) -> Self {
        self.inject_failures = n;
        self
    }

    /// Attaches a caller-held cancellation token.
    #[must_use]
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attaches an externally minted trace context (the net server uses
    /// this for contexts that crossed the ADAN1 wire).
    #[must_use]
    pub fn trace(mut self, trace: TraceContext) -> Self {
        self.trace = Some(trace);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ada_dataset::synthetic::{generate, SyntheticConfig};

    #[test]
    fn priorities_order_low_to_high() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
        assert_eq!(Priority::High.to_string(), "high");
    }

    #[test]
    fn builder_sets_every_knob() {
        let log = generate(&SyntheticConfig::small(), 1);
        let token = CancelToken::new();
        let spec = JobSpec::new(AdaHealthConfig::quick("s"), log)
            .priority(Priority::High)
            .timeout(Duration::from_secs(5))
            .max_retries(7)
            .inject_failures(1)
            .cancel_token(token.clone());
        assert_eq!(spec.priority, Priority::High);
        assert_eq!(spec.timeout, Some(Duration::from_secs(5)));
        assert_eq!(spec.max_retries, 7);
        assert_eq!(spec.inject_failures, 1);
        token.cancel();
        assert!(spec.cancel.as_ref().unwrap().is_cancelled());
    }
}
