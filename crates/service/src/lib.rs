//! `ada-service`: a concurrent multi-session analysis service over the
//! shared K-DB.
//!
//! The paper's vision is an *automated* analytics flow: many analysis
//! sessions — one per cohort, per parameter sweep, per clinician
//! question — running against one accumulating knowledge base. This
//! crate provides the serving layer for that flow:
//!
//! - [`AnalysisService`]: a fixed pool of worker threads draining a
//!   bounded, prioritized job queue. Submission applies backpressure
//!   ([`ServiceError::Busy`], carrying a retry hint derived from queue
//!   depth × recent p50 session latency) instead of buffering without
//!   bound.
//! - [`SessionRegistry`] semantics via [`SessionState`]:
//!   `Queued → Running → Completed | Failed | Cancelled`, with blocking
//!   [`AnalysisService::wait`] and cooperative [`CancelToken`]s that the
//!   pipeline polls at stage boundaries.
//! - Retry with capped, seeded exponential backoff ([`RetryPolicy`]) for
//!   attempts that panic, and per-session deadlines.
//! - Observability: [`MetricsObserver`] aggregates queue depth,
//!   per-stage latency, and outcome counters into [`ServiceMetrics`];
//!   callers can fan events out to their own
//!   [`PipelineObserver`](ada_core::PipelineObserver) too.
//!
//! Sessions run through
//! [`AdaHealth::with_shared_kdb_isolated`](ada_core::AdaHealth::with_shared_kdb_isolated),
//! so each session's `SessionReport` is byte-identical to a serial run
//! of the same configuration and seed — concurrency changes wall-clock,
//! never results.

#![warn(missing_docs)]

mod cancel;
mod error;
mod job;
mod observer;
mod queue;
mod registry;
mod service;

pub use cancel::CancelToken;
pub use error::ServiceError;
pub use job::{JobSpec, Priority, Workload};
pub use observer::{FanoutObserver, MetricsObserver, ServiceMetrics, StageMetrics};
pub use registry::{SessionId, SessionOutcome, SessionRegistry, SessionState};
pub use service::{AnalysisService, RetryPolicy, ServiceConfig, DEFAULT_TRACE_SEED};
