//! Service-side observers: metrics aggregation and observer fan-out.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ada_core::{PipelineObserver, PipelineStage};

/// Aggregates service-level counters and per-stage latencies.
///
/// All counters are lock-free; the per-stage latency table takes a short
/// mutex on stage completion only.
#[derive(Debug, Default)]
pub struct MetricsObserver {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    retried: AtomicU64,
    rejected: AtomicU64,
    max_queue_depth: AtomicUsize,
    stages: Mutex<BTreeMap<&'static str, StageStat>>,
}

#[derive(Debug, Default, Clone, Copy)]
struct StageStat {
    runs: u64,
    total: Duration,
}

impl MetricsObserver {
    /// A fresh, zeroed metrics collector.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn job_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn job_completed(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn job_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn job_cancelled(&self) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn job_retried(&self) {
        self.retried.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn job_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn observe_queue_depth(&self, depth: usize) {
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// A point-in-time snapshot of every metric.
    pub fn snapshot(&self) -> ServiceMetrics {
        let stages = self
            .stages
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|(name, stat)| {
                let mean = if stat.runs > 0 {
                    stat.total / u32::try_from(stat.runs).unwrap_or(u32::MAX)
                } else {
                    Duration::ZERO
                };
                (
                    *name,
                    StageMetrics {
                        runs: stat.runs,
                        total: stat.total,
                        mean,
                    },
                )
            })
            .collect();
        ServiceMetrics {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            stages,
        }
    }
}

impl PipelineObserver for MetricsObserver {
    fn on_stage_end(&self, _session: &str, stage: PipelineStage, elapsed: Duration) {
        let mut stages = self.stages.lock().expect("metrics lock");
        let stat = stages.entry(stage.name()).or_default();
        stat.runs += 1;
        stat.total += elapsed;
    }
}

/// Latency statistics for one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageMetrics {
    /// How many times the stage ran to completion.
    pub runs: u64,
    /// Total wall-clock time across runs.
    pub total: Duration,
    /// `total / runs` (zero when the stage never ran).
    pub mean: Duration,
}

/// A frozen snapshot of service metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Sessions that produced a report.
    pub completed: u64,
    /// Sessions that exhausted retries or hit their deadline.
    pub failed: u64,
    /// Sessions cancelled before or during execution.
    pub cancelled: u64,
    /// Individual retry attempts across all sessions.
    pub retried: u64,
    /// Submissions refused with `QueueFull`.
    pub rejected: u64,
    /// High-water mark of the job queue depth.
    pub max_queue_depth: usize,
    /// Per-stage latency statistics, keyed by stage name.
    pub stages: BTreeMap<&'static str, StageMetrics>,
}

/// Forwards pipeline events to several observers in order.
pub struct FanoutObserver {
    targets: Vec<Arc<dyn PipelineObserver>>,
}

impl FanoutObserver {
    /// An observer broadcasting to `targets`.
    pub fn new(targets: Vec<Arc<dyn PipelineObserver>>) -> Self {
        Self { targets }
    }
}

impl PipelineObserver for FanoutObserver {
    fn on_stage_start(&self, session: &str, stage: PipelineStage) {
        for t in &self.targets {
            t.on_stage_start(session, stage);
        }
    }
    fn on_stage_end(&self, session: &str, stage: PipelineStage, elapsed: Duration) {
        for t in &self.targets {
            t.on_stage_end(session, stage, elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_stage_latency_aggregate() {
        let m = MetricsObserver::new();
        m.job_submitted();
        m.job_submitted();
        m.job_completed();
        m.job_retried();
        m.observe_queue_depth(3);
        m.observe_queue_depth(1);
        m.on_stage_end("s", PipelineStage::Transform, Duration::from_millis(10));
        m.on_stage_end("s", PipelineStage::Transform, Duration::from_millis(30));
        let snap = m.snapshot();
        assert_eq!(snap.submitted, 2);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.retried, 1);
        assert_eq!(snap.max_queue_depth, 3);
        let t = &snap.stages["transform"];
        assert_eq!(t.runs, 2);
        assert_eq!(t.mean, Duration::from_millis(20));
    }

    #[test]
    fn fanout_reaches_every_target() {
        let a = Arc::new(MetricsObserver::new());
        let b = Arc::new(MetricsObserver::new());
        let fan = FanoutObserver::new(vec![a.clone(), b.clone()]);
        fan.on_stage_end("s", PipelineStage::Optimize, Duration::from_millis(5));
        assert_eq!(a.snapshot().stages["optimize"].runs, 1);
        assert_eq!(b.snapshot().stages["optimize"].runs, 1);
    }
}
