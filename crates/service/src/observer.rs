//! Service-side observers: histogram-based metrics aggregation and
//! observer fan-out.
//!
//! [`MetricsObserver`] keeps one [`Log2Histogram`] per pipeline stage
//! (plus one for queue wait), so the snapshot reports p50/p90/p99
//! latencies without allocation on the recording path — the old
//! total/count pairs survive as the `runs`/`total`/`mean` fields,
//! derived from the same histograms.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ada_core::{PipelineObserver, PipelineStage};
use ada_kdb::{Document, GroupCommitSnapshot, Value};
use ada_obs::hist::HistogramSnapshot;
use ada_obs::{document_to_json, Log2Histogram};

/// Aggregates service-level counters and per-stage latency histograms.
///
/// Everything on the recording path is lock-free: counters are relaxed
/// atomics and stage latencies land in fixed-bucket log2 histograms.
#[derive(Debug, Default)]
pub struct MetricsObserver {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    retried: AtomicU64,
    rejected: AtomicU64,
    persist_failures: AtomicU64,
    journal_faults: AtomicU64,
    degraded_transitions: AtomicU64,
    max_queue_depth: AtomicUsize,
    signals_tables_built: AtomicU64,
    signals_zero_cell_corrections: AtomicU64,
    signals_shrinkage_iterations: AtomicU64,
    signals_emitted: AtomicU64,
    traces_persisted: AtomicU64,
    traces_forced: AtomicU64,
    stages: [Log2Histogram; PipelineStage::ALL.len()],
    queue_wait: Log2Histogram,
    session_latency: Log2Histogram,
}

impl MetricsObserver {
    /// A fresh, zeroed metrics collector.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn job_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn job_completed(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn job_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn job_cancelled(&self) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn job_retried(&self) {
        self.retried.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn job_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn persist_failed(&self) {
        self.persist_failures.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn degraded_transition(&self) {
        self.degraded_transitions.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn trace_persisted(&self) {
        self.traces_persisted.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn trace_forced(&self) {
        self.traces_forced.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the K-DB's journal fault count (monotone: keeps the
    /// larger of the stored and observed values so concurrent observers
    /// cannot regress it).
    pub(crate) fn set_journal_faults(&self, observed: u64) {
        self.journal_faults.fetch_max(observed, Ordering::Relaxed);
    }

    /// Raises the queue-depth high-water mark to `depth` if higher.
    ///
    /// A compare-exchange loop rather than a blind store: two threads
    /// observing depths 3 and 5 concurrently must never let 3 overwrite
    /// 5, regardless of interleaving.
    pub(crate) fn observe_queue_depth(&self, depth: usize) {
        let mut seen = self.max_queue_depth.load(Ordering::Relaxed);
        while depth > seen {
            match self.max_queue_depth.compare_exchange_weak(
                seen,
                depth,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => seen = actual,
            }
        }
    }

    pub(crate) fn observe_queue_wait(&self, wait: Duration) {
        self.queue_wait.record_duration(wait);
    }

    /// Records one session's wall-clock execution latency (worker
    /// pickup → terminal state, retries included). Feeds the p50 the
    /// `Busy` retry hint is derived from.
    pub(crate) fn observe_session_latency(&self, latency: Duration) {
        self.session_latency.record_duration(latency);
    }

    /// Median session execution latency so far (zero before any session
    /// finished).
    pub(crate) fn session_latency_p50(&self) -> Duration {
        Duration::from_nanos(self.session_latency.quantile(0.5))
    }

    /// 99th-percentile session execution latency so far — the base of
    /// the slow-session threshold.
    pub(crate) fn session_latency_p99(&self) -> Duration {
        Duration::from_nanos(self.session_latency.quantile(0.99))
    }

    /// How many sessions have reported an execution latency (the
    /// slow-session log stays quiet until enough history exists).
    pub(crate) fn session_latency_count(&self) -> u64 {
        self.session_latency.snapshot().count
    }

    /// A point-in-time snapshot of every metric.
    pub fn snapshot(&self) -> ServiceMetrics {
        let stages = PipelineStage::ALL
            .iter()
            .filter_map(|stage| {
                let snap = self.stages[stage.index()].snapshot();
                (snap.count > 0).then(|| (stage.name(), StageMetrics::from_snapshot(&snap)))
            })
            .collect();
        ServiceMetrics {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            persist_failures: self.persist_failures.load(Ordering::Relaxed),
            journal_faults: self.journal_faults.load(Ordering::Relaxed),
            degraded_transitions: self.degraded_transitions.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            signals_tables_built: self.signals_tables_built.load(Ordering::Relaxed),
            signals_zero_cell_corrections: self
                .signals_zero_cell_corrections
                .load(Ordering::Relaxed),
            signals_shrinkage_iterations: self.signals_shrinkage_iterations.load(Ordering::Relaxed),
            signals_emitted: self.signals_emitted.load(Ordering::Relaxed),
            traces_persisted: self.traces_persisted.load(Ordering::Relaxed),
            traces_forced: self.traces_forced.load(Ordering::Relaxed),
            events_dropped: 0,
            queue_wait: StageMetrics::from_snapshot(&self.queue_wait.snapshot()),
            session_latency: StageMetrics::from_snapshot(&self.session_latency.snapshot()),
            stages,
            kdb: GroupCommitSnapshot::default(),
        }
    }
}

impl PipelineObserver for MetricsObserver {
    fn on_stage_end(&self, _session: &str, stage: PipelineStage, elapsed: Duration) {
        self.stages[stage.index()].record_duration(elapsed);
    }

    fn on_counters(&self, _session: &str, _stage: PipelineStage, counters: &[(&'static str, u64)]) {
        for &(name, value) in counters {
            let target = match name {
                "signals_tables_built" => &self.signals_tables_built,
                "signals_zero_cell_corrections" => &self.signals_zero_cell_corrections,
                "signals_shrinkage_iterations" => &self.signals_shrinkage_iterations,
                "signals_emitted" => &self.signals_emitted,
                _ => continue,
            };
            target.fetch_add(value, Ordering::Relaxed);
        }
    }
}

/// Latency statistics for one pipeline stage (or the queue wait),
/// derived from its log2 histogram. `p50`/`p90`/`p99` carry the
/// histogram's ~2× bucket resolution; `total` and `mean` are exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageMetrics {
    /// How many times the stage ran to completion.
    pub runs: u64,
    /// Total wall-clock time across runs (exact).
    pub total: Duration,
    /// `total / runs` (zero when the stage never ran; exact).
    pub mean: Duration,
    /// Median latency (bucket midpoint).
    pub p50: Duration,
    /// 90th-percentile latency (bucket midpoint).
    pub p90: Duration,
    /// 99th-percentile latency (bucket midpoint).
    pub p99: Duration,
}

impl StageMetrics {
    fn from_snapshot(snap: &HistogramSnapshot) -> Self {
        let mean = snap
            .sum
            .checked_div(snap.count)
            .map_or(Duration::ZERO, Duration::from_nanos);
        Self {
            runs: snap.count,
            total: Duration::from_nanos(snap.sum),
            mean,
            p50: Duration::from_nanos(snap.p50()),
            p90: Duration::from_nanos(snap.p90()),
            p99: Duration::from_nanos(snap.p99()),
        }
    }

    fn to_document(self) -> Document {
        let ns = |d: Duration| i64::try_from(d.as_nanos()).unwrap_or(i64::MAX);
        Document::new()
            .with("runs", i64::try_from(self.runs).unwrap_or(i64::MAX))
            .with("total_ns", ns(self.total))
            .with("mean_ns", ns(self.mean))
            .with("p50_ns", ns(self.p50))
            .with("p90_ns", ns(self.p90))
            .with("p99_ns", ns(self.p99))
    }
}

/// A frozen snapshot of service metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Sessions that produced a report.
    pub completed: u64,
    /// Sessions that exhausted retries or hit their deadline.
    pub failed: u64,
    /// Sessions cancelled before or during execution.
    pub cancelled: u64,
    /// Individual retry attempts across all sessions.
    pub retried: u64,
    /// Submissions refused with `Busy` (queue full).
    pub rejected: u64,
    /// Terminal session records that failed to persist to the K-DB.
    pub persist_failures: u64,
    /// Journal faults (failed appends + swallowed fsync failures)
    /// observed on the shared K-DB since the service started.
    pub journal_faults: u64,
    /// Transitions into degraded read-only mode (0 or 1 per process).
    pub degraded_transitions: u64,
    /// High-water mark of the job queue depth.
    pub max_queue_depth: usize,
    /// Contingency tables built by safety-signal sessions.
    pub signals_tables_built: u64,
    /// Haldane–Anscombe zero-cell corrections applied by signal sessions.
    pub signals_zero_cell_corrections: u64,
    /// Shrinkage prior-fit iterations across signal sessions.
    pub signals_shrinkage_iterations: u64,
    /// Ranked safety signals emitted (post-truncation).
    pub signals_emitted: u64,
    /// Terminal trace documents persisted to the `traces` collection.
    pub traces_persisted: u64,
    /// Traces forced retroactively by the slow-session log.
    pub traces_forced: u64,
    /// Span events lost to flight-recorder ring overflow. Filled in by
    /// `AnalysisService::metrics`; zero when the observer is
    /// snapshotted directly.
    pub events_dropped: u64,
    /// Latency jobs spent queued before a worker picked them up.
    pub queue_wait: StageMetrics,
    /// Whole-session execution latency (worker pickup → terminal state,
    /// retries included). Its p50 feeds the `Busy` retry hint.
    pub session_latency: StageMetrics,
    /// Per-stage latency statistics, keyed by stage name.
    pub stages: BTreeMap<&'static str, StageMetrics>,
    /// The shared K-DB's group-commit counters (batch sizes, flush
    /// latency, journal watermarks). Filled in by
    /// `AnalysisService::metrics`; zero when the observer is snapshotted
    /// directly.
    pub kdb: GroupCommitSnapshot,
}

impl ServiceMetrics {
    /// Whether the service had entered degraded read-only mode when
    /// this snapshot was taken.
    pub fn degraded(&self) -> bool {
        self.degraded_transitions > 0
    }

    /// The snapshot as one K-DB document (deterministically ordered).
    pub fn to_document(&self) -> Document {
        let count = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
        let jobs = Document::new()
            .with("submitted", count(self.submitted))
            .with("completed", count(self.completed))
            .with("failed", count(self.failed))
            .with("cancelled", count(self.cancelled))
            .with("retried", count(self.retried))
            .with("rejected", count(self.rejected));
        let mut stages = Document::new();
        for (name, stat) in &self.stages {
            stages.set(*name, Value::Doc(stat.to_document()));
        }
        let reliability = Document::new()
            .with("persist_failures", count(self.persist_failures))
            .with("journal_faults", count(self.journal_faults))
            .with("degraded_transitions", count(self.degraded_transitions))
            .with("degraded", self.degraded());
        let signals = Document::new()
            .with("tables_built", count(self.signals_tables_built))
            .with(
                "zero_cell_corrections",
                count(self.signals_zero_cell_corrections),
            )
            .with(
                "shrinkage_iterations",
                count(self.signals_shrinkage_iterations),
            )
            .with("emitted", count(self.signals_emitted));
        let tracing = Document::new()
            .with("dropped_spans", count(self.events_dropped))
            .with("persisted", count(self.traces_persisted))
            .with("forced", count(self.traces_forced));
        Document::new()
            .with("jobs", Value::Doc(jobs))
            .with("reliability", Value::Doc(reliability))
            .with("signals", Value::Doc(signals))
            .with("tracing", Value::Doc(tracing))
            .with(
                "max_queue_depth",
                i64::try_from(self.max_queue_depth).unwrap_or(i64::MAX),
            )
            .with("queue_wait", Value::Doc(self.queue_wait.to_document()))
            .with(
                "session_latency",
                Value::Doc(self.session_latency.to_document()),
            )
            .with("stages", Value::Doc(stages))
            .with(
                "kdb",
                Value::Doc(
                    Document::new()
                        .with("acked_ops", count(self.kdb.acked_ops))
                        .with("durable_ops", count(self.kdb.durable_ops))
                        .with("group_commits", count(self.kdb.commits))
                        .with("group_commit_failures", count(self.kdb.failures))
                        .with("group_commit_mean_batch", self.kdb.mean_batch()),
                ),
            )
    }

    /// The snapshot as a JSON object.
    pub fn to_json(&self) -> String {
        document_to_json(&self.to_document())
    }

    /// The snapshot as Prometheus text exposition (counters plus one
    /// summary per stage).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("# TYPE ada_jobs_total counter\n");
        for (outcome, value) in [
            ("submitted", self.submitted),
            ("completed", self.completed),
            ("failed", self.failed),
            ("cancelled", self.cancelled),
            ("retried", self.retried),
            ("rejected", self.rejected),
        ] {
            out.push_str(&format!(
                "ada_jobs_total{{outcome=\"{outcome}\"}} {value}\n"
            ));
        }
        out.push_str("# TYPE ada_persist_failures_total counter\n");
        out.push_str(&format!(
            "ada_persist_failures_total {}\n",
            self.persist_failures
        ));
        out.push_str("# TYPE ada_journal_faults_total counter\n");
        out.push_str(&format!(
            "ada_journal_faults_total {}\n",
            self.journal_faults
        ));
        for (metric, value) in [
            ("ada_signals_tables_built_total", self.signals_tables_built),
            (
                "ada_signals_zero_cell_corrections_total",
                self.signals_zero_cell_corrections,
            ),
            (
                "ada_signals_shrinkage_iterations_total",
                self.signals_shrinkage_iterations,
            ),
            ("ada_signals_emitted_total", self.signals_emitted),
        ] {
            out.push_str(&format!("# TYPE {metric} counter\n{metric} {value}\n"));
        }
        out.push_str("# TYPE ada_service_degraded gauge\n");
        out.push_str(&format!(
            "ada_service_degraded {}\n",
            u8::from(self.degraded())
        ));
        for (metric, value) in [
            ("ada_kdb_journal_acked_ops_total", self.kdb.acked_ops),
            ("ada_kdb_journal_durable_ops_total", self.kdb.durable_ops),
            ("ada_kdb_group_commits_total", self.kdb.commits),
            ("ada_kdb_group_commit_failures_total", self.kdb.failures),
        ] {
            out.push_str(&format!("# TYPE {metric} counter\n{metric} {value}\n"));
        }
        out.push_str("# TYPE ada_kdb_group_commit_batch_size summary\n");
        write_kdb_summary(
            &mut out,
            "ada_kdb_group_commit_batch_size",
            &self.kdb.batch_hist,
            self.kdb.ops,
            self.kdb.commits,
        );
        out.push_str("# TYPE ada_kdb_group_commit_flush_ns summary\n");
        write_kdb_summary(
            &mut out,
            "ada_kdb_group_commit_flush_ns",
            &self.kdb.flush_hist,
            self.kdb.flush_ns,
            self.kdb.commits,
        );
        out.push_str("# TYPE ada_queue_depth_max gauge\n");
        out.push_str(&format!("ada_queue_depth_max {}\n", self.max_queue_depth));
        out.push_str("# TYPE ada_queue_wait_ns summary\n");
        write_summary(&mut out, "ada_queue_wait_ns", "", &self.queue_wait);
        out.push_str("# TYPE ada_session_latency_ns summary\n");
        write_summary(
            &mut out,
            "ada_session_latency_ns",
            "",
            &self.session_latency,
        );
        out.push_str("# TYPE ada_stage_latency_ns summary\n");
        for (name, stat) in &self.stages {
            write_summary(
                &mut out,
                "ada_stage_latency_ns",
                &format!("stage=\"{name}\","),
                stat,
            );
        }
        for (metric, value) in [
            ("ada_obs_dropped_spans_total", self.events_dropped),
            ("ada_obs_traces_persisted_total", self.traces_persisted),
            ("ada_obs_traces_forced_total", self.traces_forced),
        ] {
            out.push_str(&format!("# TYPE {metric} counter\n{metric} {value}\n"));
        }
        out
    }
}

/// Renders one group-commit log2 histogram as a Prometheus summary:
/// approximate quantiles (geometric bucket midpoints), exact sum/count.
fn write_kdb_summary(out: &mut String, metric: &str, hist: &[u64], sum: u64, count: u64) {
    for q in ["0.5", "0.9", "0.99"] {
        let v = GroupCommitSnapshot::quantile(hist, q.parse().expect("literal"));
        out.push_str(&format!("{metric}{{quantile=\"{q}\"}} {v:.1}\n"));
    }
    out.push_str(&format!("{metric}_sum {sum}\n"));
    out.push_str(&format!("{metric}_count {count}\n"));
}

fn write_summary(out: &mut String, metric: &str, label_prefix: &str, stat: &StageMetrics) {
    for (q, v) in [("0.5", stat.p50), ("0.9", stat.p90), ("0.99", stat.p99)] {
        out.push_str(&format!(
            "{metric}{{{label_prefix}quantile=\"{q}\"}} {}\n",
            v.as_nanos()
        ));
    }
    let bare = label_prefix.trim_end_matches(',');
    let braces = if bare.is_empty() {
        String::new()
    } else {
        format!("{{{bare}}}")
    };
    out.push_str(&format!("{metric}_sum{braces} {}\n", stat.total.as_nanos()));
    out.push_str(&format!("{metric}_count{braces} {}\n", stat.runs));
}

/// Forwards pipeline events to several observers in order.
pub struct FanoutObserver {
    targets: Vec<Arc<dyn PipelineObserver>>,
}

impl FanoutObserver {
    /// An observer broadcasting to `targets`.
    pub fn new(targets: Vec<Arc<dyn PipelineObserver>>) -> Self {
        Self { targets }
    }
}

impl PipelineObserver for FanoutObserver {
    fn on_stage_start(&self, session: &str, stage: PipelineStage) {
        for t in &self.targets {
            t.on_stage_start(session, stage);
        }
    }
    fn on_stage_end(&self, session: &str, stage: PipelineStage, elapsed: Duration) {
        for t in &self.targets {
            t.on_stage_end(session, stage, elapsed);
        }
    }
    fn on_span_start(&self, session: &str, stage: PipelineStage, name: &str) {
        for t in &self.targets {
            t.on_span_start(session, stage, name);
        }
    }
    fn on_span_end(&self, session: &str, stage: PipelineStage, name: &str, elapsed: Duration) {
        for t in &self.targets {
            t.on_span_end(session, stage, name, elapsed);
        }
    }
    fn on_counters(&self, session: &str, stage: PipelineStage, counters: &[(&'static str, u64)]) {
        for t in &self.targets {
            t.on_counters(session, stage, counters);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_stage_latency_aggregate() {
        let m = MetricsObserver::new();
        m.job_submitted();
        m.job_submitted();
        m.job_completed();
        m.job_retried();
        m.observe_queue_depth(3);
        m.observe_queue_depth(1);
        m.on_stage_end("s", PipelineStage::Transform, Duration::from_millis(10));
        m.on_stage_end("s", PipelineStage::Transform, Duration::from_millis(30));
        let snap = m.snapshot();
        assert_eq!(snap.submitted, 2);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.retried, 1);
        assert_eq!(snap.max_queue_depth, 3);
        let t = &snap.stages["transform"];
        assert_eq!(t.runs, 2);
        assert_eq!(t.total, Duration::from_millis(40));
        assert_eq!(t.mean, Duration::from_millis(20));
        // Percentiles carry the log2 bucket's resolution: within 2× of
        // the true value, and ordered.
        assert!(t.p50 >= Duration::from_millis(5) && t.p50 <= Duration::from_millis(20));
        assert!(t.p99 >= Duration::from_millis(15) && t.p99 <= Duration::from_millis(60));
        assert!(t.p50 <= t.p90 && t.p90 <= t.p99);
    }

    #[test]
    fn queue_depth_high_water_mark_is_monotone() {
        let m = Arc::new(MetricsObserver::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for depth in 0..1000usize {
                        m.observe_queue_depth(depth * 4 + t);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // The largest observed depth wins regardless of interleaving.
        assert_eq!(m.snapshot().max_queue_depth, 999 * 4 + 3);
    }

    #[test]
    fn signal_counters_aggregate_and_ignore_unknown_names() {
        let m = MetricsObserver::new();
        m.on_counters(
            "s",
            PipelineStage::SignalMining,
            &[
                ("signals_tables_built", 30),
                ("signals_zero_cell_corrections", 4),
                ("signals_shrinkage_iterations", 9),
                ("signals_emitted", 12),
                ("iterations", 999),
            ],
        );
        m.on_counters("t", PipelineStage::SignalMining, &[("signals_emitted", 3)]);
        let snap = m.snapshot();
        assert_eq!(snap.signals_tables_built, 30);
        assert_eq!(snap.signals_zero_cell_corrections, 4);
        assert_eq!(snap.signals_shrinkage_iterations, 9);
        assert_eq!(snap.signals_emitted, 15);
        let prom = snap.to_prometheus();
        assert!(prom.contains("ada_signals_tables_built_total 30"));
        assert!(prom.contains("ada_signals_emitted_total 15"));
        assert!(snap.to_json().contains("\"signals\":{"));
    }

    #[test]
    fn queue_wait_feeds_its_own_histogram() {
        let m = MetricsObserver::new();
        m.observe_queue_wait(Duration::from_micros(100));
        m.observe_queue_wait(Duration::from_micros(300));
        let snap = m.snapshot();
        assert_eq!(snap.queue_wait.runs, 2);
        assert_eq!(snap.queue_wait.total, Duration::from_micros(400));
    }

    #[test]
    fn snapshot_renders_json_and_prometheus() {
        let m = MetricsObserver::new();
        m.job_submitted();
        m.job_completed();
        m.on_stage_end("s", PipelineStage::Optimize, Duration::from_millis(7));
        let snap = m.snapshot();

        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"jobs\":{"), "json: {json}");
        assert!(json.contains("\"optimize\":{"), "json: {json}");
        assert!(json.contains("\"p99_ns\":"), "json: {json}");
        // Deterministic rendering.
        assert_eq!(json, snap.to_json());

        let prom = snap.to_prometheus();
        assert!(prom.contains("ada_jobs_total{outcome=\"submitted\"} 1"));
        assert!(prom.contains("ada_stage_latency_ns{stage=\"optimize\",quantile=\"0.5\"}"));
        assert!(prom.contains("ada_stage_latency_ns_count{stage=\"optimize\"} 1"));
    }

    #[test]
    fn fanout_reaches_every_target_for_every_event_kind() {
        use std::sync::Mutex;
        #[derive(Default)]
        struct Log(Mutex<Vec<String>>);
        impl PipelineObserver for Log {
            fn on_stage_start(&self, _: &str, stage: PipelineStage) {
                self.0.lock().unwrap().push(format!("stage+{stage}"));
            }
            fn on_stage_end(&self, _: &str, stage: PipelineStage, _: Duration) {
                self.0.lock().unwrap().push(format!("stage-{stage}"));
            }
            fn on_span_start(&self, _: &str, _: PipelineStage, name: &str) {
                self.0.lock().unwrap().push(format!("span+{name}"));
            }
            fn on_span_end(&self, _: &str, _: PipelineStage, name: &str, _: Duration) {
                self.0.lock().unwrap().push(format!("span-{name}"));
            }
            fn on_counters(&self, _: &str, _: PipelineStage, counters: &[(&'static str, u64)]) {
                self.0
                    .lock()
                    .unwrap()
                    .push(format!("ctr:{}", counters.len()));
            }
        }
        let a = Arc::new(Log::default());
        let b = Arc::new(Log::default());
        let fan = FanoutObserver::new(vec![a.clone(), b.clone()]);
        fan.on_stage_start("s", PipelineStage::Optimize);
        fan.on_span_start("s", PipelineStage::Optimize, "sweep:k=4");
        fan.on_counters("s", PipelineStage::Optimize, &[("iterations", 1)]);
        fan.on_span_end("s", PipelineStage::Optimize, "sweep:k=4", Duration::ZERO);
        fan.on_stage_end("s", PipelineStage::Optimize, Duration::ZERO);
        let expect = vec![
            "stage+optimize",
            "span+sweep:k=4",
            "ctr:1",
            "span-sweep:k=4",
            "stage-optimize",
        ];
        assert_eq!(*a.0.lock().unwrap(), expect);
        assert_eq!(*b.0.lock().unwrap(), expect);
    }
}
