//! Degraded-mode integration: persistent journal faults mid-fleet must
//! flip the service to read-only instead of failing every write, while
//! in-flight sessions still reach a terminal state and reads keep
//! working.

use std::path::Path;
use std::sync::Arc;

use ada_core::AdaHealthConfig;
use ada_dataset::synthetic::{generate, SyntheticConfig};
use ada_kdb::{FaultKind, FaultyStorage, Kdb, MemStorage, StoreOptions, Value};
use ada_service::{AnalysisService, JobSpec, ServiceConfig, ServiceError, SessionState};

fn cohort_cfg() -> SyntheticConfig {
    SyntheticConfig {
        num_patients: 60,
        num_exam_types: 12,
        target_records: 700,
        ..SyntheticConfig::small()
    }
}

#[test]
fn persistent_journal_faults_degrade_service_to_read_only() {
    let mem: Arc<MemStorage> = Arc::new(MemStorage::new());
    let (storage, faults) = FaultyStorage::wrap(mem);
    let kdb = Kdb::open_with(
        Path::new("svc_degraded.journal"),
        StoreOptions::with_storage(storage),
    )
    .unwrap();
    let service = AnalysisService::with_kdb(
        ServiceConfig {
            workers: 2,
            degrade_after: 2,
            ..ServiceConfig::default()
        },
        kdb,
    );

    // Healthy fleet first: everything completes and persists.
    let healthy: Vec<_> = (0..3)
        .map(|i| {
            service
                .submit(JobSpec::new(
                    AdaHealthConfig::quick(format!("healthy-{i}")),
                    Arc::new(generate(&cohort_cfg(), 900 + i as u64)),
                ))
                .unwrap()
        })
        .collect();
    for id in healthy {
        assert!(matches!(
            service.wait(id).unwrap(),
            SessionState::Completed(_)
        ));
    }
    assert!(!service.is_degraded());
    let persisted_before = service.past_sessions().len();
    assert_eq!(persisted_before, 3);

    // Disk starts rejecting every write: each affected session must still
    // reach a terminal state, never hang.
    faults.fail_persistently(FaultKind::NoSpace);
    let doomed: Vec<_> = (0..3)
        .map(|i| {
            service
                .submit(JobSpec::new(
                    AdaHealthConfig::quick(format!("doomed-{i}")),
                    Arc::new(generate(&cohort_cfg(), 950 + i as u64)),
                ))
                .unwrap()
        })
        .collect();
    let mut failed = 0;
    for id in doomed {
        match service.wait(id).unwrap() {
            SessionState::Failed { .. } => failed += 1,
            SessionState::Completed(_) => {}
            other => panic!("session not terminal after faults: {other:?}"),
        }
    }
    assert!(failed > 0, "no session observed the injected write faults");

    // The service trips to read-only instead of erroring per write.
    assert!(service.is_degraded());
    let err = service
        .submit(JobSpec::new(
            AdaHealthConfig::quick("rejected"),
            Arc::new(generate(&cohort_cfg(), 999)),
        ))
        .unwrap_err();
    assert!(matches!(err, ServiceError::Degraded));

    // Reads keep working and still see the pre-fault state.
    assert_eq!(service.past_sessions().len(), persisted_before);

    // The transition is visible in health, metrics and the snapshot.
    let health = service.health();
    assert_eq!(health.get("status"), Some(&Value::Str("degraded".into())));
    assert_eq!(health.get("accepting_writes"), Some(&Value::Bool(false)));
    let metrics = service.metrics();
    assert!(metrics.degraded());
    assert_eq!(metrics.degraded_transitions, 1);
    assert!(metrics.persist_failures > 0);
    assert!(metrics.journal_faults >= 2);
    let snapshot = service.snapshot();
    match snapshot.get("health") {
        Some(Value::Doc(doc)) => {
            assert_eq!(doc.get("status"), Some(&Value::Str("degraded".into())));
        }
        other => panic!("snapshot missing health document: {other:?}"),
    }

    service.shutdown();
}

#[test]
fn follower_refuses_writes_until_promoted() {
    let kdb = Kdb::open_with(
        Path::new("svc_follower.journal"),
        StoreOptions::with_storage(Arc::new(MemStorage::new())),
    )
    .unwrap();
    let service = AnalysisService::with_kdb(
        ServiceConfig {
            workers: 1,
            follower: true,
            ..ServiceConfig::default()
        },
        kdb,
    );

    // Born a follower: status/role say so, writes are refused with the
    // dedicated (non-sticky) error, reads still work.
    assert!(service.is_follower());
    let health = service.health();
    assert_eq!(health.get("status"), Some(&Value::Str("follower".into())));
    assert_eq!(health.get("role"), Some(&Value::Str("follower".into())));
    assert_eq!(health.get("accepting_writes"), Some(&Value::Bool(false)));
    let err = service
        .submit(JobSpec::new(
            AdaHealthConfig::quick("standby-rejected"),
            Arc::new(generate(&cohort_cfg(), 7001)),
        ))
        .unwrap_err();
    assert!(matches!(err, ServiceError::Follower));
    assert_eq!(service.past_sessions().len(), 0);

    // Promotion flips the node to primary exactly once; work flows.
    assert!(service.promote());
    assert!(!service.promote(), "promote must be idempotent");
    assert!(!service.is_follower());
    let health = service.health();
    assert_eq!(health.get("status"), Some(&Value::Str("ok".into())));
    assert_eq!(health.get("role"), Some(&Value::Str("primary".into())));
    assert_eq!(health.get("accepting_writes"), Some(&Value::Bool(true)));
    let id = service
        .submit(JobSpec::new(
            AdaHealthConfig::quick("post-promotion"),
            Arc::new(generate(&cohort_cfg(), 7002)),
        ))
        .unwrap();
    assert!(matches!(
        service.wait(id).unwrap(),
        SessionState::Completed(_)
    ));

    service.shutdown();
}
