//! End-to-end service behaviour: concurrent determinism against a shared
//! journaled K-DB, mid-run cancellation, retries, deadlines, and
//! backpressure.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use ada_core::{AdaHealth, AdaHealthConfig, PipelineObserver, PipelineStage, SessionReport};
use ada_dataset::synthetic::{generate, SyntheticConfig};
use ada_dataset::ExamLog;
use ada_kdb::Kdb;
use ada_service::{AnalysisService, CancelToken, JobSpec, Priority, ServiceConfig, SessionState};

fn cohort_cfg() -> SyntheticConfig {
    SyntheticConfig {
        num_patients: 90,
        num_exam_types: 20,
        target_records: 1_200,
        ..SyntheticConfig::small()
    }
}

fn journal_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("ada_svc_{tag}_{}.journal", std::process::id()));
    std::fs::remove_file(&path).ok();
    path
}

/// What a serial, single-threaded run on a fresh store produces.
fn serial_report(config: &AdaHealthConfig, log: &ExamLog) -> SessionReport {
    let mut engine = AdaHealth::with_kdb(config.clone(), Kdb::in_memory());
    engine.run(log)
}

#[test]
fn eight_concurrent_sessions_match_serial_runs() {
    let path = journal_path("fleet");
    let service = AnalysisService::with_kdb(
        ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        },
        Kdb::open(&path).unwrap(),
    );

    let priorities = [
        Priority::High,
        Priority::Low,
        Priority::Normal,
        Priority::High,
        Priority::Low,
        Priority::Normal,
        Priority::Normal,
        Priority::High,
    ];
    let jobs: Vec<(AdaHealthConfig, Arc<ExamLog>)> = (0..8)
        .map(|i| {
            (
                AdaHealthConfig::quick(format!("fleet-{i}")),
                Arc::new(generate(&cohort_cfg(), 100 + i as u64)),
            )
        })
        .collect();

    let ids: Vec<_> = jobs
        .iter()
        .zip(priorities)
        .map(|((config, log), priority)| {
            service
                .submit(JobSpec::new(config.clone(), Arc::clone(log)).priority(priority))
                .unwrap()
        })
        .collect();

    for (id, (config, log)) in ids.iter().zip(&jobs) {
        match service.wait(*id).unwrap() {
            SessionState::Completed(outcome) => {
                // Concurrency must not change results: the report equals
                // a serial run of the same config + seed, field by field.
                let report = outcome.pipeline().expect("pipeline workload");
                assert_eq!(*report, serial_report(config, log), "{}", config.session);
            }
            other => panic!("{}: expected Completed, got {other:?}", config.session),
        }
    }

    let metrics = service.shutdown();
    assert_eq!(metrics.submitted, 8);
    assert_eq!(metrics.completed, 8);
    assert_eq!(metrics.failed + metrics.cancelled + metrics.rejected, 0);
    // Every session ran all seven pipeline stages.
    for stage in PipelineStage::PIPELINE {
        assert_eq!(metrics.stages[stage.name()].runs, 8, "{stage}");
    }

    // The shared journal replays: all eight sessions' artifacts are there.
    let reopened = Kdb::open(&path).unwrap();
    let clusters = reopened.collection("cluster_knowledge").unwrap();
    for i in 0..8 {
        let hits = clusters.find(&ada_kdb::Filter::eq("session", format!("fleet-{i}")));
        assert!(!hits.is_empty(), "fleet-{i} left no cluster knowledge");
    }
    std::fs::remove_file(&path).ok();
}

/// Cancels a named session's token the moment its first stage starts, so
/// the next checkpoint observes it — deterministic mid-run cancellation.
struct CancelOnFirstStage {
    target: String,
    token: CancelToken,
}

impl PipelineObserver for CancelOnFirstStage {
    fn on_stage_start(&self, session: &str, _stage: PipelineStage) {
        if session == self.target {
            self.token.cancel();
        }
    }
}

#[test]
fn mid_run_cancel_yields_cancelled_state_and_replayable_journal() {
    let path = journal_path("cancel");
    let token = CancelToken::new();
    let observer = Arc::new(CancelOnFirstStage {
        target: "cancel-me".into(),
        token: token.clone(),
    });
    let service = AnalysisService::with_kdb(
        ServiceConfig {
            workers: 2,
            observer: Some(observer),
            ..ServiceConfig::default()
        },
        Kdb::open(&path).unwrap(),
    );

    let log = Arc::new(generate(&cohort_cfg(), 7));
    let doomed = service
        .submit(
            JobSpec::new(AdaHealthConfig::quick("cancel-me"), Arc::clone(&log)).cancel_token(token),
        )
        .unwrap();
    let survivor = service
        .submit(JobSpec::new(
            AdaHealthConfig::quick("survivor"),
            Arc::clone(&log),
        ))
        .unwrap();

    assert_eq!(service.wait(doomed).unwrap(), SessionState::Cancelled);
    assert!(matches!(
        service.wait(survivor).unwrap(),
        SessionState::Completed(_)
    ));

    let metrics = service.shutdown();
    assert_eq!(metrics.cancelled, 1);
    assert_eq!(metrics.completed, 1);

    // Mid-run cancellation must leave the journal consistent: it replays
    // cleanly, the survivor's artifacts are intact, and the cancelled
    // session left no knowledge items (it stopped before extraction).
    let reopened = Kdb::open(&path).unwrap();
    let clusters = reopened.collection("cluster_knowledge").unwrap();
    assert!(!clusters
        .find(&ada_kdb::Filter::eq("session", "survivor"))
        .is_empty());
    assert!(clusters
        .find(&ada_kdb::Filter::eq("session", "cancel-me"))
        .is_empty());
    std::fs::remove_file(&path).ok();
}

#[test]
fn injected_failures_are_retried_until_success() {
    let service = AnalysisService::with_kdb(
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        Kdb::in_memory(),
    );
    let log = Arc::new(generate(&cohort_cfg(), 11));
    let id = service
        .submit(
            JobSpec::new(AdaHealthConfig::quick("flaky"), log)
                .inject_failures(2)
                .max_retries(3),
        )
        .unwrap();
    assert!(matches!(
        service.wait(id).unwrap(),
        SessionState::Completed(_)
    ));
    let metrics = service.shutdown();
    assert_eq!(metrics.retried, 2);
    assert_eq!(metrics.completed, 1);
    assert_eq!(metrics.failed, 0);
}

#[test]
fn exhausted_retries_fail_the_session() {
    let service = AnalysisService::with_kdb(
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        Kdb::in_memory(),
    );
    let log = Arc::new(generate(&cohort_cfg(), 12));
    let id = service
        .submit(
            JobSpec::new(AdaHealthConfig::quick("doomed"), log)
                .inject_failures(10)
                .max_retries(1),
        )
        .unwrap();
    match service.wait(id).unwrap() {
        SessionState::Failed { reason } => {
            assert!(reason.contains("2 attempts"), "reason: {reason}");
            assert!(reason.contains("injected"), "reason: {reason}");
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    let metrics = service.shutdown();
    assert_eq!(metrics.retried, 1);
    assert_eq!(metrics.failed, 1);
}

#[test]
fn an_expired_deadline_fails_without_retry() {
    let service = AnalysisService::with_kdb(ServiceConfig::default(), Kdb::in_memory());
    let log = Arc::new(generate(&cohort_cfg(), 13));
    let id = service
        .submit(JobSpec::new(AdaHealthConfig::quick("late"), log).timeout(Duration::ZERO))
        .unwrap();
    match service.wait(id).unwrap() {
        SessionState::Failed { reason } => {
            assert!(reason.contains("deadline"), "reason: {reason}")
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    let metrics = service.shutdown();
    assert_eq!(metrics.retried, 0);
    assert_eq!(metrics.failed, 1);
}

/// Blocks the first stage of every session until released, so tests can
/// hold a worker busy while they fill the queue behind it.
#[derive(Default)]
struct GateObserver {
    started: AtomicUsize,
    open: Mutex<bool>,
    bell: Condvar,
}

impl GateObserver {
    fn wait_for_start(&self) {
        while self.started.load(Ordering::Acquire) == 0 {
            std::thread::yield_now();
        }
    }
    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.bell.notify_all();
    }
}

impl PipelineObserver for GateObserver {
    fn on_stage_start(&self, _session: &str, stage: PipelineStage) {
        if stage != PipelineStage::Characterize {
            return;
        }
        self.started.fetch_add(1, Ordering::Release);
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.bell.wait(open).unwrap();
        }
    }
}

#[test]
fn a_full_queue_applies_backpressure_and_a_queued_job_can_be_cancelled() {
    let gate = Arc::new(GateObserver::default());
    let service = AnalysisService::with_kdb(
        ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            observer: Some(gate.clone()),
            ..ServiceConfig::default()
        },
        Kdb::in_memory(),
    );
    let log = Arc::new(generate(&cohort_cfg(), 21));

    // First job occupies the single worker (parked at the gate)...
    let running = service
        .submit(JobSpec::new(
            AdaHealthConfig::quick("running"),
            Arc::clone(&log),
        ))
        .unwrap();
    gate.wait_for_start();
    // ...second fills the queue's single slot...
    let queued = service
        .submit(JobSpec::new(
            AdaHealthConfig::quick("queued"),
            Arc::clone(&log),
        ))
        .unwrap();
    // ...and the third submission is refused: backpressure, not buffering.
    let err = service
        .submit(JobSpec::new(
            AdaHealthConfig::quick("rejected"),
            Arc::clone(&log),
        ))
        .unwrap_err();
    match &err {
        ada_service::ServiceError::Busy {
            capacity,
            retry_after_hint,
        } => {
            assert_eq!(*capacity, 1);
            // The hint is typed retry guidance, never zero or absurd.
            assert!(*retry_after_hint >= Duration::from_millis(25));
            assert!(*retry_after_hint <= Duration::from_secs(30));
            assert_eq!(err.retry_after_hint(), Some(*retry_after_hint));
        }
        other => panic!("expected Busy, got {other:?}"),
    }

    // A still-queued job can be cancelled before it ever runs.
    service.cancel(queued).unwrap();
    gate.release();

    assert!(matches!(
        service.wait(running).unwrap(),
        SessionState::Completed(_)
    ));
    assert_eq!(service.wait(queued).unwrap(), SessionState::Cancelled);

    let metrics = service.shutdown();
    assert_eq!(metrics.submitted, 2);
    assert_eq!(metrics.rejected, 1);
    assert_eq!(metrics.cancelled, 1);
    assert_eq!(metrics.max_queue_depth, 1);
}

#[test]
fn shutdown_drains_already_accepted_jobs() {
    let service = AnalysisService::with_kdb(
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        Kdb::in_memory(),
    );
    let log = Arc::new(generate(&cohort_cfg(), 31));
    for i in 0..4 {
        service
            .submit(JobSpec::new(
                AdaHealthConfig::quick(format!("drain-{i}")),
                Arc::clone(&log),
            ))
            .unwrap();
    }
    // Shutdown without waiting: graceful drain still completes all four.
    let metrics = service.shutdown();
    assert_eq!(metrics.completed, 4);
    assert_eq!(metrics.failed + metrics.cancelled, 0);
}

#[test]
fn stream_mining_session_matches_a_direct_engine_run() {
    use ada_dataset::StreamOrder;
    use ada_service::Workload;
    use ada_stream::{StreamEngine, StreamMiningSpec};

    let service = AnalysisService::with_kdb(ServiceConfig::default(), Kdb::in_memory());
    let log = Arc::new(generate(&cohort_cfg(), 55));
    let spec = StreamMiningSpec::quick().seed(55);

    let id = service
        .submit(
            JobSpec::new(AdaHealthConfig::quick("ward"), Arc::clone(&log))
                .workload(Workload::StreamMining(spec.clone())),
        )
        .unwrap();
    let report = match service.wait(id).unwrap() {
        SessionState::Completed(outcome) => outcome.stream().unwrap().clone(),
        other => panic!("expected a completed stream session, got {other:?}"),
    };

    // The session is just the engine fed the seeded StreamOrder replay:
    // a direct run (no service, no checkpoint store) must land on the
    // identical fingerprints.
    let mut engine = StreamEngine::new(spec.to_config("direct"));
    let feed: Vec<_> = StreamOrder::new(&log, spec.seed, spec.disorder).collect();
    for batch in feed.chunks(spec.chunk.max(1)) {
        engine.ingest(batch).unwrap();
    }
    engine.seal().unwrap();

    assert!(report.windows_closed > 0);
    assert!(report.has_model);
    assert_eq!(report.vsm_fp, format!("{:016x}", engine.vsm_fingerprint()));
    assert_eq!(
        report.model_fp,
        format!("{:016x}", engine.model_fingerprint().unwrap())
    );
    assert_eq!(report.windows_closed, engine.windows_closed());
    assert_eq!(report.folded, engine.folded());
    assert_eq!(report.refits, engine.refits());
    service.shutdown();
}

#[test]
fn open_ingest_query_seal_round_trip_and_restart_resume() {
    use ada_dataset::StreamOrder;
    use ada_kdb::Value;
    use ada_service::ServiceError;
    use ada_stream::StreamConfig;

    let path = journal_path("stream");
    let log = generate(&cohort_cfg(), 77);
    let feed: Vec<_> = StreamOrder::new(&log, 77, 4).collect();
    let config = StreamConfig::new("icu-feed")
        .lateness_days(7)
        .k(3)
        .min_rows(8)
        .update_iters(3)
        .refit_iters(30);

    let service = AnalysisService::with_kdb(ServiceConfig::default(), Kdb::open(&path).unwrap());
    assert_eq!(service.stream_open(config.clone()).unwrap(), 0);
    // Re-opening the same name is an idempotent no-op.
    assert_eq!(service.stream_open(config.clone()).unwrap(), 0);
    assert_eq!(service.stream_names(), vec!["icu-feed".to_string()]);
    assert!(matches!(
        service.stream_query("nope"),
        Err(ServiceError::UnknownStream(_))
    ));

    for batch in feed.chunks(64) {
        service.stream_ingest("icu-feed", batch.to_vec()).unwrap();
    }
    // Read-your-writes: every accepted batch is reflected.
    let status = service.stream_query("icu-feed").unwrap();
    assert_eq!(
        status.get("ingested").unwrap().as_i64().unwrap() as usize,
        feed.len()
    );
    let sealed = service.stream_seal("icu-feed").unwrap();
    let windows = sealed.get("windows_closed").unwrap().as_i64().unwrap();
    let vsm_fp = sealed.get("vsm_fp").unwrap().as_str().unwrap().to_string();
    assert!(windows > 0);
    let exposition = service.snapshot_prometheus();
    assert!(exposition.contains("ada_stream_windows_closed_total"));
    service.shutdown();

    // A new service over the same journal resumes the stream from its
    // durable checkpoints, byte-identically.
    let service = AnalysisService::with_kdb(ServiceConfig::default(), Kdb::open(&path).unwrap());
    let resumed = service.stream_open(config).unwrap();
    assert_eq!(resumed, windows as u64);
    let status = service.stream_query("icu-feed").unwrap();
    assert_eq!(
        status.get("windows_closed").unwrap().as_i64(),
        Some(windows)
    );
    assert_eq!(
        status.get("vsm_fp").unwrap().as_str().unwrap(),
        vsm_fp,
        "resumed state must match the sealed state"
    );
    assert!(!matches!(status.get("model"), Some(Value::Null) | None));
    service.shutdown();
    std::fs::remove_file(&path).ok();
}
