//! Observability end-to-end: observer fan-out under concurrent
//! sessions, flight-recorder persistence, and crash-replay of the
//! `sessions` collection.

use std::path::PathBuf;
use std::sync::Arc;

use ada_core::{AdaHealthConfig, PipelineStage};
use ada_dataset::synthetic::{generate, SyntheticConfig};
use ada_kdb::schema::{self, names};
use ada_kdb::{Document, Kdb, Value};
use ada_obs::{EventKind, FlightRecorder};
use ada_service::{AnalysisService, JobSpec, ServiceConfig, SessionState};

fn cohort_cfg() -> SyntheticConfig {
    SyntheticConfig {
        num_patients: 90,
        num_exam_types: 20,
        target_records: 1_200,
        ..SyntheticConfig::small()
    }
}

fn journal_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("ada_obs_{tag}_{}.journal", std::process::id()));
    std::fs::remove_file(&path).ok();
    path
}

fn span_names(doc: &Document) -> Vec<(String, i64)> {
    doc.get("spans")
        .and_then(Value::as_array)
        .map(|spans| {
            spans
                .iter()
                .map(|s| {
                    let s = s.as_doc().unwrap();
                    (
                        s.get("name").unwrap().as_str().unwrap().to_string(),
                        s.get("parent").unwrap().as_i64().unwrap(),
                    )
                })
                .collect()
        })
        .unwrap_or_default()
}

#[test]
fn observer_fanout_under_eight_concurrent_sessions() {
    // A second, test-owned recorder rides along as the extra observer:
    // the service's internal recorder persists-and-forgets sessions at
    // terminal state, while this one keeps its events for inspection.
    let probe = Arc::new(FlightRecorder::new(4096));
    let service = AnalysisService::with_kdb(
        ServiceConfig {
            workers: 4,
            observer: Some(probe.clone()),
            ..ServiceConfig::default()
        },
        Kdb::in_memory(),
    );

    let sessions: Vec<String> = (0..8).map(|i| format!("fan-{i}")).collect();
    let ids: Vec<_> = sessions
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let log = Arc::new(generate(&cohort_cfg(), 300 + i as u64));
            service
                .submit(JobSpec::new(AdaHealthConfig::quick(name.clone()), log))
                .unwrap()
        })
        .collect();
    for id in &ids {
        assert!(matches!(
            service.wait(*id).unwrap(),
            SessionState::Completed(_)
        ));
    }

    assert_eq!(probe.dropped(), 0, "no events may be lost");
    for name in &sessions {
        let events = probe.recent_events(name);
        assert!(!events.is_empty(), "{name}: no events recorded");

        // Per-session drain order is monotonic in the global sequence
        // and in time.
        for pair in events.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "{name}: seq order broken");
            assert!(pair[0].t_ns <= pair[1].t_ns, "{name}: time went backwards");
        }

        // Exactly-once stage events: each of the seven stages opens
        // once and closes once, despite 4 workers running 8 sessions.
        for stage in PipelineStage::PIPELINE {
            let starts = events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Start { .. }) && *e.name == *stage.name())
                .count();
            let ends = events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::End { .. }) && *e.name == *stage.name())
                .count();
            assert_eq!(starts, 1, "{name}: stage {stage} started {starts} times");
            assert_eq!(ends, 1, "{name}: stage {stage} ended {ends} times");
        }

        // Correct span nesting, from the folded document: the root is
        // first, stage spans parent to it, and every rung/sweep span
        // parents to its stage span.
        let doc = probe.finalize(name, "completed", "");
        schema::validate_session_doc(&doc).unwrap();
        let spans = span_names(&doc);
        assert_eq!(spans[0], ("session".to_string(), -1));
        let stage_idx = |stage: PipelineStage| {
            spans
                .iter()
                .position(|(n, _)| n == stage.name())
                .unwrap_or_else(|| panic!("{name}: no {stage} span")) as i64
        };
        for stage in PipelineStage::PIPELINE {
            let idx = stage_idx(stage) as usize;
            assert_eq!(spans[idx].1, 0, "{name}: {stage} span must parent to root");
        }
        let mining = stage_idx(PipelineStage::PartialMining);
        let optimize = stage_idx(PipelineStage::Optimize);
        let mut rungs = 0;
        let mut sweeps = 0;
        for (span_name, parent) in &spans {
            if span_name.starts_with("rung:") {
                assert_eq!(*parent, mining, "{name}: {span_name} must nest in mining");
                rungs += 1;
            }
            if span_name.starts_with("sweep:k=") {
                assert_eq!(
                    *parent, optimize,
                    "{name}: {span_name} must nest in optimize"
                );
                sweeps += 1;
            }
        }
        assert!(rungs > 0, "{name}: partial mining produced no rung spans");
        assert!(sweeps > 0, "{name}: optimizer produced no sweep spans");
    }

    // The service's own recorder persisted all eight terminal records.
    let past = service.past_sessions();
    assert_eq!(past.len(), 8);
    service.shutdown();
}

#[test]
fn session_records_survive_crash_and_journal_replay() {
    let path = journal_path("replay");
    let before: Vec<Document>;
    {
        let service = AnalysisService::with_kdb(
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
            Kdb::open(&path).unwrap(),
        );
        let log = Arc::new(generate(&cohort_cfg(), 42));

        let ok = service
            .submit(JobSpec::new(
                AdaHealthConfig::quick("replay-ok"),
                Arc::clone(&log),
            ))
            .unwrap();
        let doomed = service
            .submit(
                JobSpec::new(AdaHealthConfig::quick("replay-doomed"), Arc::clone(&log))
                    .inject_failures(10)
                    .max_retries(1),
            )
            .unwrap();
        let token = ada_service::CancelToken::new();
        token.cancel();
        let cancelled = service
            .submit(
                JobSpec::new(AdaHealthConfig::quick("replay-cancelled"), Arc::clone(&log))
                    .cancel_token(token),
            )
            .unwrap();

        assert!(matches!(
            service.wait(ok).unwrap(),
            SessionState::Completed(_)
        ));
        assert!(matches!(
            service.wait(doomed).unwrap(),
            SessionState::Failed { .. }
        ));
        assert_eq!(service.wait(cancelled).unwrap(), SessionState::Cancelled);

        before = service.past_sessions();
        assert_eq!(before.len(), 3);
        service.shutdown();
        // Service dropped here: the only copy of these records is now
        // the K-DB journal on disk.
    }

    // "Restart": rebuild the store purely from the journal.
    let reopened = Kdb::open(&path).unwrap();
    let after: Vec<Document> = ada_obs::past_sessions(&reopened)
        .into_iter()
        .map(|(_, doc)| doc)
        .collect();
    assert_eq!(after.len(), 3);

    // Round-trip: the replayed records equal the pre-crash ones exactly.
    assert_eq!(before, after);

    let by_session = |docs: &[Document], session: &str| -> Document {
        docs.iter()
            .find(|d| d.get("session").and_then(Value::as_str) == Some(session))
            .unwrap_or_else(|| panic!("no record for {session}"))
            .clone()
    };
    let ok_doc = by_session(&after, "replay-ok");
    let doomed_doc = by_session(&after, "replay-doomed");
    let cancelled_doc = by_session(&after, "replay-cancelled");

    for doc in [&ok_doc, &doomed_doc, &cancelled_doc] {
        schema::validate_session_doc(doc).unwrap();
    }
    assert_eq!(ok_doc.get("state").unwrap().as_str(), Some("completed"));
    assert_eq!(doomed_doc.get("state").unwrap().as_str(), Some("failed"));
    assert_eq!(
        cancelled_doc.get("state").unwrap().as_str(),
        Some("cancelled")
    );

    // The completed run carries kernel counters and a full span tree.
    let counters = ok_doc.get("counters").unwrap().as_doc().unwrap();
    assert!(counters.get("iterations").unwrap().as_i64().unwrap() > 0);
    assert!(counters.get("distance_evals").unwrap().as_i64().unwrap() > 0);
    assert!(span_names(&ok_doc).len() > PipelineStage::ALL.len());

    // The failed run recorded its retry and the reason.
    assert_eq!(doomed_doc.get("retries").unwrap().as_i64(), Some(1));
    let outcome = doomed_doc.get("outcome").unwrap().as_str().unwrap();
    assert!(outcome.contains("attempts"), "outcome: {outcome}");

    // The pre-cancelled run never started a stage: empty span tree, but
    // still a queryable terminal record.
    assert!(span_names(&cancelled_doc).is_empty());

    // The collection is indexed for the queries a restarted service
    // serves.
    assert!(reopened
        .collection(names::SESSIONS)
        .unwrap()
        .has_index("state"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn snapshot_renders_json_and_prometheus_end_to_end() {
    let service = AnalysisService::with_kdb(
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        Kdb::in_memory(),
    );
    let log = Arc::new(generate(&cohort_cfg(), 77));
    let id = service
        .submit(JobSpec::new(AdaHealthConfig::quick("snap"), log))
        .unwrap();
    assert!(matches!(
        service.wait(id).unwrap(),
        SessionState::Completed(_)
    ));

    let snapshot = service.snapshot();
    assert_eq!(snapshot.get("past_sessions").unwrap().as_i64(), Some(1));
    let sessions = snapshot.get("sessions").unwrap().as_array().unwrap();
    assert_eq!(sessions.len(), 1);
    assert_eq!(
        sessions[0].as_doc().unwrap().get("state").unwrap().as_str(),
        Some("completed")
    );

    let json = service.snapshot_json();
    assert!(json.contains("\"metrics\":{"), "json: {json}");
    assert!(json.contains("\"queue_wait\":{"), "json: {json}");
    for stage in PipelineStage::PIPELINE {
        assert!(
            json.contains(&format!("\"{}\":{{", stage.name())),
            "{stage}"
        );
    }

    let prom = service.snapshot_prometheus();
    assert!(prom.contains("ada_jobs_total{outcome=\"completed\"} 1"));
    assert!(prom.contains("ada_stage_latency_ns{stage=\"optimize\",quantile=\"0.99\"}"));
    assert!(prom.contains("ada_queue_wait_ns_count 1"));
    service.shutdown();
}
