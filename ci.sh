#!/usr/bin/env bash
# Local CI gate — run before pushing. Mirrors the tier-1 verify plus the
# full workspace suite and style gates.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release

echo "== tests (workspace) =="
cargo test -q --workspace

echo "== kmeans kernel perf gate (quick) =="
# Fails on any kernel/pruning/threading mismatch or when the pruned
# kernel regresses past 2x the seed reference on the reduced cohort.
cargo run -q -p ada-bench --release --bin kmeans_perf -- --quick

echo "== observability smoke gate =="
# End-to-end session with tracing on: observer-on vs observer-off
# reports must match, the exported session record must validate against
# ada-kdb::schema, and kernel tracing overhead must stay within 5%.
# Then the trace gate: one remote sampled session must persist a trace
# linking queue-wait, every pipeline stage, and >= 1 group-commit fsync
# round under valid parent indexes, and full-session sampling overhead
# at rate 1 must also stay within 5% of rate 0 (paired minima).
cargo run -q -p ada-bench --release --bin obs_smoke

echo "== safety-signal smoke gate (quick) =="
# Ranked safety signals on the bench cohort: non-empty descending
# ranking with bracketing CIs, serial == 8-way parallel == observed,
# the pinned ada_signals_* exposition families live after a service
# session, and tracing overhead within 5%.
cargo run -q -p ada-bench --release --bin signals_smoke -- --quick

echo "== network front-end smoke gate (quick) =="
# Loopback fleet over the ADAN1 wire: blocking + multiplexed async
# clients, reads answered mid-fleet, then a drain audit (zero protocol
# errors, accept/request counters matching the fleet).
cargo run -q -p ada-bench --release --bin net_smoke -- --quick

echo "== streaming ingestion smoke gate (quick) =="
# ada-stream end to end: an out-of-order feed must close windows and
# force-refit to a model byte-identical to a cold fit over the same
# cohort; a mid-feed crash resumed from durable stream_windows
# checkpoints must land on identical fingerprints; steady-state
# streaming overhead vs the batch VsmBuilder path must stay within
# budget; and a service-fed stream must surface all six pinned
# ada_stream_* exposition families with live counts.
cargo run -q -p ada-bench --release --bin stream_smoke -- --quick

echo "== crash torture gate (quick, incl. multi-producer) =="
# Byte-level journal cuts, injected storage faults at every schedule
# point, single-bit corruption, and N interleaved writers racing the
# group committer under every fault kind: reopened state must always
# equal the state after some prefix of acknowledged ops (per collection
# in the multi-producer phase), fsynced ops must survive, and corruption
# must never decode silently. Prints a replayable seed on failure.
cargo run -q -p ada-bench --release --bin kdb_torture -- --quick

echo "== fleet torture gate (quick) =="
# Replication under attack, transport-free: seeded link kills (message
# boundaries, mid-frame byte cuts, mid-group-commit), partitions healed
# by re-bootstrap + overlap replay, dropped/reordered frames, and
# single-bit flips. Every promoted follower must be exactly its acked
# prefix (FNV fingerprints); gaps and corruption must always be
# classified, counted once, and never applied. Replayable seed on
# failure.
cargo run -q -p ada-bench --release --bin fleet_torture -- --quick

echo "== fleet failover smoke gate (quick) =="
# Real TCP primary/standby pair (service + wire + journal shipping):
# routed writes complete, the standby acks the full journal with zero
# rejects and serves replicated reads, a failed health probe promotes
# it in place, post-failover sessions complete, and both nodes drain
# with zero protocol errors.
cargo run -q -p ada-bench --release --bin fleet_smoke -- --quick

echo "== kdb write scaling gate (quick) =="
# 1 vs 8 writers through the sharded group-committed write path under
# Always durability: every committed op must survive reopen and the
# 8-writer aggregate must beat the single-writer baseline (group commit
# batching fsyncs, not one fsync per op).
cargo run -q -p ada-bench --release --bin kdb_write_scaling -- --quick

if [ "$(nproc)" -ge 4 ]; then
  echo "== kdb write scaling bench (full, >=4 cores) =="
  # Regenerates BENCH_kdb_write.json; the 3x acceptance target at 8
  # writers is only meaningful with real parallelism.
  cargo run -q -p ada-bench --release --bin kdb_write_scaling
fi

if [ "$(nproc)" -ge 4 ]; then
  echo "== kmeans kernel perf gate (full, >=4 cores) =="
  # The full-mode thresholds assume real parallel speedup; only
  # meaningful (and only run) on multi-core boxes.
  cargo run -q -p ada-bench --release --bin kmeans_perf
else
  echo "== kmeans kernel perf gate (full) skipped: $(nproc) core(s) < 4 =="
fi

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt (check) =="
cargo fmt --check

echo "CI green."
