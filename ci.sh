#!/usr/bin/env bash
# Local CI gate — run before pushing. Mirrors the tier-1 verify plus the
# full workspace suite and style gates.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release

echo "== tests (workspace) =="
cargo test -q --workspace

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt (check) =="
cargo fmt --check

echo "CI green."
